// Package seam defines the harness-neutral interfaces the GCS node
// algorithm (internal/gcs) is written against, so the same node code
// runs unchanged in two very different harnesses:
//
//   - the discrete-event simulator: internal/clock's HardwareClock is
//     the Clock, internal/transport's Network is the Sender, and
//     internal/dyngraph's Dynamic is the Topology — all single-threaded,
//     owned by a des.Engine, with simulated time under the harness's
//     control (the reproduction and experiment surface);
//   - the real-time runtime (internal/rt): a goroutine-per-node
//     runtime over in-process channels, where the Clock is a drifting
//     function of the wall clock, timers are time.Timer-backed, and
//     deliveries arrive on real goroutines (the deployable surface,
//     tested deterministically under testing/synctest).
//
// The seam is deliberately minimal: it is exactly the set of operations
// the paper's pseudocode assumes of its environment — read the local
// hardware clock, set/cancel subjective timers ("fire when my hardware
// clock has advanced by dH"), send to one or all current neighbors, and
// enumerate the current neighborhood. Everything else (delay laws,
// drift processes, churn, fault injection) is harness policy behind
// these interfaces.
//
// Implementations are not required to be safe for concurrent use: every
// method is invoked from the owning node's execution context (a DES
// event, or the node's goroutine in the real-time runtime), and each
// harness is responsible for providing that serialization.
package seam

// Clock is one node's subjective hardware clock: a monotonically
// increasing reading whose rate may drift within the model's
// [1-rho, 1+rho] band. Readings are in hardware seconds.
type Clock interface {
	// Now returns the clock's current reading.
	Now() float64
	// NewTimer returns a new, unarmed subjective timer owned by this
	// clock. label tags the timer's events for tracing/diagnostics; fn
	// runs at every firing, in the owning node's execution context. The
	// timer is long-lived: callers arm and re-arm it with Reset rather
	// than constructing a new one per firing, so the per-tick path can
	// stay allocation-free in harnesses that care.
	NewTimer(label string, fn func()) Timer
}

// Timer is a resettable subjective timer: it fires when the owning
// clock has advanced by the armed amount, surviving any rate drift in
// between (the paper's set_timer(dt, id) primitive). The zero state is
// unarmed.
type Timer interface {
	// Reset (re)arms the timer to fire when the owning clock has
	// advanced by dH from its current reading, replacing any pending
	// arming. dH must be nonnegative.
	Reset(dH float64)
	// Stop cancels the pending firing, if any. Stopping an unarmed
	// timer is a no-op.
	Stop()
	// Pending reports whether the timer is currently armed.
	Pending() bool
}

// Sender is the transmit half of a bounded-delay transport. Both
// methods identify the sending node explicitly, so one Sender instance
// can serve every node of a harness.
type Sender interface {
	// Broadcast sends value from node `from` to every current neighbor
	// and returns the number of messages sent.
	Broadcast(from int, value float64) int
	// Send transmits value over the (from, to) edge if it is currently
	// present, reporting whether the message was accepted. Neighbor
	// discovery uses it to beacon over a fresh edge without re-beaconing
	// the whole neighborhood.
	Send(from, to int, value float64) bool
}

// Topology exposes a node's current neighborhood. AppendNeighbors
// appends u's current neighbors to buf and returns it (any order; the
// algorithm's neighbor scan is order-independent), reusing buf's
// capacity so the per-message path does not allocate.
type Topology interface {
	AppendNeighbors(u int, buf []int) []int
}
