package fault

import (
	"testing"
)

// FuzzFaultSpec fuzzes the fault plan's boundary contract: WithDefaults
// is total and idempotent, Validate classifies every input without
// panicking, and any accepted plan keeps its invariants (probabilities
// in range, factors above 1, the injection window inside the horizon).
func FuzzFaultSpec(f *testing.F) {
	f.Add(0.1, 0.05, 0.02, 4.0, 3.0, 0.5, false, 5.0, 3.0, 0.5, 6.0, 12.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, false, 0.0, 0.0, 0.0, 0.0, 10.0)
	f.Add(1.5, -0.2, 0.9, 0.5, -1.0, 2.0, true, 4.0, 1.0, 0.0, 20.0, 10.0)
	f.Fuzz(func(t *testing.T, drop, dup, spike, spikeFactor, crashEvery, crashDowntime float64,
		crashStop bool, excEvery, excFactor, excFor, until, horizon float64) {
		spec := Spec{
			Drop: drop, Dup: dup, DelaySpike: spike, SpikeFactor: spikeFactor,
			CrashEvery: crashEvery, CrashDowntime: crashDowntime, CrashStop: crashStop,
			RateExcursionEvery: excEvery, RateExcursionFactor: excFactor,
			RateExcursionFor: excFor, Until: until,
		}
		d := spec.WithDefaults(horizon)
		if dd := d.WithDefaults(horizon); dd != d {
			t.Fatalf("WithDefaults not idempotent: %+v -> %+v", d, dd)
		}
		if !spec.Enabled() && d != spec {
			t.Fatalf("defaults perturbed a disabled spec: %+v -> %+v", spec, d)
		}
		if err := d.Validate(horizon); err != nil {
			return
		}
		// Accepted plans keep the invariants injection relies on.
		if d.Enabled() {
			if !(d.Until > 0) || d.Until > horizon {
				t.Fatalf("accepted Until %v outside (0, %v]", d.Until, horizon)
			}
			if d.DelaySpike > 0 && d.SpikeFactor <= 1 {
				t.Fatalf("accepted spike plan with factor %v", d.SpikeFactor)
			}
			if d.CrashEvery > 0 && !d.CrashStop && d.CrashDowntime <= 0 {
				t.Fatalf("accepted recovering crash plan with downtime %v", d.CrashDowntime)
			}
			if d.RateExcursionEvery > 0 && (d.RateExcursionFactor <= 1 || d.RateExcursionFor <= 0) {
				t.Fatalf("accepted excursion plan %+v", d)
			}
		}
		if d.MessageFaults() != (d.Drop > 0 || d.Dup > 0 || d.DelaySpike > 0) {
			t.Fatal("MessageFaults disagrees with its fields")
		}
	})
}
