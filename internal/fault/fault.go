// Package fault is the deterministic fault-injection subsystem: a
// declarative plan (Spec, carried as sim.Config.Faults) that breaks the
// paper's clean failure model in four controlled ways —
//
//   - probabilistic message loss and duplication at the transport layer,
//   - delay spikes exceeding the nominal MaxDelay up to a capped
//     multiplier,
//   - node crash-stop / crash-recover schedules (recovery loses volatile
//     state and rejoins through the existing discovery beacon), and
//   - hardware-rate excursions outside [1-rho, 1+rho]
//
// — while keeping every report a pure function of the scenario Config.
// Faults are physics, exactly like shard counts and delay floors: every
// draw comes from per-node streams forked off a dedicated root
// (des.Rand.ForkInto never advances the parent), consumed in an order
// that only depends on the node's own event sequence. A faulted run is
// therefore bit-identical across reruns and across parallel worker
// counts, and a zero-valued Spec leaves the unfaulted execution
// untouched down to the last PRNG draw.
//
// Injection stops at Spec.Until (default half the horizon), leaving the
// rest of the run to re-converge; the harness measures the time from
// the last injected disturbance until the global skew re-enters the
// analytic bound (SkewReport.ReconvergenceTime), which is what the
// chaos CI gate checks.
package fault

import (
	"fmt"
	"math"

	"gcs/internal/des"
)

// Spec declares one fault plan. The zero value disables injection
// entirely (Enabled reports false) and is guaranteed not to perturb an
// execution. All probabilities are per message; all "-Every" fields are
// means of exponential inter-arrival draws per node.
type Spec struct {
	// Drop is the probability a sent message is silently lost in
	// transit (beyond the model's edge-removal losses).
	Drop float64
	// Dup is the probability a sent message is delivered twice, the
	// copy with its own independently drawn delay.
	Dup float64
	// DelaySpike is the probability a message's delay is drawn from
	// (MaxDelay, SpikeFactor*MaxDelay] instead of the nominal law —
	// a violation of the paper's delay bound.
	DelaySpike float64
	// SpikeFactor caps the spiked delay at SpikeFactor*MaxDelay. Unset
	// (0) defaults to 4; values must exceed 1.
	SpikeFactor float64

	// CrashEvery, when positive, crashes each node on an exponential
	// schedule with this mean. A crashed node stops beaconing and
	// ignores traffic.
	CrashEvery float64
	// CrashDowntime is the mean exponential downtime before a crashed
	// node recovers (loses volatile state, restarts its logical clock at
	// the hardware reading, rejoins via an immediate beacon). Unset
	// defaults to 1. Ignored with CrashStop.
	CrashDowntime float64
	// CrashStop makes crashes permanent: crashed nodes never recover
	// and stay excluded from skew sampling for the rest of the run.
	CrashStop bool

	// RateExcursionEvery, when positive, starts per-node hardware-rate
	// excursions on an exponential schedule with this mean: the rate is
	// forced outside [1-rho, 1+rho] by a factor drawn in
	// [1, RateExcursionFactor).
	RateExcursionEvery float64
	// RateExcursionFactor scales the excursion: the rate is set to
	// 1 ± m*rho with m drawn in [1, RateExcursionFactor). Unset
	// defaults to 3; values must exceed 1.
	RateExcursionFactor float64
	// RateExcursionFor is the mean exponential duration of one
	// excursion, after which the rate returns to 1. Unset defaults to
	// 0.5.
	RateExcursionFor float64

	// Until stops injecting new faults after this simulated time, so the
	// tail of the run measures re-convergence. Unset defaults to half
	// the horizon. (Recoveries and excursion ends still execute after
	// Until — they conclude disturbances, they do not start them.)
	Until float64
}

// Enabled reports whether the plan injects anything at all.
func (s Spec) Enabled() bool { return s != Spec{} }

// MessageFaults reports whether the plan touches the message path
// (drop, duplication, or delay spikes). The harness disables transport
// coalescing for such plans so each message draws its own verdict.
func (s Spec) MessageFaults() bool { return s.Drop > 0 || s.Dup > 0 || s.DelaySpike > 0 }

// WithDefaults fills unset fields, given the scenario horizon. It is
// idempotent and leaves a disabled Spec untouched.
func (s Spec) WithDefaults(horizon float64) Spec {
	if !s.Enabled() {
		return s
	}
	if s.SpikeFactor == 0 {
		s.SpikeFactor = 4
	}
	if s.CrashEvery > 0 && s.CrashDowntime == 0 && !s.CrashStop {
		s.CrashDowntime = 1
	}
	if s.RateExcursionEvery > 0 {
		if s.RateExcursionFactor == 0 {
			s.RateExcursionFactor = 3
		}
		if s.RateExcursionFor == 0 {
			s.RateExcursionFor = 0.5
		}
	}
	if s.Until == 0 {
		s.Until = horizon / 2
	}
	return s
}

// Validate checks a defaulted Spec against the scenario horizon,
// returning a descriptive error for the harness's Config.Validate path.
func (s Spec) Validate(horizon float64) error {
	if !s.Enabled() {
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", s.Drop}, {"Dup", s.Dup}, {"DelaySpike", s.DelaySpike}} {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("fault: %s probability %v outside [0, 1]", p.name, p.v)
		}
	}
	if s.DelaySpike > 0 && !(s.SpikeFactor > 1) {
		return fmt.Errorf("fault: SpikeFactor %v must exceed 1", s.SpikeFactor)
	}
	if s.CrashEvery < 0 {
		return fmt.Errorf("fault: CrashEvery %v must be nonnegative", s.CrashEvery)
	}
	if s.CrashEvery > 0 && !s.CrashStop && s.CrashDowntime <= 0 {
		return fmt.Errorf("fault: CrashDowntime %v must be positive", s.CrashDowntime)
	}
	if s.RateExcursionEvery < 0 {
		return fmt.Errorf("fault: RateExcursionEvery %v must be nonnegative", s.RateExcursionEvery)
	}
	if s.RateExcursionEvery > 0 {
		if !(s.RateExcursionFactor > 1) {
			return fmt.Errorf("fault: RateExcursionFactor %v must exceed 1", s.RateExcursionFactor)
		}
		if s.RateExcursionFor <= 0 {
			return fmt.Errorf("fault: RateExcursionFor %v must be positive", s.RateExcursionFor)
		}
	}
	if !(s.Until > 0) || s.Until > horizon {
		return fmt.Errorf("fault: Until %v must lie in (0, horizon %v]", s.Until, horizon)
	}
	return nil
}

// Stats counts injected faults over one execution. Counters are split
// by kind; LastFaultT is the time of the last disturbance (including
// recoveries and excursion ends, which perturb clocks when they fire),
// the reference point of the re-convergence metric.
type Stats struct {
	Drops          uint64
	Dups           uint64
	DelaySpikes    uint64
	Crashes        uint64
	Recoveries     uint64
	RateExcursions uint64
	LastFaultT     float64
}

// Total returns the number of injected disturbances.
func (st *Stats) Total() uint64 {
	return st.Drops + st.Dups + st.DelaySpikes + st.Crashes + st.Recoveries + st.RateExcursions
}

// Merge folds other into st: counters add, LastFaultT takes the max —
// an order-independent fold, so merging per-shard stats in any fixed
// order yields the same result.
func (st *Stats) Merge(other Stats) {
	st.Drops += other.Drops
	st.Dups += other.Dups
	st.DelaySpikes += other.DelaySpikes
	st.Crashes += other.Crashes
	st.Recoveries += other.Recoveries
	st.RateExcursions += other.RateExcursions
	if other.LastFaultT > st.LastFaultT {
		st.LastFaultT = other.LastFaultT
	}
}

func (st *Stats) note(t float64) {
	if t > st.LastFaultT {
		st.LastFaultT = t
	}
}

// Verdict is one message's fault outcome: dropped, duplicated, and/or
// assigned a spiked delay (0 means "use the nominal delay law"). Drop
// excludes the others.
type Verdict struct {
	Drop  bool
	Dup   bool
	Delay float64
}

// Messages draws per-message fault verdicts from per-sender streams:
// sender i's verdicts depend only on i's own send sequence, never on
// how other nodes' events interleave, which is what keeps faulted
// parallel runs worker-invariant. A Messages is reusable: Wire reseeds
// it in place without allocating once the stream table has grown.
type Messages struct {
	drop, dup, spike float64
	spikeLo, spikeHi float64
	until            float64
	rands            []des.Rand
}

// NewMessages returns an empty message-fault plan; Wire arms it.
func NewMessages() *Messages { return &Messages{} }

// Wire reseeds the plan for one run of n senders from a defaulted spec.
// root is the run's fault root; forking never advances it.
func (m *Messages) Wire(spec Spec, maxDelay float64, n int, root *des.Rand) {
	m.drop, m.dup, m.spike = spec.Drop, spec.Dup, spec.DelaySpike
	m.spikeLo, m.spikeHi = maxDelay, spec.SpikeFactor*maxDelay
	m.until = spec.Until
	if cap(m.rands) < n {
		m.rands = make([]des.Rand, n)
	} else {
		m.rands = m.rands[:n]
	}
	var sub des.Rand
	root.ForkInto(1, &sub)
	for i := range m.rands {
		sub.ForkInto(uint64(i), &m.rands[i])
	}
}

// Draw returns the verdict for one message sent by `from` at time
// `now`, accumulating counters into st (the caller's, so serial and
// per-shard accounting share one code path). After the injection
// window it returns the zero verdict without consuming any draws.
func (m *Messages) Draw(from int, now float64, st *Stats) Verdict {
	if now > m.until {
		return Verdict{}
	}
	r := &m.rands[from]
	var v Verdict
	if m.drop > 0 && r.Bool(m.drop) {
		v.Drop = true
		st.Drops++
		st.note(now)
		return v
	}
	if m.dup > 0 && r.Bool(m.dup) {
		v.Dup = true
		st.Dups++
		st.note(now)
	}
	if m.spike > 0 && r.Bool(m.spike) {
		// 1 - Float64() is in (0, 1], so the delay is in (lo, hi] — always
		// beyond the nominal MaxDelay.
		v.Delay = m.spikeLo + (m.spikeHi-m.spikeLo)*(1-r.Float64())
		st.DelaySpikes++
		st.note(now)
	}
	return v
}

// Hooks are the harness callbacks the Injector drives. All three run
// inside engine events — serial events or parallel global phases — so
// they may touch node and clock state freely.
type Hooks struct {
	// Crash takes node i offline.
	Crash func(i int)
	// Recover brings node i back (volatile state lost, immediate rejoin
	// beacon).
	Recover func(i int)
	// SetRate forces node i's hardware rate.
	SetRate func(i int, rate float64)
}

// Injector drives the node-level fault schedules — crash-stop /
// crash-recover and hardware-rate excursions — as events on the
// harness's engine (the serial engine, or the parallel coordinator's
// global engine, whose events run with every shard barriered). Each
// node's schedule comes from its own forked streams, so schedules are
// independent of each other and of everything else in the run. An
// Injector is reusable: Wire reseeds it in place.
type Injector struct {
	spec  Spec
	rho   float64
	n     int
	hooks Hooks
	en    *des.Engine
	stats Stats
	down  []bool

	crashRands []des.Rand
	rateRands  []des.Rand

	crashFn, recoverFn, excFn, excEndFn des.ArgHandler
}

// NewInjector returns an empty injector; Wire and Install arm it. The
// event handlers are created once here, so re-wiring allocates nothing.
func NewInjector() *Injector {
	inj := &Injector{}
	inj.crashFn = func(arg uint64) { inj.crash(int(arg)) }
	inj.recoverFn = func(arg uint64) { inj.recoverNode(int(arg)) }
	inj.excFn = func(arg uint64) { inj.excurse(int(arg)) }
	inj.excEndFn = func(arg uint64) { inj.excurseEnd(int(arg)) }
	return inj
}

// Wire reseeds the injector for one run over n nodes from a defaulted
// spec. rho scales rate excursions; root is the run's fault root.
func (inj *Injector) Wire(spec Spec, n int, rho float64, root *des.Rand, hooks Hooks) {
	inj.spec = spec
	inj.rho = rho
	inj.n = n
	inj.hooks = hooks
	inj.stats = Stats{}
	if cap(inj.down) < n {
		inj.down = make([]bool, n)
		inj.crashRands = make([]des.Rand, n)
		inj.rateRands = make([]des.Rand, n)
	} else {
		inj.down = inj.down[:n]
		inj.crashRands = inj.crashRands[:n]
		inj.rateRands = inj.rateRands[:n]
		clear(inj.down)
	}
	var crashRoot, rateRoot des.Rand
	root.ForkInto(2, &crashRoot)
	root.ForkInto(3, &rateRoot)
	for i := 0; i < n; i++ {
		crashRoot.ForkInto(uint64(i), &inj.crashRands[i])
		rateRoot.ForkInto(uint64(i), &inj.rateRands[i])
	}
}

// Install schedules each node's first crash and excursion onset on en.
// Call once per run, with the engine at time 0.
func (inj *Injector) Install(en *des.Engine) {
	inj.en = en
	if inj.spec.CrashEvery > 0 {
		for i := 0; i < inj.n; i++ {
			if t := inj.crashRands[i].Exp(inj.spec.CrashEvery); t <= inj.spec.Until {
				en.ScheduleArg(t, "fault.crash", inj.crashFn, uint64(i))
			}
		}
	}
	if inj.spec.RateExcursionEvery > 0 {
		for i := 0; i < inj.n; i++ {
			if t := inj.rateRands[i].Exp(inj.spec.RateExcursionEvery); t <= inj.spec.Until {
				en.ScheduleArg(t, "fault.rate", inj.excFn, uint64(i))
			}
		}
	}
}

// Down returns the live down-node mask, indexed by node. The harness
// aliases it to exclude crashed nodes from skew sampling; all writes
// happen inside engine events, never concurrently with reads.
func (inj *Injector) Down() []bool { return inj.down }

// Stats returns the counters accumulated so far.
func (inj *Injector) Stats() Stats { return inj.stats }

func (inj *Injector) crash(i int) {
	now := inj.en.Now()
	inj.down[i] = true
	inj.stats.Crashes++
	inj.stats.note(now)
	inj.hooks.Crash(i)
	if inj.spec.CrashStop {
		return
	}
	// The recovery concludes this crash, so it runs even past Until; only
	// fresh onsets are clamped to the injection window.
	inj.en.ScheduleArg(now+inj.crashRands[i].Exp(inj.spec.CrashDowntime), "fault.recover", inj.recoverFn, uint64(i))
}

func (inj *Injector) recoverNode(i int) {
	now := inj.en.Now()
	inj.down[i] = false
	inj.stats.Recoveries++
	// Rejoining with a stale clock is itself a disturbance: re-convergence
	// is measured from the rejoin, not from the crash that caused it.
	inj.stats.note(now)
	inj.hooks.Recover(i)
	if t := now + inj.crashRands[i].Exp(inj.spec.CrashEvery); t <= inj.spec.Until {
		inj.en.ScheduleArg(t, "fault.crash", inj.crashFn, uint64(i))
	}
}

func (inj *Injector) excurse(i int) {
	now := inj.en.Now()
	r := &inj.rateRands[i]
	inj.stats.RateExcursions++
	inj.stats.note(now)
	// 1 - Float64() is in (0, 1], so mag is in (1, Factor]: the rate is
	// strictly outside the [1-rho, 1+rho] drift band the paper assumes.
	mag := 1 + (inj.spec.RateExcursionFactor-1)*(1-r.Float64())
	rate := 1 + mag*inj.rho
	if r.Bool(0.5) {
		rate = 1 - mag*inj.rho
		if rate < 0.05 {
			rate = 0.05 // hardware clocks must keep running forward
		}
	}
	inj.hooks.SetRate(i, rate)
	inj.en.ScheduleArg(now+r.Exp(inj.spec.RateExcursionFor), "fault.rate.end", inj.excEndFn, uint64(i))
}

func (inj *Injector) excurseEnd(i int) {
	now := inj.en.Now()
	// Restoring the nominal rate perturbs the clock one last time; the
	// scenario's driver reasserts its own in-band rate at its next step.
	inj.hooks.SetRate(i, 1)
	inj.stats.note(now)
	if t := now + inj.rateRands[i].Exp(inj.spec.RateExcursionEvery); t <= inj.spec.Until {
		inj.en.ScheduleArg(t, "fault.rate", inj.excFn, uint64(i))
	}
}
