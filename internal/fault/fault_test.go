package fault

import (
	"math"
	"reflect"
	"testing"

	"gcs/internal/des"
)

func TestSpecZeroValueDisabled(t *testing.T) {
	var s Spec
	if s.Enabled() || s.MessageFaults() {
		t.Fatal("zero Spec must be disabled")
	}
	if got := s.WithDefaults(10); got != s {
		t.Fatalf("WithDefaults perturbed a disabled Spec: %+v", got)
	}
	if err := s.Validate(10); err != nil {
		t.Fatalf("zero Spec must validate: %v", err)
	}
}

func TestSpecWithDefaults(t *testing.T) {
	s := Spec{Drop: 0.1, CrashEvery: 2, RateExcursionEvery: 3}.WithDefaults(10)
	if s.SpikeFactor != 4 || s.CrashDowntime != 1 ||
		s.RateExcursionFactor != 3 || s.RateExcursionFor != 0.5 || s.Until != 5 {
		t.Fatalf("defaults not filled: %+v", s)
	}
	if again := s.WithDefaults(10); again != s {
		t.Fatalf("WithDefaults not idempotent: %+v vs %+v", again, s)
	}
	if err := s.Validate(10); err != nil {
		t.Fatalf("defaulted Spec must validate: %v", err)
	}
	// Crash-stop plans need no downtime.
	cs := Spec{CrashEvery: 2, CrashStop: true}.WithDefaults(10)
	if cs.CrashDowntime != 0 {
		t.Fatalf("crash-stop got a downtime default: %+v", cs)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	for name, s := range map[string]Spec{
		"drop>1":        {Drop: 1.5},
		"dup<0":         {Dup: -0.1},
		"spikeNaN":      {DelaySpike: math.NaN()},
		"spikeFactor<1": {DelaySpike: 0.1, SpikeFactor: 0.5},
		"crashEvery<0":  {CrashEvery: -1},
		"noDowntime":    {CrashEvery: 1, CrashDowntime: -2},
		"rateEvery<0":   {RateExcursionEvery: -1},
		"rateFactor<1":  {RateExcursionEvery: 1, RateExcursionFactor: 1, RateExcursionFor: 1},
		"rateForZero":   {RateExcursionEvery: 1, RateExcursionFactor: 2, RateExcursionFor: -1},
		"untilPastEnd":  {Drop: 0.1, SpikeFactor: 4, Until: 20},
		"untilNegative": {Drop: 0.1, SpikeFactor: 4, Until: -1},
	} {
		if err := s.Validate(10); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}

// drawAll replays n verdicts for one sender on a freshly wired plan.
func drawAll(spec Spec, sender, n int, seed uint64) ([]Verdict, Stats) {
	root := des.NewRand(seed)
	m := NewMessages()
	m.Wire(spec, 0.01, 4, root)
	var st Stats
	out := make([]Verdict, n)
	for k := range out {
		out[k] = m.Draw(sender, 0.1*float64(k), &st)
	}
	return out, st
}

func TestMessagesDeterministicAndCounted(t *testing.T) {
	spec := Spec{Drop: 0.3, Dup: 0.3, DelaySpike: 0.3}.WithDefaults(100)
	a, sa := drawAll(spec, 0, 200, 42)
	b, sb := drawAll(spec, 0, 200, 42)
	if !reflect.DeepEqual(a, b) || sa != sb {
		t.Fatal("same seed produced different verdict sequences")
	}
	if sa.Drops == 0 || sa.Dups == 0 || sa.DelaySpikes == 0 {
		t.Fatalf("aggressive plan injected nothing: %+v", sa)
	}
	if sa.Total() != sa.Drops+sa.Dups+sa.DelaySpikes || sa.LastFaultT <= 0 {
		t.Fatalf("inconsistent stats: %+v", sa)
	}
	c, _ := drawAll(spec, 0, 200, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical verdicts")
	}
	// Spiked delays must always exceed the nominal bound, never its cap.
	for _, v := range a {
		if v.Delay != 0 && (v.Delay <= 0.01 || v.Delay > 4*0.01) {
			t.Fatalf("spiked delay %v outside (MaxDelay, 4*MaxDelay]", v.Delay)
		}
		if v.Drop && (v.Dup || v.Delay != 0) {
			t.Fatalf("drop verdict combined with others: %+v", v)
		}
	}
}

// TestMessagesSenderIndependence pins the worker-invariance mechanism:
// sender i's verdict stream depends only on i's own send count, not on
// how other senders' draws interleave with it.
func TestMessagesSenderIndependence(t *testing.T) {
	spec := Spec{Drop: 0.5}.WithDefaults(100)
	solo, _ := drawAll(spec, 1, 50, 7)

	root := des.NewRand(7)
	m := NewMessages()
	m.Wire(spec, 0.01, 4, root)
	var st Stats
	interleaved := make([]Verdict, 50)
	for k := range interleaved {
		m.Draw(0, 0.1*float64(k), &st) // noise from another sender
		interleaved[k] = m.Draw(1, 0.1*float64(k), &st)
		m.Draw(2, 0.1*float64(k), &st)
	}
	if !reflect.DeepEqual(solo, interleaved) {
		t.Fatal("sender 1's verdicts changed when other senders drew in between")
	}
}

func TestMessagesRespectUntil(t *testing.T) {
	spec := Spec{Drop: 1, Until: 1}.WithDefaults(100)
	root := des.NewRand(1)
	m := NewMessages()
	m.Wire(spec, 0.01, 2, root)
	var st Stats
	if v := m.Draw(0, 0.5, &st); !v.Drop {
		t.Fatal("certain drop not applied inside the window")
	}
	if v := m.Draw(0, 1.5, &st); v != (Verdict{}) {
		t.Fatalf("verdict %+v injected after Until", v)
	}
	if st.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", st.Drops)
	}
}

func TestStatsMergeOrderIndependent(t *testing.T) {
	a := Stats{Drops: 1, Crashes: 2, LastFaultT: 3}
	b := Stats{Dups: 4, Recoveries: 5, LastFaultT: 7}
	c := Stats{DelaySpikes: 6, RateExcursions: 8, LastFaultT: 5}
	ab := a
	ab.Merge(b)
	ab.Merge(c)
	cb := c
	cb.Merge(b)
	cb.Merge(a)
	if ab != cb {
		t.Fatalf("merge order changed the result: %+v vs %+v", ab, cb)
	}
	if ab.LastFaultT != 7 || ab.Total() != 26 {
		t.Fatalf("bad fold: %+v", ab)
	}
}

// injEvent is one observed injector callback.
type injEvent struct {
	kind string
	node int
	t    float64
	rate float64
}

// runInjector executes a plan on a bare engine with recording hooks.
func runInjector(spec Spec, n int, horizon float64, seed uint64) ([]injEvent, Stats, []bool) {
	en := des.NewEngine()
	var events []injEvent
	inj := NewInjector()
	hooks := Hooks{
		Crash:   func(i int) { events = append(events, injEvent{"crash", i, en.Now(), 0}) },
		Recover: func(i int) { events = append(events, injEvent{"recover", i, en.Now(), 0}) },
		SetRate: func(i int, r float64) { events = append(events, injEvent{"rate", i, en.Now(), r}) },
	}
	root := des.NewRand(seed)
	inj.Wire(spec, n, 0.05, root, hooks)
	inj.Install(en)
	en.Run(horizon)
	down := make([]bool, n)
	copy(down, inj.Down())
	return events, inj.Stats(), down
}

func TestInjectorDeterministicSchedules(t *testing.T) {
	spec := Spec{CrashEvery: 2, CrashDowntime: 0.5, RateExcursionEvery: 2,
		RateExcursionFactor: 3, RateExcursionFor: 0.5, Until: 10}.WithDefaults(20)
	a, sa, _ := runInjector(spec, 8, 20, 11)
	b, sb, _ := runInjector(spec, 8, 20, 11)
	if !reflect.DeepEqual(a, b) || sa != sb {
		t.Fatal("same seed produced different injection schedules")
	}
	if sa.Crashes == 0 || sa.Recoveries == 0 || sa.RateExcursions == 0 {
		t.Fatalf("plan injected nothing: %+v", sa)
	}
	if sa.Recoveries > sa.Crashes {
		t.Fatalf("more recoveries than crashes: %+v", sa)
	}
	for _, e := range a {
		// Onsets obey the injection window; recoveries and excursion ends
		// (rate=1) may conclude past it.
		if (e.kind == "crash" || (e.kind == "rate" && e.rate != 1)) && e.t > spec.Until {
			t.Fatalf("onset after Until: %+v", e)
		}
		// Excursions must leave the [1-rho, 1+rho] band (rho = 0.05).
		if e.kind == "rate" && e.rate != 1 && e.rate > 1-0.05 && e.rate < 1+0.05 {
			t.Fatalf("excursion rate %v inside the drift band", e.rate)
		}
	}
}

func TestInjectorCrashStopNeverRecovers(t *testing.T) {
	spec := Spec{CrashEvery: 1, CrashStop: true, Until: 10}.WithDefaults(20)
	events, st, down := runInjector(spec, 6, 20, 3)
	if st.Crashes == 0 {
		t.Fatal("no crashes with mean 1 over a 10s window")
	}
	if st.Recoveries != 0 {
		t.Fatalf("crash-stop recovered %d times", st.Recoveries)
	}
	crashed := 0
	for _, e := range events {
		if e.kind == "recover" {
			t.Fatalf("recover event under crash-stop: %+v", e)
		}
	}
	for _, d := range down {
		if d {
			crashed++
		}
	}
	if uint64(crashed) != st.Crashes {
		t.Fatalf("down mask shows %d crashed, stats say %d", crashed, st.Crashes)
	}
}

func TestInjectorRewireResets(t *testing.T) {
	spec := Spec{CrashEvery: 1, CrashStop: true, Until: 10}.WithDefaults(20)
	_, first, _ := runInjector(spec, 6, 20, 3)
	// Reusing one injector across runs (the arena pattern) must reproduce
	// a fresh injector bit for bit, including the cleared down mask.
	en := des.NewEngine()
	inj := NewInjector()
	hooks := Hooks{Crash: func(int) {}, Recover: func(int) {}, SetRate: func(int, float64) {}}
	for run := 0; run < 2; run++ {
		en.Reset()
		root := des.NewRand(3)
		inj.Wire(spec, 6, 0.05, root, hooks)
		inj.Install(en)
		en.Run(20)
		if got := inj.Stats(); got != first {
			t.Fatalf("run %d diverged: %+v vs %+v", run, got, first)
		}
	}
}
