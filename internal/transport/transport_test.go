package transport

import (
	"testing"

	"gcs/internal/des"
	"gcs/internal/dyngraph"
)

// rig is a two-node-plus graph with a recording handler on every node.
type rig struct {
	en  *des.Engine
	g   *dyngraph.Dynamic
	net *Network
	got map[int][]Message
}

func newRig(t *testing.T, n int, edges []dyngraph.Edge, delay DelayFn, maxDelay float64) *rig {
	t.Helper()
	r := &rig{
		en:  des.NewEngine(),
		got: map[int][]Message{},
	}
	r.g = dyngraph.NewDynamic(n, edges)
	r.net = New(r.en, r.g, delay, maxDelay)
	for u := 0; u < n; u++ {
		u := u
		r.net.SetHandler(u, func(m Message) {
			r.got[u] = append(r.got[u], m)
		})
	}
	return r
}

func TestDeliveryWithinBound(t *testing.T) {
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, UniformDelay(0.25, des.NewRand(7)), 0.25)
	const sends = 200
	for i := 0; i < sends; i++ {
		if !r.net.Send(0, 1, float64(i)) {
			t.Fatalf("send %d refused over present edge", i)
		}
	}
	r.en.Run(10)
	if len(r.got[1]) != sends {
		t.Fatalf("delivered %d, want %d", len(r.got[1]), sends)
	}
	for _, m := range r.got[1] {
		d := m.DeliverAt - m.SentAt
		if d <= 0 || d > 0.25 {
			t.Fatalf("delay %v outside (0, 0.25]", d)
		}
	}
	if s := r.net.Stats(); s.Sent != sends || s.Delivered != sends || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInFlightMessageDroppedOnEdgeRemoval(t *testing.T) {
	e := dyngraph.E(0, 1)
	r := newRig(t, 2, []dyngraph.Edge{e}, FixedDelay(0.5), 1)
	r.net.Send(0, 1, 1)
	if r.net.InFlight(e) != 1 {
		t.Fatalf("in flight = %d, want 1", r.net.InFlight(e))
	}
	r.en.Schedule(0.2, "cut", func() { r.g.Remove(r.en.Now(), e) })
	r.en.Run(5)
	if len(r.got[1]) != 0 {
		t.Fatalf("message delivered despite edge removal: %v", r.got[1])
	}
	if s := r.net.Stats(); s.Sent != 1 || s.Delivered != 0 || s.Dropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if r.net.InFlight(e) != 0 {
		t.Fatalf("in-flight bookkeeping leaked: %d", r.net.InFlight(e))
	}
}

func TestReAddDoesNotResurrectMessage(t *testing.T) {
	e := dyngraph.E(0, 1)
	r := newRig(t, 2, []dyngraph.Edge{e}, FixedDelay(0.5), 1)
	r.net.Send(0, 1, 13)
	r.en.Schedule(0.1, "cut", func() { r.g.Remove(r.en.Now(), e) })
	// Re-add well before the original delivery time of 0.5.
	r.en.Schedule(0.2, "heal", func() { r.g.Add(r.en.Now(), e) })
	r.en.Run(5)
	if len(r.got[1]) != 0 {
		t.Fatalf("dropped message resurrected by edge re-add: %v", r.got[1])
	}
	// The healed edge carries fresh traffic normally.
	r.net.Send(0, 1, 42)
	r.en.Run(10)
	if len(r.got[1]) != 1 || r.got[1][0].Value != 42 {
		t.Fatalf("fresh message not delivered after re-add: %v", r.got[1])
	}
	if s := r.net.Stats(); s.Dropped != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFIFOForEqualDelays(t *testing.T) {
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.25), 1)
	for i := 0; i < 20; i++ {
		r.net.Send(0, 1, float64(i))
	}
	r.en.Run(5)
	if len(r.got[1]) != 20 {
		t.Fatalf("delivered %d, want 20", len(r.got[1]))
	}
	for i, m := range r.got[1] {
		if m.Value != float64(i) {
			t.Fatalf("delivery %d carried %v; FIFO order violated", i, m.Value)
		}
	}
}

func TestSendOverAbsentEdgeRefused(t *testing.T) {
	r := newRig(t, 3, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.1), 1)
	if r.net.Send(0, 2, 0) {
		t.Fatal("send over absent edge accepted")
	}
	if s := r.net.Stats(); s.Refused != 1 || s.Sent != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBroadcastReachesCurrentNeighborsOnly(t *testing.T) {
	// Star around hub 0 over 5 nodes, with edge {0,3} missing.
	edges := []dyngraph.Edge{dyngraph.E(0, 1), dyngraph.E(0, 2), dyngraph.E(0, 4)}
	r := newRig(t, 5, edges, FixedDelay(0.1), 1)
	if sent := r.net.Broadcast(0, 1); sent != 3 {
		t.Fatalf("broadcast sent %d, want 3", sent)
	}
	r.en.Run(1)
	for _, v := range []int{1, 2, 4} {
		if len(r.got[v]) != 1 {
			t.Fatalf("neighbor %d received %d messages, want 1", v, len(r.got[v]))
		}
	}
	if len(r.got[3]) != 0 {
		t.Fatal("non-neighbor 3 received a broadcast")
	}
	// Leaf broadcast goes only to the hub.
	if sent := r.net.Broadcast(1, 2); sent != 1 {
		t.Fatalf("leaf broadcast sent %d, want 1", sent)
	}
}

func TestPartialDropOnOneEdge(t *testing.T) {
	// Two edges from 0; only one is cut, only its traffic is lost.
	e1, e2 := dyngraph.E(0, 1), dyngraph.E(0, 2)
	r := newRig(t, 3, []dyngraph.Edge{e1, e2}, FixedDelay(0.5), 1)
	r.net.Send(0, 1, 1)
	r.net.Send(0, 2, 2)
	r.en.Schedule(0.2, "cut", func() { r.g.Remove(r.en.Now(), e1) })
	r.en.Run(5)
	if len(r.got[1]) != 0 {
		t.Fatal("message on removed edge delivered")
	}
	if len(r.got[2]) != 1 {
		t.Fatal("message on surviving edge lost")
	}
}

func TestFlightPoolReuseAfterDrops(t *testing.T) {
	e := dyngraph.E(0, 1)
	r := newRig(t, 2, []dyngraph.Edge{e}, FixedDelay(0.5), 1)
	// Repeatedly fill the edge with in-flight traffic, cut it (dropping
	// everything), heal it, and send again: recycled flights must carry
	// fresh messages with no cross-talk from dropped ones.
	for round := 0; round < 5; round++ {
		base := r.en.Now()
		for i := 0; i < 10; i++ {
			r.net.Send(0, 1, float64(round*100+i))
		}
		r.en.Schedule(base+0.1, "cut", func() { r.g.Remove(r.en.Now(), e) })
		r.en.Schedule(base+0.2, "heal", func() { r.g.Add(r.en.Now(), e) })
		r.en.Run(base + 0.3)
	}
	r.en.Run(100)
	s := r.net.Stats()
	if s.Dropped != 50 || s.Delivered != 0 {
		t.Fatalf("stats = %+v, want 50 dropped and 0 delivered", s)
	}
	// Survivor traffic over the healed edge delivers the right values.
	for i := 0; i < 10; i++ {
		r.net.Send(0, 1, float64(1000+i))
	}
	r.en.Run(200)
	if len(r.got[1]) != 10 {
		t.Fatalf("delivered %d after heal, want 10", len(r.got[1]))
	}
	for i, m := range r.got[1] {
		if m.Value != float64(1000+i) {
			t.Fatalf("delivery %d carried %v, want %v", i, m.Value, 1000+i)
		}
	}
	if r.net.InFlight(e) != 0 {
		t.Fatalf("in-flight leaked: %d", r.net.InFlight(e))
	}
}

func TestEdgeDelayMaskOverridesBase(t *testing.T) {
	// Base delay 0.5; the mask charges 0.1, but only in the 0 -> 1
	// direction, so the reverse direction falls through to the base law.
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.5), 1)
	masked := FixedDelay(0.1)
	r.net.SetDelayMask(func(from, to int) DelayFn {
		if from == 0 && to == 1 {
			return masked
		}
		return nil
	})
	r.net.Send(0, 1, 1)
	r.net.Send(1, 0, 2)
	r.en.Run(0.2)
	if len(r.got[1]) != 1 {
		t.Fatalf("masked 0->1 message not delivered at masked delay: got %v", r.got[1])
	}
	if d := r.got[1][0].DeliverAt - r.got[1][0].SentAt; d != 0.1 {
		t.Fatalf("masked delay = %v, want 0.1", d)
	}
	if len(r.got[0]) != 0 {
		t.Fatalf("unmasked 1->0 message arrived before base delay: %v", r.got[0])
	}
	r.en.Run(1)
	if len(r.got[0]) != 1 {
		t.Fatalf("unmasked message never delivered: %v", r.got[0])
	}
	if d := r.got[0][0].DeliverAt - r.got[0][0].SentAt; d != 0.5 {
		t.Fatalf("unmasked delay = %v, want base 0.5", d)
	}
	// Removing the mask restores the base law in both directions.
	r.net.SetDelayMask(nil)
	r.net.Send(0, 1, 3)
	r.en.Run(5)
	if d := r.got[1][1].DeliverAt - r.got[1][1].SentAt; d != 0.5 {
		t.Fatalf("delay after mask removal = %v, want base 0.5", d)
	}
}

func TestMaskedInFlightMessageStillDroppedOnEdgeRemoval(t *testing.T) {
	e := dyngraph.E(0, 1)
	r := newRig(t, 2, []dyngraph.Edge{e}, FixedDelay(0.1), 1)
	slow := FixedDelay(0.5)
	r.net.SetDelayMask(func(from, to int) DelayFn { return slow })
	r.net.Send(0, 1, 1)
	r.en.Schedule(0.2, "cut", func() { r.g.Remove(r.en.Now(), e) })
	r.en.Run(5)
	if len(r.got[1]) != 0 {
		t.Fatalf("masked message survived edge removal: %v", r.got[1])
	}
	if s := r.net.Stats(); s.Sent != 1 || s.Dropped != 1 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if r.net.InFlight(e) != 0 {
		t.Fatalf("in-flight bookkeeping leaked: %d", r.net.InFlight(e))
	}
}

// The send/deliver hot path must not allocate once arenas are warm: this
// is the tentpole property the benchmark numbers rest on.
func TestSendSteadyStateDoesNotAllocate(t *testing.T) {
	en := des.NewEngine()
	g := dyngraph.NewDynamic(2, []dyngraph.Edge{dyngraph.E(0, 1)})
	net := New(en, g, FixedDelay(0.1), 1)
	// Warm up the flight arena, event pool, and slot lists.
	for i := 0; i < 64; i++ {
		net.Send(0, 1, float64(i))
	}
	en.Run(64)
	allocs := testing.AllocsPerRun(200, func() {
		net.Broadcast(0, 1)
		en.Run(en.Now() + 1)
	})
	if allocs > 0 {
		t.Errorf("steady-state broadcast+deliver allocated %v objects/op, want 0", allocs)
	}
}

// A delay mask sits on the same hot path, so masked sends must stay
// allocation-free too (the lower-bound scenario sends every message
// through its mask).
func TestMaskedSendSteadyStateDoesNotAllocate(t *testing.T) {
	en := des.NewEngine()
	g := dyngraph.NewDynamic(2, []dyngraph.Edge{dyngraph.E(0, 1)})
	net := New(en, g, FixedDelay(0.1), 1)
	masked := FixedDelay(0.05)
	net.SetDelayMask(func(from, to int) DelayFn {
		if from < to {
			return masked
		}
		return nil
	})
	for i := 0; i < 64; i++ {
		net.Send(0, 1, float64(i))
		net.Send(1, 0, float64(i))
	}
	en.Run(64)
	allocs := testing.AllocsPerRun(200, func() {
		net.Broadcast(0, 1)
		net.Broadcast(1, 0)
		en.Run(en.Now() + 1)
	})
	if allocs > 0 {
		t.Errorf("steady-state masked broadcast+deliver allocated %v objects/op, want 0", allocs)
	}
}

// TestMultiValueDeliveryGrowsArenaDuringHandler is the regression test
// for the multi-value aliasing hazard in deliver: Message.Values aliases
// the pooled flight's value buffer while the handler runs, and the
// flight is only released after the handler returns. A handler that
// re-broadcasts during a multi-value delivery allocates fresh flights —
// growing (and possibly reallocating) the flight arena — and must still
// observe its own batch uncorrupted, with every counter conserved.
func TestMultiValueDeliveryGrowsArenaDuringHandler(t *testing.T) {
	const fanout = 9
	const batch = 8
	edges := []dyngraph.Edge{dyngraph.E(0, 1)}
	for v := 2; v < 2+fanout; v++ {
		edges = append(edges, dyngraph.E(1, v))
	}
	r := newRig(t, 2+fanout, edges, FixedDelay(0.25), 1)
	r.net.SetCoalescing(true)

	sawBatch := false
	r.net.SetHandler(1, func(m Message) {
		if m.Values == nil {
			return
		}
		sawBatch = true
		// Re-broadcast while the delivered Values still aliases the
		// pooled buffer: one fresh flight per spoke edge, enough to
		// force the flight arena to grow past its pre-delivery capacity.
		for v := 2; v < 2+fanout; v++ {
			if !r.net.Send(1, v, 100+float64(v)) {
				t.Errorf("re-broadcast to %d refused", v)
			}
		}
		if len(m.Values) != batch {
			t.Errorf("batch has %d values, want %d", len(m.Values), batch)
		}
		for i, got := range m.Values {
			if got != float64(i) {
				t.Errorf("Values[%d] = %v, want %v (corrupted during handler)", i, got, float64(i))
			}
		}
		if m.Value != m.Values[0] {
			t.Errorf("Value = %v, want Values[0] = %v", m.Value, m.Values[0])
		}
	})

	// One engine event sends the whole batch, so coalescing folds it
	// into a single multi-value flight.
	r.en.Schedule(0, "batch", func() {
		for i := 0; i < batch; i++ {
			if !r.net.Send(0, 1, float64(i)) {
				t.Errorf("send %d refused", i)
			}
		}
	})
	r.en.Run(5)

	if !sawBatch {
		t.Fatal("no multi-value delivery observed; coalescing not exercised")
	}
	for v := 2; v < 2+fanout; v++ {
		if len(r.got[v]) != 1 || r.got[v][0].Value != 100+float64(v) {
			t.Fatalf("spoke %d got %v, want one delivery of %v", v, r.got[v], 100+float64(v))
		}
	}
	s := r.net.Stats()
	wantSent := uint64(batch + fanout)
	if s.Sent != wantSent || s.Delivered != wantSent || s.Dropped != 0 {
		t.Fatalf("stats = %+v, want Sent = Delivered = %d, Dropped = 0", s, wantSent)
	}
}

// TestUniformDelayInMatchesUniformDelayAtZeroFloor pins the bit-identity
// contract: UniformDelayIn(0, max, r) must draw the exact sequence of
// UniformDelay(max, r) so serial configs are unperturbed by the floor
// knob.
func TestUniformDelayInMatchesUniformDelayAtZeroFloor(t *testing.T) {
	a := UniformDelay(0.25, des.NewRand(99))
	b := UniformDelayIn(0, 0.25, des.NewRand(99))
	for i := 0; i < 1000; i++ {
		da, db := a(nil), b(nil)
		if da != db {
			t.Fatalf("draw %d: UniformDelay %v != UniformDelayIn %v", i, da, db)
		}
	}
}

// TestUniformDelayInRespectsFloor pins that every draw lands in
// (minDelay, maxDelay].
func TestUniformDelayInRespectsFloor(t *testing.T) {
	fn := UniformDelayIn(0.1, 0.25, des.NewRand(5))
	for i := 0; i < 1000; i++ {
		d := fn(nil)
		if d <= 0.1 || d > 0.25 {
			t.Fatalf("draw %d: delay %v outside (0.1, 0.25]", i, d)
		}
	}
}
