package transport

import (
	"testing"

	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/fault"
)

// wireFaults arms the rig's network with a defaulted fault plan drawn
// from a fresh root.
func wireFaults(r *rig, spec fault.Spec, n int, maxDelay float64) {
	m := fault.NewMessages()
	root := des.NewRand(99)
	m.Wire(spec.WithDefaults(100), maxDelay, n, root)
	r.net.SetFaults(m)
}

// TestFaultDropCountsSentNotDropped pins the accounting contract: a
// fault-dropped message increments Sent (it was sent; the plan lost it)
// and the plan's Drops counter — never transport Dropped, which stays
// reserved for edge-removal losses.
func TestFaultDropCountsSentNotDropped(t *testing.T) {
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.1), 1)
	wireFaults(r, fault.Spec{Drop: 1}, 2, 1)
	for i := 0; i < 5; i++ {
		if !r.net.Send(0, 1, float64(i)) {
			t.Fatalf("send %d refused over a present edge", i)
		}
	}
	r.en.Run(1)
	if len(r.got[1]) != 0 {
		t.Fatalf("certain drop delivered %d messages", len(r.got[1]))
	}
	s := r.net.Stats()
	if s.Sent != 5 || s.Dropped != 0 || s.Delivered != 0 {
		t.Fatalf("stats = %+v, want Sent=5 Dropped=0 Delivered=0", s)
	}
	if fs := r.net.FaultStats(); fs.Drops != 5 || fs.Total() != 5 {
		t.Fatalf("fault stats = %+v, want 5 drops", fs)
	}
}

// TestFaultDupDeliversTwice: a duplicated message arrives twice, the
// copy with its own delay draw, and both deliveries count.
func TestFaultDupDeliversTwice(t *testing.T) {
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.1), 1)
	wireFaults(r, fault.Spec{Dup: 1}, 2, 1)
	r.net.Send(0, 1, 7)
	r.en.Run(1)
	if len(r.got[1]) != 2 {
		t.Fatalf("delivered %d, want the original plus one duplicate", len(r.got[1]))
	}
	for _, m := range r.got[1] {
		if m.Value != 7 {
			t.Fatalf("duplicate corrupted the value: %+v", m)
		}
	}
	s := r.net.Stats()
	if s.Sent != 2 || s.Delivered != 2 {
		t.Fatalf("stats = %+v, want both flights counted", s)
	}
	if fs := r.net.FaultStats(); fs.Dups != 1 {
		t.Fatalf("fault stats = %+v, want 1 dup", fs)
	}
}

// TestFaultSpikeExceedsMaxDelay: a spiked delivery bypasses the
// transport's delay validation and lands strictly beyond MaxDelay, at
// most SpikeFactor times it.
func TestFaultSpikeExceedsMaxDelay(t *testing.T) {
	const maxDelay = 0.25
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.1), maxDelay)
	wireFaults(r, fault.Spec{DelaySpike: 1, SpikeFactor: 4}, 2, maxDelay)
	const sends = 20
	for i := 0; i < sends; i++ {
		r.net.Send(0, 1, float64(i))
	}
	r.en.Run(10)
	if len(r.got[1]) != sends {
		t.Fatalf("delivered %d, want %d", len(r.got[1]), sends)
	}
	for _, m := range r.got[1] {
		d := m.DeliverAt - m.SentAt
		if d <= maxDelay || d > 4*maxDelay {
			t.Fatalf("spiked delay %v outside (%v, %v]", d, maxDelay, 4*maxDelay)
		}
	}
	if fs := r.net.FaultStats(); fs.DelaySpikes != sends {
		t.Fatalf("fault stats = %+v, want %d spikes", fs, sends)
	}
}

// TestResetClearsFaults: Reset disarms the plan and zeroes its
// counters, so a reused network starts its next run unfaulted.
func TestResetClearsFaults(t *testing.T) {
	e := dyngraph.E(0, 1)
	r := newRig(t, 2, []dyngraph.Edge{e}, FixedDelay(0.1), 1)
	wireFaults(r, fault.Spec{Drop: 1}, 2, 1)
	r.net.Send(0, 1, 1)
	r.en.Reset()
	r.g.Reset(2, []dyngraph.Edge{e})
	r.net.Reset(FixedDelay(0.1), 1)
	if fs := r.net.FaultStats(); fs != (fault.Stats{}) {
		t.Fatalf("fault stats survived reset: %+v", fs)
	}
	r.net.Send(0, 1, 2)
	r.en.Run(1)
	if len(r.got[1]) != 1 || r.got[1][0].Value != 2 {
		t.Fatalf("post-reset send still faulted: %v", r.got[1])
	}
}

// TestResetDuringCoalescedFlightsConservesAccounting is the regression
// pinning Reset called while coalesced multi-value flights are in
// flight: the flights (and their pooled value buffers) are discarded
// cleanly, and post-reset value accounting — including the
// values-not-messages Dropped counter — starts from zero and stays
// conserved.
func TestResetDuringCoalescedFlightsConservesAccounting(t *testing.T) {
	e := dyngraph.E(0, 1)
	r := newRig(t, 2, []dyngraph.Edge{e}, FixedDelay(0.5), 1)
	r.net.SetCoalescing(true)
	// Two batches in flight: a 3-value batch 0->1 and a 2-value batch
	// 1->0, neither delivered yet.
	r.net.Send(0, 1, 1)
	r.net.Send(0, 1, 2)
	r.net.Send(0, 1, 3)
	r.net.Send(1, 0, 4)
	r.net.Send(1, 0, 5)
	if got := r.net.InFlight(e); got != 5 {
		t.Fatalf("in flight = %d values, want 5", got)
	}
	r.en.Reset()
	r.g.Reset(2, []dyngraph.Edge{e})
	r.net.Reset(FixedDelay(0.5), 1)
	if s := r.net.Stats(); s != (Stats{}) {
		t.Fatalf("stats after mid-flight reset = %+v, want zero", s)
	}
	if got := r.net.InFlight(e); got != 0 {
		t.Fatalf("in-flight values survived reset: %d", got)
	}

	// A fresh coalesced batch goes up, the edge is cut mid-flight: the
	// drop counter must count exactly the 2 values of the new batch —
	// nothing left over from the 5 discarded pre-reset values.
	r.net.SetCoalescing(true)
	r.net.Send(0, 1, 6)
	r.net.Send(0, 1, 7)
	r.en.Schedule(0.2, "cut", func() { r.g.Remove(r.en.Now(), e) })
	r.en.Run(2)
	if n := len(r.got[0]) + len(r.got[1]); n != 0 {
		t.Fatalf("%d deliveries after reset and cut, want 0", n)
	}
	if s := r.net.Stats(); s.Sent != 2 || s.Dropped != 2 || s.Delivered != 0 {
		t.Fatalf("stats = %+v, want Sent=2 Dropped=2 Delivered=0", s)
	}
}
