// Package transport implements the paper's bounded-delay message model
// (Kuhn, Locher, Oshman, SPAA 2009, Section 3.2) on top of the dynamic
// graph: every message sent over a present edge is delivered to the other
// endpoint after a delay in (0, maxDelay], unless the edge disappears
// while the message is in flight, in which case the message is lost.
// Messages never survive an edge removal — a later re-add of the same
// edge does not resurrect them — and deliveries on one edge with equal
// delays are FIFO (the DES kernel breaks ties by scheduling order).
//
// The layer subscribes to dyngraph topology events, so user code only
// drives the graph; in-flight bookkeeping is automatic.
//
// Delays are drawn per message from a base DelayFn, optionally overridden
// per directed edge by an EdgeDelayFn mask — the instrument of the
// Section 4 adversary, which charges asymmetric delays across the
// lower-bound network's two chains.
//
// With coalescing enabled (SetCoalescing), values sent over the same
// directed edge within one engine event are folded into a single pooled
// multi-value flight: the batch shares one drawn delay and one delivery
// event, capping delivery cost at one event per directed edge per tick
// however many values a tick carries. A singleton batch is
// indistinguishable from an uncoalesced send — same delay draw, same
// delivery — which is what the sim harness's coalesced/uncoalesced
// equivalence tests pin (the GCS algorithm sends at most one value per
// directed edge per tick, so its batches are all singletons today; the
// cap exists for multi-send workloads). Each layer owns its own
// default: a raw Network starts with coalescing off, so tests and
// adversarial schedules that construct one directly get the one-delivery
// -per-Send semantics, while the sim harness — the layer that wires
// production scenarios — switches it on for every run unless
// Config.NoCoalesce opts out. Code that wants batching on a raw Network
// must call SetCoalescing(true) itself.
//
// The send/deliver path is allocation-free in steady state: payloads are
// typed float64 values (the only payload the GCS model carries — a
// logical clock reading — so no boxing through an interface), in-flight
// batches live in a pooled arena indexed by small integers, the per-edge
// in-flight table and the per-node handler table are slice-backed, and
// Broadcast reuses one neighbor buffer per network and skips the edge
// presence check entirely (its targets come from the live adjacency).
package transport

import (
	"fmt"

	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/fault"
)

// Message is one point-to-point payload in flight or delivered. Value is
// the sender's logical clock reading — the model's only message content.
// When coalescing folded several same-tick values into one delivery,
// Values holds all of them (Value is Values[0], the first sent) and
// aliases pooled storage: handlers must consume it before sending new
// messages and must not retain it. Values is nil for singleton
// deliveries.
type Message struct {
	From, To  int
	Edge      dyngraph.Edge
	Value     float64
	Values    []float64
	SentAt    des.Time
	DeliverAt des.Time
}

// Handler consumes messages delivered to one node. It runs at the
// message's delivery time.
type Handler func(m Message)

// DelayFn draws the in-flight delay for a message about to be sent. The
// returned delay must lie in (0, maxDelay]; the Network panics otherwise,
// since a zero or oversized delay would break the paper's model.
type DelayFn func(m *Message) float64

// UniformDelay returns a DelayFn drawing uniformly from (0, maxDelay]
// using the given deterministic source.
func UniformDelay(maxDelay float64, r *des.Rand) DelayFn {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	return func(*Message) float64 {
		// 1 - Float64() is in (0, 1], so the delay is in (0, maxDelay].
		return maxDelay * (1 - r.Float64())
	}
}

// UniformDelayIn returns a DelayFn drawing uniformly from (minDelay,
// maxDelay] using the given deterministic source. With minDelay == 0 it
// draws the identical sequence as UniformDelay(maxDelay, r) — bit for
// bit, since 0 + (max-0)*u == max*u in float arithmetic — so a serial
// configuration gains a positive delay floor (the parallel engine's
// lookahead) without perturbing the legacy delay law.
func UniformDelayIn(minDelay, maxDelay float64, r *des.Rand) DelayFn {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	if minDelay < 0 || minDelay >= maxDelay {
		panic("transport: minDelay must lie in [0, maxDelay)")
	}
	return func(*Message) float64 {
		// 1 - Float64() is in (0, 1], so the delay is in (minDelay, maxDelay].
		return minDelay + (maxDelay-minDelay)*(1-r.Float64())
	}
}

// FixedDelay returns a DelayFn that always charges d. Adversarial
// schedules and tests use it to pin message timing exactly.
func FixedDelay(d float64) DelayFn {
	if d <= 0 {
		panic("transport: fixed delay must be positive")
	}
	return func(*Message) float64 { return d }
}

// EdgeDelayFn is a per-edge adversarial delay mask. It is consulted once
// per send with the directed pair (from, to) and returns the DelayFn to
// charge for that message, or nil to fall back to the network's base
// delay. This is the adversary of the paper's Section 4 lower bound,
// which charges the full maxDelay on the edges of one chain of the
// two-chain network and a near-zero delay on the other. The mask runs on
// the send hot path, so implementations must not allocate; returning
// pre-built DelayFn values (e.g. FixedDelay closures created once at
// wiring time) keeps the path allocation-free.
type EdgeDelayFn func(from, to int) DelayFn

// Stats counts transport activity over an execution. All counters count
// logical values, not batches: a coalesced delivery of k values counts k
// toward Delivered, so the traffic accounting of a coalesced execution
// matches its uncoalesced counterpart.
type Stats struct {
	// Sent counts values accepted for delivery.
	Sent uint64
	// Delivered counts values handed to a receiver handler.
	Delivered uint64
	// Dropped counts in-flight values lost to edge removals.
	Dropped uint64
	// Refused counts sends attempted over absent edges.
	Refused uint64
	// Coalesced counts values folded into an already-open batch (a
	// same-tick second send on a directed edge); each saved one delivery
	// event. Always 0 with coalescing off.
	Coalesced uint64
}

// flight is one in-flight batch: the delivery-event metadata plus the
// values folded into it (vals[0] mirrors msg.Value). Flights live in the
// Network's arena and are addressed by index, never by pointer, so
// recycling them — value buffers included — costs nothing.
type flight struct {
	msg  Message
	vals []float64
	ev   des.EventRef
	slot int32 // edge slot owning this flight
	pos  int32 // index within the slot's in-flight list
	dir  int8  // 0: sent U -> V, 1: sent V -> U
}

// slotState is the per-live-edge bookkeeping: the arena indices of the
// flights in flight on the edge, plus, per direction, the flight (index
// + 1; 0 = none) still accepting same-tick values while coalescing.
type slotState struct {
	flights []uint32
	open    [2]uint32
}

// Network is the bounded-delay transport over one dynamic graph. It is
// single-threaded, owned by the graph's engine.
type Network struct {
	en       *des.Engine
	g        *dyngraph.Dynamic
	maxDelay float64
	delay    DelayFn
	// mask, when non-nil, overrides delay per directed (from, to) pair.
	mask EdgeDelayFn
	// coalesce folds same-tick sends on a directed edge into one flight.
	coalesce bool
	// handlers is indexed by node id.
	handlers []Handler
	// edgeSlot assigns each edge currently carrying traffic a slot in
	// slots. Removing an edge recycles its slot through freeSlots
	// (keeping the list's capacity), so the table is bounded by the live
	// edge count even when churn eventually touches every node pair.
	edgeSlot  map[dyngraph.Edge]int32
	slots     []slotState
	freeSlots []int32
	// flights is the arena; freeFlights lists recycled indices.
	flights     []flight
	freeFlights []uint32
	// deliverFn is the single engine callback backing every delivery;
	// the event arg is the flight's arena index.
	deliverFn des.ArgHandler
	// nbuf is the reused Broadcast neighbor buffer.
	nbuf  []int
	stats Stats
	// faults, when non-nil, draws a per-message fault verdict (drop,
	// duplicate, delay spike) before the normal send path; faultStats
	// accumulates what fired.
	faults     *fault.Messages
	faultStats fault.Stats
}

// New creates a transport over g with the given delay law and bound, and
// subscribes it to g's topology events.
func New(en *des.Engine, g *dyngraph.Dynamic, delay DelayFn, maxDelay float64) *Network {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	if delay == nil {
		panic("transport: nil DelayFn")
	}
	n := &Network{
		en:       en,
		g:        g,
		maxDelay: maxDelay,
		delay:    delay,
		handlers: make([]Handler, g.N()),
		edgeSlot: make(map[dyngraph.Edge]int32),
	}
	n.deliverFn = func(arg uint64) { n.deliver(uint32(arg)) }
	g.Subscribe(n)
	return n
}

// Reset drops all in-flight traffic and counters and installs a new
// delay law, reusing the slot table, flight arena (value buffers
// included), and handler table, so a rewired simulation's transport
// allocates nothing in steady state. The delay mask is removed; the
// coalescing setting is kept. Call it after the engine has been Reset —
// pending delivery events are already recycled, so flights are released
// without cancelling them. Handlers registered for surviving node ids
// stay registered; the table grows if the graph was Reset to more nodes.
func (n *Network) Reset(delay DelayFn, maxDelay float64) {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	if delay == nil {
		panic("transport: nil DelayFn")
	}
	n.maxDelay = maxDelay
	n.delay = delay
	n.mask = nil
	clear(n.edgeSlot)
	n.freeSlots = n.freeSlots[:0]
	for i := range n.slots {
		n.slots[i].flights = n.slots[i].flights[:0]
		n.slots[i].open = [2]uint32{}
		n.freeSlots = append(n.freeSlots, int32(i))
	}
	n.freeFlights = n.freeFlights[:0]
	for i := range n.flights {
		n.flights[i].ev = des.EventRef{}
		n.freeFlights = append(n.freeFlights, uint32(i))
	}
	if g := n.g.N(); g > len(n.handlers) {
		grown := make([]Handler, g)
		copy(grown, n.handlers)
		n.handlers = grown
	}
	n.stats = Stats{}
	n.faults = nil
	n.faultStats = fault.Stats{}
}

// MaxDelay returns the configured delay bound.
func (n *Network) MaxDelay() float64 { return n.maxDelay }

// SetDelayMask installs (or, with nil, removes) a per-edge delay mask.
// While a mask is set, every send first asks mask(from, to) for a
// DelayFn; a non-nil answer overrides the network's base delay law for
// that message, a nil answer falls through to it. Masked delays are
// subject to the same (0, maxDelay] validation as base delays, and
// masked messages keep the usual in-flight semantics (in particular they
// are still dropped if their edge disappears before delivery). With
// coalescing, the mask is consulted once per batch (when the batch
// opens).
func (n *Network) SetDelayMask(mask EdgeDelayFn) { n.mask = mask }

// SetCoalescing enables or disables same-tick batching of sends on a
// directed edge. Changing the setting affects subsequent sends only.
func (n *Network) SetCoalescing(on bool) { n.coalesce = on }

// SetFaults installs (or, with nil, removes) a message-fault plan:
// every send first draws a verdict from it — dropped messages count
// toward Sent (the sender paid for them) and the plan's Drops, never
// toward Dropped (no edge removal occurred); duplicated messages send
// a second flight with its own nominal delay; spiked messages charge a
// delay beyond MaxDelay, exempt from the (0, maxDelay] validation.
// Message faults are meant to run with coalescing off (the sim harness
// enforces it): a verdict is drawn per send, and folding sends into an
// open batch would let one verdict govern many values. Reset removes
// the plan.
func (n *Network) SetFaults(m *fault.Messages) { n.faults = m }

// FaultStats returns the fault counters accumulated so far.
func (n *Network) FaultStats() fault.Stats { return n.faultStats }

// Stats returns the counters accumulated so far.
func (n *Network) Stats() Stats { return n.stats }

// SetHandler registers the delivery callback for node u, replacing any
// previous one. Messages delivered to a node with no handler are counted
// as delivered and discarded.
func (n *Network) SetHandler(u int, h Handler) { n.handlers[u] = h }

// InFlight returns the number of values currently in flight on e.
func (n *Network) InFlight(e dyngraph.Edge) int {
	slot, ok := n.edgeSlot[e]
	if !ok {
		return 0
	}
	total := 0
	for _, fi := range n.slots[slot].flights {
		total += len(n.flights[fi].vals)
	}
	return total
}

// Send transmits value from one endpoint of a present edge to the other.
// It reports whether the message was accepted; a send over an absent
// edge is refused (the model has no way to transmit without an edge).
func (n *Network) Send(from, to int, value float64) bool {
	e := dyngraph.E(from, to)
	if !n.g.Present(e) {
		n.stats.Refused++
		return false
	}
	n.send(from, to, e, value)
	return true
}

// send accepts a value over an edge known to be present, applying the
// fault plan (if any) before the normal path.
func (n *Network) send(from, to int, e dyngraph.Edge, value float64) {
	if n.faults != nil {
		v := n.faults.Draw(from, n.en.Now(), &n.faultStats)
		if v.Drop {
			// The sender paid for the message; the fault plan ate it.
			n.stats.Sent++
			return
		}
		n.sendOne(from, to, e, value, v.Delay)
		if v.Dup {
			n.sendOne(from, to, e, value, 0)
		}
		return
	}
	n.sendOne(from, to, e, value, 0)
}

// sendOne transmits one value over an edge known to be present.
// spikedDelay, when positive, is a fault-injected delay that may exceed
// maxDelay and bypasses the nominal-law validation; 0 draws from the
// usual delay law.
//
//gcslint:zeroalloc
func (n *Network) sendOne(from, to int, e dyngraph.Edge, value float64, spikedDelay float64) {
	now := n.en.Now()
	slot := n.slotFor(e)
	sl := &n.slots[slot]
	var dir int8
	if from != e.U {
		dir = 1
	}
	if n.coalesce {
		if oi := sl.open[dir]; oi != 0 {
			if f := &n.flights[oi-1]; f.msg.SentAt == now {
				// Same tick, same directed edge: fold into the open batch.
				f.vals = append(f.vals, value)
				n.stats.Sent++
				n.stats.Coalesced++
				return
			}
			sl.open[dir] = 0
		}
	}
	fi := n.allocFlight()
	f := &n.flights[fi]
	f.msg = Message{
		From:   from,
		To:     to,
		Edge:   e,
		Value:  value,
		SentAt: now,
	}
	f.vals = append(f.vals[:0], value)
	d := spikedDelay
	if d == 0 {
		delay := n.delay
		if n.mask != nil {
			if m := n.mask(from, to); m != nil {
				delay = m
			}
		}
		d = delay(&f.msg)
		if d <= 0 || d > n.maxDelay {
			panic(fmt.Sprintf("transport: delay %v outside (0, %v]", d, n.maxDelay))
		}
	}
	f.msg.DeliverAt = now + d
	f.ev = n.en.ScheduleArg(f.msg.DeliverAt, "transport.deliver", n.deliverFn, uint64(fi))
	f.slot = slot
	f.dir = dir
	f.pos = int32(len(sl.flights))
	sl.flights = append(sl.flights, fi)
	if n.coalesce {
		sl.open[dir] = fi + 1
	}
	n.stats.Sent++
}

// Broadcast sends value from u to every current neighbor, in ascending
// neighbor order, and returns the number of values sent. The neighbor
// set comes from the live adjacency, so the per-send edge presence check
// is skipped entirely. It reuses one per-network neighbor buffer, so it
// must not be called reentrantly from inside another Broadcast's send
// loop (deliveries happen later, from engine events, so handlers may
// broadcast freely).
//
//gcslint:zeroalloc
func (n *Network) Broadcast(from int, value float64) int {
	n.nbuf = n.g.AppendNeighbors(from, n.nbuf[:0])
	for _, v := range n.nbuf {
		n.send(from, v, dyngraph.E(from, v), value)
	}
	return len(n.nbuf)
}

// allocFlight returns a free arena index, growing the arena if the free
// list is empty.
//
//gcslint:zeroalloc
func (n *Network) allocFlight() uint32 {
	if k := len(n.freeFlights); k > 0 {
		fi := n.freeFlights[k-1]
		n.freeFlights = n.freeFlights[:k-1]
		return fi
	}
	n.flights = append(n.flights, flight{})
	return uint32(len(n.flights) - 1)
}

// slotFor returns e's slot, assigning one (recycled if possible) on
// first use since the edge last appeared.
//
//gcslint:zeroalloc
func (n *Network) slotFor(e dyngraph.Edge) int32 {
	slot, ok := n.edgeSlot[e]
	if !ok {
		if k := len(n.freeSlots); k > 0 {
			slot = n.freeSlots[k-1]
			n.freeSlots = n.freeSlots[:k-1]
		} else {
			slot = int32(len(n.slots))
			n.slots = append(n.slots, slotState{})
		}
		n.edgeSlot[e] = slot
	}
	return slot
}

// deliver hands flight fi's batch to the destination handler and
// recycles the flight. A singleton flight is released before the handler
// runs, so the handler may send new messages that reuse it; a multi-value
// flight is released after the handler returns, because the delivered
// Message.Values aliases the flight's pooled buffer.
//
//gcslint:zeroalloc
func (n *Network) deliver(fi uint32) {
	f := &n.flights[fi]
	sl := &n.slots[f.slot]
	if sl.open[f.dir] == fi+1 {
		sl.open[f.dir] = 0
	}
	// Unlink from the edge's in-flight list: swap-remove, fixing the
	// moved flight's position.
	list := sl.flights
	last := len(list) - 1
	moved := list[last]
	list[f.pos] = moved
	n.flights[moved].pos = f.pos
	sl.flights = list[:last]

	msg := f.msg
	k := len(f.vals)
	n.stats.Delivered += uint64(k)
	if k > 1 {
		msg.Values = f.vals
		if h := n.handlers[msg.To]; h != nil {
			h(msg)
		}
		f = &n.flights[fi] // the handler may have grown the arena
		f.ev = des.EventRef{}
		n.freeFlights = append(n.freeFlights, fi)
		return
	}
	f.ev = des.EventRef{}
	n.freeFlights = append(n.freeFlights, fi)
	if h := n.handlers[msg.To]; h != nil {
		h(msg)
	}
}

// EdgeAdded implements dyngraph.Subscriber. A fresh edge carries no
// traffic: in particular, messages dropped during an earlier absence of
// the same edge stay dropped.
func (n *Network) EdgeAdded(t float64, e dyngraph.Edge) {}

// EdgeRemoved implements dyngraph.Subscriber: every value in flight on
// the removed edge is lost (the paper's model drops messages whose edge
// disappears before delivery).
func (n *Network) EdgeRemoved(t float64, e dyngraph.Edge) {
	slot, ok := n.edgeSlot[e]
	if !ok {
		return
	}
	sl := &n.slots[slot]
	for _, fi := range sl.flights {
		f := &n.flights[fi]
		n.en.Cancel(f.ev)
		f.ev = des.EventRef{}
		n.stats.Dropped += uint64(len(f.vals))
		n.freeFlights = append(n.freeFlights, fi)
	}
	// Recycle the slot: all its flights are gone, and the edge must be
	// re-added before it can carry traffic again.
	sl.flights = sl.flights[:0]
	sl.open = [2]uint32{}
	delete(n.edgeSlot, e)
	n.freeSlots = append(n.freeSlots, slot)
}
