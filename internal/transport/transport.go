// Package transport implements the paper's bounded-delay message model
// (Kuhn, Locher, Oshman, SPAA 2009, Section 3.2) on top of the dynamic
// graph: every message sent over a present edge is delivered to the other
// endpoint after a delay in (0, maxDelay], unless the edge disappears
// while the message is in flight, in which case the message is lost.
// Messages never survive an edge removal — a later re-add of the same
// edge does not resurrect them — and deliveries on one edge with equal
// delays are FIFO (the DES kernel breaks ties by scheduling order).
//
// The layer subscribes to dyngraph topology events, so user code only
// drives the graph; in-flight bookkeeping is automatic.
package transport

import (
	"fmt"

	"gcs/internal/des"
	"gcs/internal/dyngraph"
)

// Message is one point-to-point payload in flight or delivered.
type Message struct {
	From, To  int
	Edge      dyngraph.Edge
	Payload   any
	SentAt    des.Time
	DeliverAt des.Time
}

// Handler consumes messages delivered to one node. It runs at the
// message's delivery time.
type Handler func(m Message)

// DelayFn draws the in-flight delay for a message about to be sent. The
// returned delay must lie in (0, maxDelay]; the Network panics otherwise,
// since a zero or oversized delay would break the paper's model.
type DelayFn func(m *Message) float64

// UniformDelay returns a DelayFn drawing uniformly from (0, maxDelay]
// using the given deterministic source.
func UniformDelay(maxDelay float64, r *des.Rand) DelayFn {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	return func(*Message) float64 {
		// 1 - Float64() is in (0, 1], so the delay is in (0, maxDelay].
		return maxDelay * (1 - r.Float64())
	}
}

// FixedDelay returns a DelayFn that always charges d. Adversarial
// schedules and tests use it to pin message timing exactly.
func FixedDelay(d float64) DelayFn {
	if d <= 0 {
		panic("transport: fixed delay must be positive")
	}
	return func(*Message) float64 { return d }
}

// Stats counts transport activity over an execution.
type Stats struct {
	// Sent counts messages accepted for delivery.
	Sent uint64
	// Delivered counts messages handed to a receiver handler.
	Delivered uint64
	// Dropped counts in-flight messages lost to edge removals.
	Dropped uint64
	// Refused counts sends attempted over absent edges.
	Refused uint64
}

// flight is one in-flight message and the engine event that delivers it.
type flight struct {
	msg Message
	ev  *des.Event
}

// Network is the bounded-delay transport over one dynamic graph. It is
// single-threaded, owned by the graph's engine.
type Network struct {
	en       *des.Engine
	g        *dyngraph.Dynamic
	maxDelay float64
	delay    DelayFn
	handlers map[int]Handler
	inflight map[dyngraph.Edge][]*flight
	stats    Stats
}

// New creates a transport over g with the given delay law and bound, and
// subscribes it to g's topology events.
func New(en *des.Engine, g *dyngraph.Dynamic, delay DelayFn, maxDelay float64) *Network {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	if delay == nil {
		panic("transport: nil DelayFn")
	}
	n := &Network{
		en:       en,
		g:        g,
		maxDelay: maxDelay,
		delay:    delay,
		handlers: make(map[int]Handler),
		inflight: make(map[dyngraph.Edge][]*flight),
	}
	g.Subscribe(n)
	return n
}

// MaxDelay returns the configured delay bound.
func (n *Network) MaxDelay() float64 { return n.maxDelay }

// Stats returns the counters accumulated so far.
func (n *Network) Stats() Stats { return n.stats }

// SetHandler registers the delivery callback for node u, replacing any
// previous one. Messages delivered to a node with no handler are counted
// as delivered and discarded.
func (n *Network) SetHandler(u int, h Handler) { n.handlers[u] = h }

// InFlight returns the number of messages currently in flight on e.
func (n *Network) InFlight(e dyngraph.Edge) int { return len(n.inflight[e]) }

// Send transmits payload from one endpoint of a present edge to the
// other. It reports whether the message was accepted; a send over an
// absent edge is refused (the model has no way to transmit without an
// edge).
func (n *Network) Send(from, to int, payload any) bool {
	e := dyngraph.E(from, to)
	if !n.g.Present(e) {
		n.stats.Refused++
		return false
	}
	now := n.en.Now()
	f := &flight{msg: Message{
		From:    from,
		To:      to,
		Edge:    e,
		Payload: payload,
		SentAt:  now,
	}}
	d := n.delay(&f.msg)
	if d <= 0 || d > n.maxDelay {
		panic(fmt.Sprintf("transport: delay %v outside (0, %v]", d, n.maxDelay))
	}
	f.msg.DeliverAt = now + d
	f.ev = n.en.Schedule(f.msg.DeliverAt, "transport.deliver", func() {
		n.deliver(f)
	})
	n.inflight[e] = append(n.inflight[e], f)
	n.stats.Sent++
	return true
}

// Broadcast sends payload from u to every current neighbor, in ascending
// neighbor order, and returns the number of messages sent.
func (n *Network) Broadcast(from int, payload any) int {
	sent := 0
	for _, v := range n.g.Neighbors(from) {
		if n.Send(from, v, payload) {
			sent++
		}
	}
	return sent
}

func (n *Network) deliver(f *flight) {
	n.forget(f)
	n.stats.Delivered++
	if h := n.handlers[f.msg.To]; h != nil {
		h(f.msg)
	}
}

// forget removes f from its edge's in-flight list.
func (n *Network) forget(f *flight) {
	fs := n.inflight[f.msg.Edge]
	for i, g := range fs {
		if g == f {
			fs[i] = fs[len(fs)-1]
			fs = fs[:len(fs)-1]
			break
		}
	}
	if len(fs) == 0 {
		delete(n.inflight, f.msg.Edge)
	} else {
		n.inflight[f.msg.Edge] = fs
	}
}

// EdgeAdded implements dyngraph.Subscriber. A fresh edge carries no
// traffic: in particular, messages dropped during an earlier absence of
// the same edge stay dropped.
func (n *Network) EdgeAdded(t float64, e dyngraph.Edge) {}

// EdgeRemoved implements dyngraph.Subscriber: every message in flight on
// the removed edge is lost (the paper's model drops messages whose edge
// disappears before delivery).
func (n *Network) EdgeRemoved(t float64, e dyngraph.Edge) {
	for _, f := range n.inflight[e] {
		n.en.Cancel(f.ev)
		n.stats.Dropped++
	}
	delete(n.inflight, e)
}
