// Package transport implements the paper's bounded-delay message model
// (Kuhn, Locher, Oshman, SPAA 2009, Section 3.2) on top of the dynamic
// graph: every message sent over a present edge is delivered to the other
// endpoint after a delay in (0, maxDelay], unless the edge disappears
// while the message is in flight, in which case the message is lost.
// Messages never survive an edge removal — a later re-add of the same
// edge does not resurrect them — and deliveries on one edge with equal
// delays are FIFO (the DES kernel breaks ties by scheduling order).
//
// The layer subscribes to dyngraph topology events, so user code only
// drives the graph; in-flight bookkeeping is automatic.
//
// Delays are drawn per message from a base DelayFn, optionally overridden
// per directed edge by an EdgeDelayFn mask — the instrument of the
// Section 4 adversary, which charges asymmetric delays across the
// lower-bound network's two chains.
//
// The send/deliver path is allocation-free in steady state: payloads are
// typed float64 values (the only payload the GCS model carries — a
// logical clock reading — so no boxing through an interface), in-flight
// messages live in a pooled arena indexed by small integers, the
// per-edge in-flight table and the per-node handler table are
// slice-backed, and Broadcast reuses one neighbor buffer per network.
package transport

import (
	"fmt"

	"gcs/internal/des"
	"gcs/internal/dyngraph"
)

// Message is one point-to-point payload in flight or delivered. Value is
// the sender's logical clock reading — the model's only message content.
type Message struct {
	From, To  int
	Edge      dyngraph.Edge
	Value     float64
	SentAt    des.Time
	DeliverAt des.Time
}

// Handler consumes messages delivered to one node. It runs at the
// message's delivery time.
type Handler func(m Message)

// DelayFn draws the in-flight delay for a message about to be sent. The
// returned delay must lie in (0, maxDelay]; the Network panics otherwise,
// since a zero or oversized delay would break the paper's model.
type DelayFn func(m *Message) float64

// UniformDelay returns a DelayFn drawing uniformly from (0, maxDelay]
// using the given deterministic source.
func UniformDelay(maxDelay float64, r *des.Rand) DelayFn {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	return func(*Message) float64 {
		// 1 - Float64() is in (0, 1], so the delay is in (0, maxDelay].
		return maxDelay * (1 - r.Float64())
	}
}

// FixedDelay returns a DelayFn that always charges d. Adversarial
// schedules and tests use it to pin message timing exactly.
func FixedDelay(d float64) DelayFn {
	if d <= 0 {
		panic("transport: fixed delay must be positive")
	}
	return func(*Message) float64 { return d }
}

// EdgeDelayFn is a per-edge adversarial delay mask. It is consulted once
// per send with the directed pair (from, to) and returns the DelayFn to
// charge for that message, or nil to fall back to the network's base
// delay law. This is the adversary of the paper's Section 4 lower bound,
// which charges the full maxDelay on the edges of one chain of the
// two-chain network and a near-zero delay on the other. The mask runs on
// the send hot path, so implementations must not allocate; returning
// pre-built DelayFn values (e.g. FixedDelay closures created once at
// wiring time) keeps the path allocation-free.
type EdgeDelayFn func(from, to int) DelayFn

// Stats counts transport activity over an execution.
type Stats struct {
	// Sent counts messages accepted for delivery.
	Sent uint64
	// Delivered counts messages handed to a receiver handler.
	Delivered uint64
	// Dropped counts in-flight messages lost to edge removals.
	Dropped uint64
	// Refused counts sends attempted over absent edges.
	Refused uint64
}

// flight is one in-flight message, its delivery event, and its position
// in the per-edge in-flight list. Flights live in the Network's arena
// and are addressed by index, never by pointer, so recycling them costs
// nothing.
type flight struct {
	msg  Message
	ev   des.EventRef
	slot int32 // edge slot owning this flight
	pos  int32 // index within the slot's in-flight list
}

// Network is the bounded-delay transport over one dynamic graph. It is
// single-threaded, owned by the graph's engine.
type Network struct {
	en       *des.Engine
	g        *dyngraph.Dynamic
	maxDelay float64
	delay    DelayFn
	// mask, when non-nil, overrides delay per directed (from, to) pair.
	mask EdgeDelayFn
	// handlers is indexed by node id.
	handlers []Handler
	// edgeSlot assigns each edge currently carrying traffic a slot in
	// slots; slots[slot] lists the arena indices of the flights in flight
	// on that edge. Removing an edge recycles its slot through freeSlots
	// (keeping the list's capacity), so the table is bounded by the live
	// edge count even when churn eventually touches every node pair.
	edgeSlot  map[dyngraph.Edge]int32
	slots     [][]uint32
	freeSlots []int32
	// flights is the arena; freeFlights lists recycled indices.
	flights     []flight
	freeFlights []uint32
	// deliverFn is the single engine callback backing every delivery;
	// the event arg is the flight's arena index.
	deliverFn des.ArgHandler
	// nbuf is the reused Broadcast neighbor buffer.
	nbuf  []int
	stats Stats
}

// New creates a transport over g with the given delay law and bound, and
// subscribes it to g's topology events.
func New(en *des.Engine, g *dyngraph.Dynamic, delay DelayFn, maxDelay float64) *Network {
	if maxDelay <= 0 {
		panic("transport: maxDelay must be positive")
	}
	if delay == nil {
		panic("transport: nil DelayFn")
	}
	n := &Network{
		en:       en,
		g:        g,
		maxDelay: maxDelay,
		delay:    delay,
		handlers: make([]Handler, g.N()),
		edgeSlot: make(map[dyngraph.Edge]int32),
	}
	n.deliverFn = func(arg uint64) { n.deliver(uint32(arg)) }
	g.Subscribe(n)
	return n
}

// MaxDelay returns the configured delay bound.
func (n *Network) MaxDelay() float64 { return n.maxDelay }

// SetDelayMask installs (or, with nil, removes) a per-edge delay mask.
// While a mask is set, every send first asks mask(from, to) for a
// DelayFn; a non-nil answer overrides the network's base delay law for
// that message, a nil answer falls through to it. Masked delays are
// subject to the same (0, maxDelay] validation as base delays, and
// masked messages keep the usual in-flight semantics (in particular they
// are still dropped if their edge disappears before delivery).
func (n *Network) SetDelayMask(mask EdgeDelayFn) { n.mask = mask }

// Stats returns the counters accumulated so far.
func (n *Network) Stats() Stats { return n.stats }

// SetHandler registers the delivery callback for node u, replacing any
// previous one. Messages delivered to a node with no handler are counted
// as delivered and discarded.
func (n *Network) SetHandler(u int, h Handler) { n.handlers[u] = h }

// InFlight returns the number of messages currently in flight on e.
func (n *Network) InFlight(e dyngraph.Edge) int {
	slot, ok := n.edgeSlot[e]
	if !ok {
		return 0
	}
	return len(n.slots[slot])
}

// Send transmits value from one endpoint of a present edge to the other.
// It reports whether the message was accepted; a send over an absent
// edge is refused (the model has no way to transmit without an edge).
func (n *Network) Send(from, to int, value float64) bool {
	e := dyngraph.E(from, to)
	if !n.g.Present(e) {
		n.stats.Refused++
		return false
	}
	now := n.en.Now()
	fi := n.allocFlight()
	f := &n.flights[fi]
	f.msg = Message{
		From:   from,
		To:     to,
		Edge:   e,
		Value:  value,
		SentAt: now,
	}
	delay := n.delay
	if n.mask != nil {
		if m := n.mask(from, to); m != nil {
			delay = m
		}
	}
	d := delay(&f.msg)
	if d <= 0 || d > n.maxDelay {
		panic(fmt.Sprintf("transport: delay %v outside (0, %v]", d, n.maxDelay))
	}
	f.msg.DeliverAt = now + d
	f.ev = n.en.ScheduleArg(f.msg.DeliverAt, "transport.deliver", n.deliverFn, uint64(fi))
	slot := n.slotFor(e)
	f.slot = slot
	f.pos = int32(len(n.slots[slot]))
	n.slots[slot] = append(n.slots[slot], fi)
	n.stats.Sent++
	return true
}

// Broadcast sends value from u to every current neighbor, in ascending
// neighbor order, and returns the number of messages sent. It reuses one
// per-network neighbor buffer, so it must not be called reentrantly from
// inside another Broadcast's send loop (deliveries happen later, from
// engine events, so handlers may broadcast freely).
func (n *Network) Broadcast(from int, value float64) int {
	n.nbuf = n.g.AppendNeighbors(from, n.nbuf[:0])
	sent := 0
	for _, v := range n.nbuf {
		if n.Send(from, v, value) {
			sent++
		}
	}
	return sent
}

// allocFlight returns a free arena index, growing the arena if the free
// list is empty.
func (n *Network) allocFlight() uint32 {
	if k := len(n.freeFlights); k > 0 {
		fi := n.freeFlights[k-1]
		n.freeFlights = n.freeFlights[:k-1]
		return fi
	}
	n.flights = append(n.flights, flight{})
	return uint32(len(n.flights) - 1)
}

// slotFor returns e's slot, assigning one (recycled if possible) on
// first use since the edge last appeared.
func (n *Network) slotFor(e dyngraph.Edge) int32 {
	slot, ok := n.edgeSlot[e]
	if !ok {
		if k := len(n.freeSlots); k > 0 {
			slot = n.freeSlots[k-1]
			n.freeSlots = n.freeSlots[:k-1]
		} else {
			slot = int32(len(n.slots))
			n.slots = append(n.slots, nil)
		}
		n.edgeSlot[e] = slot
	}
	return slot
}

// deliver hands flight fi's message to the destination handler and
// recycles the flight. The flight is released before the handler runs,
// so the handler may send new messages that reuse it.
func (n *Network) deliver(fi uint32) {
	f := &n.flights[fi]
	// Unlink from the edge's in-flight list: swap-remove, fixing the
	// moved flight's position.
	list := n.slots[f.slot]
	last := len(list) - 1
	moved := list[last]
	list[f.pos] = moved
	n.flights[moved].pos = f.pos
	n.slots[f.slot] = list[:last]

	msg := f.msg
	f.ev = des.EventRef{}
	n.freeFlights = append(n.freeFlights, fi)
	n.stats.Delivered++
	if h := n.handlers[msg.To]; h != nil {
		h(msg)
	}
}

// EdgeAdded implements dyngraph.Subscriber. A fresh edge carries no
// traffic: in particular, messages dropped during an earlier absence of
// the same edge stay dropped.
func (n *Network) EdgeAdded(t float64, e dyngraph.Edge) {}

// EdgeRemoved implements dyngraph.Subscriber: every message in flight on
// the removed edge is lost (the paper's model drops messages whose edge
// disappears before delivery).
func (n *Network) EdgeRemoved(t float64, e dyngraph.Edge) {
	slot, ok := n.edgeSlot[e]
	if !ok {
		return
	}
	list := n.slots[slot]
	for _, fi := range list {
		f := &n.flights[fi]
		n.en.Cancel(f.ev)
		f.ev = des.EventRef{}
		n.freeFlights = append(n.freeFlights, fi)
		n.stats.Dropped++
	}
	// Recycle the slot: all its flights are gone, and the edge must be
	// re-added before it can carry traffic again.
	n.slots[slot] = list[:0]
	delete(n.edgeSlot, e)
	n.freeSlots = append(n.freeSlots, slot)
}
