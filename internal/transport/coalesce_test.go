package transport

import (
	"reflect"
	"testing"

	"gcs/internal/des"
	"gcs/internal/dyngraph"
)

// TestCoalescedSameTickSendsShareOneDelivery pins the batching contract:
// values sent over the same directed edge within one engine event fold
// into one flight — one drawn delay, one delivery event — and arrive as
// a single multi-value Message.
func TestCoalescedSameTickSendsShareOneDelivery(t *testing.T) {
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.25), 1)
	r.net.SetCoalescing(true)
	r.net.Send(0, 1, 3)
	r.net.Send(0, 1, 9)
	r.net.Send(0, 1, 5)
	// The reverse direction opens its own batch.
	r.net.Send(1, 0, 7)
	before := r.en.Executed()
	r.en.Run(1)
	if fired := r.en.Executed() - before; fired != 2 {
		t.Fatalf("fired %d delivery events, want 2 (one per direction)", fired)
	}
	if len(r.got[1]) != 1 {
		t.Fatalf("node 1 saw %d deliveries, want 1 batch", len(r.got[1]))
	}
	m := r.got[1][0]
	if m.Value != 3 || !reflect.DeepEqual(m.Values, []float64{3, 9, 5}) {
		t.Fatalf("batch = value %v values %v, want 3 and [3 9 5]", m.Value, m.Values)
	}
	if d := m.DeliverAt - m.SentAt; d != 0.25 {
		t.Fatalf("batch delay = %v, want one 0.25 draw", d)
	}
	if len(r.got[0]) != 1 || r.got[0][0].Values != nil || r.got[0][0].Value != 7 {
		t.Fatalf("reverse direction = %+v, want singleton 7", r.got[0])
	}
	s := r.net.Stats()
	if s.Sent != 4 || s.Delivered != 4 || s.Coalesced != 2 {
		t.Fatalf("stats = %+v, want Sent=4 Delivered=4 Coalesced=2", s)
	}
}

// TestCoalescedLaterTickOpensNewBatch: the open batch closes the moment
// simulated time advances; a later send gets its own flight and delay.
func TestCoalescedLaterTickOpensNewBatch(t *testing.T) {
	r := newRig(t, 2, []dyngraph.Edge{dyngraph.E(0, 1)}, FixedDelay(0.25), 1)
	r.net.SetCoalescing(true)
	r.net.Send(0, 1, 1)
	r.en.Schedule(0.1, "later", func() { r.net.Send(0, 1, 2) })
	r.en.Run(1)
	if len(r.got[1]) != 2 {
		t.Fatalf("deliveries = %d, want 2 separate flights", len(r.got[1]))
	}
	for i, m := range r.got[1] {
		if m.Values != nil || m.Value != float64(i+1) {
			t.Fatalf("delivery %d = %+v, want singleton %d", i, m, i+1)
		}
	}
	if s := r.net.Stats(); s.Coalesced != 0 {
		t.Fatalf("cross-tick sends coalesced: %+v", s)
	}
}

// TestCoalescedBatchDroppedOnEdgeRemoval: an edge removal loses every
// value of an in-flight batch, and the drop counter counts values.
func TestCoalescedBatchDroppedOnEdgeRemoval(t *testing.T) {
	e := dyngraph.E(0, 1)
	r := newRig(t, 2, []dyngraph.Edge{e}, FixedDelay(0.5), 1)
	r.net.SetCoalescing(true)
	r.net.Send(0, 1, 1)
	r.net.Send(0, 1, 2)
	if got := r.net.InFlight(e); got != 2 {
		t.Fatalf("in flight = %d values, want 2", got)
	}
	r.en.Schedule(0.2, "cut", func() { r.g.Remove(r.en.Now(), e) })
	r.en.Run(5)
	if len(r.got[1]) != 0 {
		t.Fatalf("batch delivered despite edge removal: %v", r.got[1])
	}
	if s := r.net.Stats(); s.Sent != 2 || s.Dropped != 2 || s.Delivered != 0 {
		t.Fatalf("stats = %+v, want Sent=2 Dropped=2", s)
	}
	// The healed edge starts a fresh batch; dropped values stay dropped.
	r.en.Schedule(5.5, "heal", func() { r.g.Add(r.en.Now(), e); r.net.Send(0, 1, 42) })
	r.en.Run(10)
	if len(r.got[1]) != 1 || r.got[1][0].Value != 42 {
		t.Fatalf("fresh send after heal = %v", r.got[1])
	}
}

// TestCoalescedSendSteadyStateDoesNotAllocate extends the zero-alloc pin
// to the batching path: folding values into an open batch and delivering
// multi-value flights reuses pooled value buffers.
func TestCoalescedSendSteadyStateDoesNotAllocate(t *testing.T) {
	en := des.NewEngine()
	g := dyngraph.NewDynamic(2, []dyngraph.Edge{dyngraph.E(0, 1)})
	net := New(en, g, FixedDelay(0.1), 1)
	net.SetCoalescing(true)
	// Warm up the flight arena, batch value buffers, and event pool.
	for i := 0; i < 64; i++ {
		net.Send(0, 1, float64(i))
		net.Send(0, 1, float64(i))
		en.Run(en.Now() + 1)
	}
	allocs := testing.AllocsPerRun(200, func() {
		net.Send(0, 1, 1)
		net.Send(0, 1, 2)
		net.Send(0, 1, 3)
		en.Run(en.Now() + 1)
	})
	if allocs > 0 {
		t.Errorf("steady-state coalesced send+deliver allocated %v objects/op, want 0", allocs)
	}
}

// TestNetworkResetReusesState: after Reset the network behaves like a
// fresh one (clean stats, no in-flight traffic, mask removed) while
// reusing its arenas, and handlers stay registered.
func TestNetworkResetReusesState(t *testing.T) {
	e := dyngraph.E(0, 1)
	en := des.NewEngine()
	g := dyngraph.NewDynamic(2, []dyngraph.Edge{e})
	net := New(en, g, FixedDelay(0.5), 1)
	var got []Message
	net.SetHandler(1, func(m Message) { got = append(got, m) })
	net.SetDelayMask(func(from, to int) DelayFn { return FixedDelay(0.9) })
	for i := 0; i < 8; i++ {
		net.Send(0, 1, float64(i))
	}
	// Reset mid-flight: the engine drops the delivery events, the network
	// drops the flights.
	en.Reset()
	g.Reset(2, []dyngraph.Edge{e})
	net.Reset(FixedDelay(0.25), 1)
	if s := net.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}
	if net.InFlight(e) != 0 {
		t.Fatalf("in-flight traffic survived reset: %d", net.InFlight(e))
	}
	net.Send(0, 1, 42)
	en.Run(1)
	if len(got) != 1 || got[0].Value != 42 {
		t.Fatalf("post-reset delivery = %v, want [42]", got)
	}
	// The new base delay applies and the old mask is gone.
	if d := got[0].DeliverAt - got[0].SentAt; d != 0.25 {
		t.Fatalf("post-reset delay = %v, want fresh base 0.25", d)
	}
	if s := net.Stats(); s.Sent != 1 || s.Delivered != 1 {
		t.Fatalf("post-reset stats = %+v", s)
	}
}
