package transport

import "gcs/internal/seam"

// Network is the DES-side seam.Sender: gcs nodes broadcast beacons and
// unicast discovery values through it without importing this package.
// The signature match is deliberate — Broadcast/Send ARE the seam.
var _ seam.Sender = (*Network)(nil)
