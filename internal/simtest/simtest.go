// Package simtest holds shared test helpers for the harness packages.
// Its centerpiece is the golden-report assertion: many suites pin that
// two executions produce bit-identical SkewReports (same-config
// determinism, parallel worker-invariance, coalescing equivalence,
// arena reuse), and a bare reflect.DeepEqual failure on a 20-field
// struct is unreadable. AssertSameReport diffs field by field and fails
// with exactly the fields that diverged.
//
// The helpers take `any` and work by reflection so this package imports
// none of the harness packages — it is usable from sim's own in-package
// tests (which could not import a package that imports sim) and from
// every other harness (rt, bench) alike.
package simtest

import (
	"fmt"
	"math"
	"reflect"
)

// TB is the subset of testing.TB the assertions need; *testing.T and
// *testing.B satisfy it. Declared locally so this package does not
// import testing into non-test builds of its dependents.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Diff compares two values of the same struct type field by field and
// returns one human-readable line per differing leaf ("Transport.Sent:
// 100 != 101"). Nil for equal values. Floats compare bit-meaningfully:
// NaN equals NaN (a poisoned sample must not read as a spurious diff),
// +0 equals -0.
func Diff(got, want any) []string {
	a, b := reflect.ValueOf(got), reflect.ValueOf(want)
	if a.Type() != b.Type() {
		return []string{fmt.Sprintf("type mismatch: %T != %T", got, want)}
	}
	var out []string
	diffValue("", a, b, &out)
	return out
}

func diffValue(path string, a, b reflect.Value, out *[]string) {
	switch a.Kind() {
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			diffValue(join(path, t.Field(i).Name), a.Field(i), b.Field(i), out)
		}
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && (a.IsNil() != b.IsNil()) {
			*out = append(*out, fmt.Sprintf("%s: nil-ness differs (%v != %v)", path, a, b))
			return
		}
		if a.Len() != b.Len() {
			*out = append(*out, fmt.Sprintf("%s: length %d != %d", path, a.Len(), b.Len()))
			return
		}
		for i := 0; i < a.Len(); i++ {
			diffValue(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), out)
		}
	case reflect.Float64, reflect.Float32:
		x, y := a.Float(), b.Float()
		if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
			*out = append(*out, fmt.Sprintf("%s: %v != %v", path, x, y))
		}
	case reflect.Ptr, reflect.Interface, reflect.Map:
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			*out = append(*out, fmt.Sprintf("%s: %v != %v", path, a, b))
		}
	default:
		if !a.Equal(b) {
			*out = append(*out, fmt.Sprintf("%s: %v != %v", path, a, b))
		}
	}
}

func join(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}

// Equal reports whether Diff finds no differences.
func Equal(got, want any) bool { return len(Diff(got, want)) == 0 }

// AssertSameReport fails the test unless got and want are bit-identical,
// listing exactly the fields that diverged. label names the equivalence
// being pinned ("workers=4 vs workers=1", "rerun", "coalescing off").
func AssertSameReport(tb TB, label string, got, want any) {
	tb.Helper()
	if diffs := Diff(got, want); len(diffs) != 0 {
		msg := fmt.Sprintf("%s: reports differ in %d field(s):", label, len(diffs))
		for _, d := range diffs {
			msg += "\n  " + d
		}
		tb.Fatalf("%s", msg)
	}
}

// AssertReportsDiffer fails the test if got and want are bit-identical —
// the negative control (e.g. a seed change must perturb the execution).
func AssertReportsDiffer(tb TB, label string, got, want any) {
	tb.Helper()
	if Equal(got, want) {
		tb.Fatalf("%s: reports identical, expected a difference", label)
	}
}
