package analysis

import "strings"

// Package-level policy: which rules bind which packages. This is the
// "config" half of the suppression story (the //gcslint:allow directive
// is the per-site half): a package is either under a rule's contract or
// it is not, and the decision is reviewable here rather than scattered
// through the tree.
//
// internal/rt is deliberately inside the nondeterminism contract even
// though it is the wall-clock runtime: its four intentional wall reads
// (DriftClock's piecewise-linear anchor and the runtime's simNow) carry
// per-site //gcslint:allow annotations, so any NEW wall read added to
// rt has to be argued for in review instead of sliding in silently.

// deterministicPkgs are the packages whose executions must be pure
// functions of the scenario Config (bit-identical reports across reruns
// and worker counts). nondeterminism and maprange bind here.
//
// internal/store and internal/jobd are inside the contract because the
// sweep service's whole design rests on cell results being cacheable
// facts: the store content-addresses configs and the daemon dedupes,
// retries, and resumes against those addresses. Wall time may enter
// only through jobd's injected Clock seam (whose production edge
// carries the per-site allow), never the scheduling or storage logic
// itself.
var deterministicPkgs = map[string]bool{
	"gcs/internal/des":       true,
	"gcs/internal/sim":       true,
	"gcs/internal/gcs":       true,
	"gcs/internal/transport": true,
	"gcs/internal/dyngraph":  true,
	"gcs/internal/fault":     true,
	"gcs/internal/clock":     true,
	"gcs/internal/seam":      true,
	"gcs/internal/rt":        true,
	"gcs/internal/store":     true,
	"gcs/internal/jobd":      true,
}

// maprangeExtraPkgs extends the maprange contract to the CLI: its
// printed tables and CSV/JSON artifacts are diffed byte-for-byte by the
// worker-invariance CI smokes, so map iteration order must not reach
// them either.
var maprangeExtraPkgs = map[string]bool{
	"gcs/cmd/gcsim": true,
}

// seamPkg is the algorithm package the seampurity rule seals: it may
// import only seamAllowedImport plus non-temporal stdlib.
const (
	seamPkg            = "gcs/internal/gcs"
	seamAllowedImport  = "gcs/internal/seam"
	modulePathPrefix   = "gcs/"
	lockorderTargetPkg = "gcs/internal/rt"
)

// normalizePkgPath strips the test-variant decorations cmd/go adds
// ("pkg [pkg.test]", "pkg.test", "pkg_test"), so policy lookups see the
// underlying package.
func normalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

func appliesTo(a *Analyzer, pkgPath string) bool {
	path := normalizePkgPath(pkgPath)
	switch a.Name {
	case "nondeterminism":
		return deterministicPkgs[path]
	case "maprange":
		return deterministicPkgs[path] || maprangeExtraPkgs[path]
	case "seampurity":
		return path == seamPkg
	case "lockorder":
		return path == lockorderTargetPkg
	case "zeroalloc":
		// Annotation-driven: cheap to run everywhere in the module.
		return strings.HasPrefix(path, modulePathPrefix) || path == "gcs"
	}
	return false
}
