package analysis

// The fixture runner: an analysistest-shaped harness on stdlib only.
// Each rule has a directory under testdata/ holding one fixture package
// (positive cases, negative cases, and the //gcslint:allow escape
// hatch). Expectations ride in the fixture source:
//
//	expr // want "regexp matched against the diagnostic message"
//	expr // want:allowed "regexp" — a finding that MUST be produced
//	     // but suppressed by a gcslint:allow directive on the line
//
// Every surfaced diagnostic must match a `want` on its exact line, and
// every `want` must be hit — so the test fails both on false positives
// and, crucially, if the rule is disabled or stops firing.
//
// Fixtures are type-checked under a real in-scope import path (e.g. the
// lockorder fixture as gcs/internal/rt) against genuine export data
// from the build cache, so types resolve exactly as they do under vet.

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"testing"
)

var fixtureEnv struct {
	once    sync.Once
	exports map[string]string
	err     error
}

// fixtureExports loads export data for the module and the stdlib
// packages fixtures import, once per test binary.
func fixtureExports(t *testing.T) map[string]string {
	t.Helper()
	fixtureEnv.once.Do(func() {
		pkgs, _, err := GoList(".", "gcs/...", "time", "math/rand", "sync", "fmt", "sort", "strings")
		if err != nil {
			fixtureEnv.err = err
			return
		}
		fixtureEnv.exports = map[string]string{}
		for path, p := range pkgs {
			if p.Export != "" {
				fixtureEnv.exports[path] = p.Export
			}
		}
	})
	if fixtureEnv.err != nil {
		t.Fatalf("loading export data: %v", fixtureEnv.err)
	}
	return fixtureEnv.exports
}

var (
	wantRe        = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)
	wantAllowedRe = regexp.MustCompile(`want:allowed "((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	re  *regexp.Regexp
	hit bool
}

// runFixture type-checks testdata/<dir> as package asImportPath, runs
// the single analyzer, and diffs its diagnostics against the want
// comments embedded in the fixture source.
func runFixture(t *testing.T, a *Analyzer, dir, asImportPath string) {
	t.Helper()
	exports := fixtureExports(t)

	fixDir := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".go" {
			filenames = append(filenames, filepath.Join(fixDir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no fixture files in %s", fixDir)
	}
	sort.Strings(filenames)

	fset := token.NewFileSet()
	imp := ExportImporter(fset, nil, exports)
	files, pkg, info, err := ParseAndCheck(fset, imp, asImportPath, filenames)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}

	// Collect expectations, keyed file:line.
	wants := map[string][]*expectation{}
	wantsAllowed := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					wants[key] = append(wants[key], &expectation{re: regexp.MustCompile(m[1])})
				}
				for _, m := range wantAllowedRe.FindAllStringSubmatch(c.Text, -1) {
					wantsAllowed[key] = append(wantsAllowed[key], &expectation{re: regexp.MustCompile(m[1])})
				}
			}
		}
	}

	var diags []Diagnostic
	pass := newPass(a, fset, files, pkg, info, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	match := func(table map[string][]*expectation, d Diagnostic) bool {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		for _, exp := range table[key] {
			if !exp.hit && exp.re.MatchString(d.Message) {
				exp.hit = true
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		if d.Surfaced {
			if !match(wants, d) {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		} else {
			if !match(wantsAllowed, d) {
				t.Errorf("unexpected suppressed diagnostic: %s", d)
			}
		}
	}
	report := func(table map[string][]*expectation, kind string) {
		for key, exps := range table {
			for _, exp := range exps {
				if !exp.hit {
					t.Errorf("missing %s diagnostic at %s matching %q (is the rule disabled?)", kind, key, exp.re)
				}
			}
		}
	}
	report(wants, "surfaced")
	report(wantsAllowed, "suppressed")
}

func TestNondeterminismFixture(t *testing.T) {
	runFixture(t, Nondeterminism, "nondeterminism", "gcs/internal/sim")
}

func TestSeampurityFixture(t *testing.T) {
	runFixture(t, Seampurity, "seampurity", "gcs/internal/gcs")
}

func TestLockorderFixture(t *testing.T) {
	runFixture(t, Lockorder, "lockorder", "gcs/internal/rt")
}

func TestZeroallocFixture(t *testing.T) {
	runFixture(t, Zeroalloc, "zeroalloc", "gcs/internal/des")
}

func TestMaprangeFixture(t *testing.T) {
	runFixture(t, Maprange, "maprange", "gcs/internal/dyngraph")
}

// TestRegistryAndPolicy pins the suite's composition and the package
// policy: dropping a rule from the registry, or a package from a rule's
// scope, must be a deliberate diff here.
func TestRegistryAndPolicy(t *testing.T) {
	want := []string{"nondeterminism", "seampurity", "lockorder", "zeroalloc", "maprange"}
	if len(Analyzers) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(Analyzers), len(want))
	}
	for i, a := range Analyzers {
		if a.Name != want[i] {
			t.Errorf("Analyzers[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing Doc or Run", a.Name)
		}
	}
	cases := []struct {
		rule, pkg string
		want      bool
	}{
		{"nondeterminism", "gcs/internal/des", true},
		{"nondeterminism", "gcs/internal/rt", true}, // rt is in scope; its wall reads are per-site allows
		{"nondeterminism", "gcs/cmd/gcsim", false},
		{"maprange", "gcs/cmd/gcsim", true},
		{"maprange", "gcs/internal/dyngraph [gcs/internal/dyngraph.test]", true},
		{"seampurity", "gcs/internal/gcs", true},
		{"seampurity", "gcs/internal/sim", false},
		{"lockorder", "gcs/internal/rt", true},
		{"lockorder", "gcs/internal/des", false},
		{"zeroalloc", "gcs/internal/transport", true},
		{"zeroalloc", "fmt", false},
	}
	for _, c := range cases {
		a := analyzerByName(t, c.rule)
		if got := appliesTo(a, c.pkg); got != c.want {
			t.Errorf("appliesTo(%s, %s) = %v, want %v", c.rule, c.pkg, got, c.want)
		}
	}
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}
