package analysis

// Analyzers is the full gcslint suite, in report order.
var Analyzers = []*Analyzer{
	Nondeterminism,
	Seampurity,
	Lockorder,
	Zeroalloc,
	Maprange,
}
