package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Zeroalloc enforces the O(1)-allocation hot-path contract on functions
// annotated //gcslint:zeroalloc (the DES schedule path, the transport
// flight arena, the gradient checker's sample loop). The regression
// pins (testing.AllocsPerRun, the bench gate's allocs/op axis) catch a
// violation only for the configs they run; this rule catches the
// constructs themselves, at compile time:
//
//   - capturing closures: a func literal that references variables of
//     the enclosing function heap-allocates both closure and captures;
//   - interface boxing: passing, assigning, or returning a concrete
//     non-pointer value where an interface is expected allocates the
//     boxed copy (pointers and interface-to-interface are free and
//     exempt, as is anything inside a panic(...) argument — panics are
//     cold by definition);
//   - append onto a function-local slice: growth the caller can never
//     amortize. Appends rooted at parameters, the receiver, or
//     package-level state (pooled arenas, reused buffers) are the
//     sanctioned pattern and pass;
//   - string concatenation, which always builds a fresh string.
//
// The annotation goes on the function's doc comment. Pool-growth
// escapes (new(T)/&T{}/make inside an arena grow path) are deliberately
// NOT flagged: amortized growth is the design, per-call garbage is the
// bug.
var Zeroalloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "functions annotated //gcslint:zeroalloc must avoid capturing closures, interface boxing, local-slice appends, and string concatenation",
	Run:  runZeroalloc,
}

const zeroallocDirective = "//gcslint:zeroalloc"

func runZeroalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, zeroallocDirective) {
				continue
			}
			checkZeroalloc(pass, fn)
		}
	}
	return nil
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}

func checkZeroalloc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	fnScope := funcScope(pass, fn)
	coldNodes := panicArgNodes(fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if coldNodes[n] {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			if captured := capturedVars(pass, e, fnScope); len(captured) > 0 {
				pass.Reportf(e.Pos(), "zeroalloc function builds a capturing closure (captures %s); use an ArgHandler-style fixed callback", captured[0])
			}
			// Do not descend: the literal runs later, on its own budget.
			return false
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(info.TypeOf(e)) {
				pass.Reportf(e.Pos(), "zeroalloc function concatenates strings")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isString(info.TypeOf(e.Lhs[0])) {
				pass.Reportf(e.Pos(), "zeroalloc function concatenates strings")
			}
			checkBoxedAssign(pass, e)
		case *ast.CallExpr:
			checkCall(pass, fn, e)
		case *ast.ReturnStmt:
			checkBoxedReturn(pass, fn, e)
		}
		return true
	})
}

// panicArgNodes marks every node inside a panic(...) argument: the cold
// path, exempt from the boxing check (fmt.Sprintf into a panic is fine).
func panicArgNodes(body *ast.BlockStmt) map[ast.Node]bool {
	cold := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			for _, arg := range call.Args {
				cold[arg] = true
			}
		}
		return true
	})
	return cold
}

// funcScope returns the scope of fn's body, for capture detection.
func funcScope(pass *Pass, fn *ast.FuncDecl) *types.Scope {
	if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		return obj.Scope()
	}
	return nil
}

// capturedVars lists variables the literal references that are declared
// in the enclosing function (between its scope and the literal's own).
func capturedVars(pass *Pass, lit *ast.FuncLit, enclosing *types.Scope) []string {
	if enclosing == nil {
		return nil
	}
	var captured []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// the literal (position-wise before the literal's body).
		if enclosing.Contains(v.Pos()) && !(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			seen[v] = true
			captured = append(captured, v.Name())
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether assigning a value of type src where dst is
// expected heap-allocates: dst is an interface and src is a concrete
// non-pointer type (pointers fit the interface word; nil and interfaces
// convert for free).
func boxes(dst, src types.Type) bool {
	if !isInterface(dst) || src == nil || isInterface(src) {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return false
	case *types.Basic:
		if src.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

func checkBoxedAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		dst := pass.TypesInfo.TypeOf(as.Lhs[i])
		src := pass.TypesInfo.TypeOf(as.Rhs[i])
		if boxes(dst, src) {
			pass.Reportf(as.Rhs[i].Pos(), "zeroalloc function boxes %s into %s", src, dst)
		}
	}
}

func checkBoxedReturn(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	sig, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := sig.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if boxes(results.At(i).Type(), pass.TypesInfo.TypeOf(r)) {
			pass.Reportf(r.Pos(), "zeroalloc function boxes %s into returned %s", pass.TypesInfo.TypeOf(r), results.At(i).Type())
		}
	}
}

func checkCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins: append(root, ...) must grow a slice rooted at a
	// parameter, the receiver, or package-level state; other builtins
	// (len, cap, copy, panic — whose own any-arg is cold by definition)
	// are alloc-free at the call site and skipped.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "append" && len(call.Args) > 0 && !rootedOutsideFrame(pass, fn, call.Args[0]) {
				pass.Reportf(call.Pos(), "zeroalloc function appends to a function-local slice (growth the caller cannot amortize); append to a parameter, receiver field, or pooled arena")
			}
			return
		}
	}
	// Interface boxing at call boundaries (fmt-style interface params,
	// any(..) conversions).
	tv, ok := info.Types[call.Fun]
	if ok && tv.IsType() {
		if boxes(tv.Type, info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "zeroalloc function boxes %s into %s", info.TypeOf(call.Args[0]), tv.Type)
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pt, info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "zeroalloc function boxes %s into %s parameter", info.TypeOf(arg), pt)
		}
	}
}

// rootedOutsideFrame reports whether expr ultimately refers to storage
// that outlives the call frame: a parameter, the receiver, a package-
// level variable, or a chain of selectors/indexes/slices off one. A
// local variable qualifies when its declaration initializer is itself
// rooted outside the frame (e.g. `sl := &n.slots[i]`).
func rootedOutsideFrame(pass *Pass, fn *ast.FuncDecl, expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[e].(*types.Var)
			if !ok {
				return false
			}
			if v.Parent() == pass.Pkg.Scope() {
				return true // package-level state (a pool)
			}
			if isParamOrReceiver(pass, fn, v) {
				return true
			}
			init := localInitializer(pass, fn, v)
			if init == nil {
				return false
			}
			expr = init
		default:
			return false
		}
	}
}

func isParamOrReceiver(pass *Pass, fn *ast.FuncDecl, v *types.Var) bool {
	sig, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	st := sig.Type().(*types.Signature)
	if r := st.Recv(); r != nil && r == v {
		return true
	}
	for i := 0; i < st.Params().Len(); i++ {
		if st.Params().At(i) == v {
			return true
		}
	}
	return false
}

// localInitializer finds the := initializer of a local variable inside
// fn, so root resolution can follow `f := &n.flights[fi]` chains.
func localInitializer(pass *Pass, fn *ast.FuncDecl, v *types.Var) ast.Expr {
	var init ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == v {
				init = as.Rhs[i]
				return false
			}
		}
		return true
	})
	return init
}
