package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Nondeterminism forbids wall-clock reads and seedless PRNGs in the
// deterministic packages. The repository's headline guarantee — the
// same Config produces bit-identical SkewReports across reruns and
// worker counts — holds only because every quantity in an execution is
// a function of the scenario seed; one time.Now() in a delay law or one
// math/rand draw in a churn schedule silently voids it, and the golden
// suites only catch the breakage for the configs they happen to pin.
//
//   - Calls to time.Now, time.Since, time.Until are flagged (these read
//     the wall clock; time.Duration arithmetic, timers, and
//     time.AfterFunc are fine — under synctest they are deterministic).
//   - Importing math/rand or math/rand/v2 is flagged at the import:
//     des.Rand is the only sanctioned randomness (splittable, seeded,
//     stable across Go releases).
//
// internal/rt's four by-design wall reads carry //gcslint:allow
// nondeterminism annotations; see config.go for why rt is in scope.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall-clock reads (time.Now/Since/Until) and math/rand in deterministic packages",
	Run:  runNondeterminism,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNondeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "deterministic package imports %s (use des.Rand: seeded, splittable, release-stable)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "deterministic package reads the wall clock via time.%s (derive times from the DES engine or seam.Clock)", fn.Name())
			}
			return true
		})
	}
	return nil
}
