package analysis

import (
	"go/ast"
	"go/types"
)

// Lockorder machine-enforces the real-time runtime's documented lock
// hierarchy: host.mu before Router.mu, never the reverse. The comment
// in rt.go ("Lock order is host -> router") was the only thing standing
// between the sampler/churner/router triangle and a deadlock; this rule
// turns it into a build failure. Within each function body (closures
// analyzed separately, with an empty held-set — they run on other
// goroutines), acquiring a host lock while the router lock is held is
// flagged. The analysis is intra-procedural and syntactic: it tracks
// Lock/RLock/Unlock/RUnlock calls on the two ranked mutexes in source
// order, treats a deferred unlock as held-to-return, and ignores
// unranked mutexes (e.g. Runtime.churnMu, which nests under nothing).
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the rt lock hierarchy: host.mu acquired before Router.mu, never while holding it",
	Run:  runLockorder,
}

// lockRank orders the ranked mutexes: a lock may only be acquired while
// holding locks of strictly lower rank.
var lockRanks = map[lockClass]int{
	{typeName: "host", field: "mu"}:   0,
	{typeName: "Router", field: "mu"}: 1,
}

type lockClass struct {
	typeName string
	field    string
}

func runLockorder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockBody(pass, fn.Body)
				}
				return true
			case *ast.FuncLit:
				checkLockBody(pass, fn.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// checkLockBody walks one function body in source order, tracking which
// ranked locks are held. Nested function literals are skipped here —
// the outer Inspect visits them with their own empty context.
func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	held := map[lockClass]int{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		if def, ok := n.(*ast.DeferStmt); ok {
			// A deferred unlock keeps the lock held to the end of the
			// function; skip the call so the release is never recorded.
			if cls, op, ok := rankedLockCall(pass, def.Call); ok && (op == "Unlock" || op == "RUnlock") {
				_ = cls
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cls, op, ok := rankedLockCall(pass, call)
		if !ok {
			return true
		}
		switch op {
		case "Lock", "RLock":
			for h, cnt := range held {
				if cnt > 0 && lockRanks[h] > lockRanks[cls] {
					pass.Reportf(call.Pos(), "lock order violation: acquiring %s.%s while holding %s.%s (documented order: host before router)",
						cls.typeName, cls.field, h.typeName, h.field)
				}
			}
			held[cls]++
		case "Unlock", "RUnlock":
			if held[cls] > 0 {
				held[cls]--
			}
		}
		return true
	})
}

// rankedLockCall decodes calls of the form <expr>.<field>.<op>() where
// <expr>'s type is one of the ranked structs and op is a sync lock
// method, returning the lock's class and operation.
func rankedLockCall(pass *Pass, call *ast.CallExpr) (lockClass, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockClass{}, "", false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, "", false
	}
	base := pass.TypesInfo.TypeOf(field.X)
	if base == nil {
		return lockClass{}, "", false
	}
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return lockClass{}, "", false
	}
	cls := lockClass{typeName: named.Obj().Name(), field: field.Sel.Name}
	if _, ranked := lockRanks[cls]; !ranked {
		return lockClass{}, "", false
	}
	return cls, op, true
}
