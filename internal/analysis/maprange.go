package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Maprange flags `for ... range m` over a map in the deterministic
// packages (and the CLI, whose tables are byte-diffed by the
// worker-invariance smokes) unless the iteration is provably
// order-laundered: the enclosing function sorts after the loop, or the
// site carries //gcslint:allow maprange with a stated reason
// (order-independent aggregation like min/max/sum, or bulk clear).
//
// Go randomizes map iteration order on purpose; any map range whose
// visit order can reach a report, a printed table, or an event schedule
// is a reproducibility bug that strikes only occasionally — the worst
// kind. The sanctioned patterns are: collect keys, sort, then index; or
// aggregate with an order-independent fold and annotate the site.
//
// The sort-after escape is syntactic: a call in the same function,
// positioned after the range statement, to anything in package sort or
// slices, or to a callee whose name contains "sort" (covering local
// helpers like dyngraph's sortEdges).
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "map ranges whose values can reach reports must sort keys first or be annotated order-independent",
	Run:  runMaprange,
}

var sortNameRe = regexp.MustCompile(`(?i)sort`)

func runMaprange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, body)
			return true
		})
	}
	return nil
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested functions get their own visit from runMaprange; a sort
		// inside a closure does not launder the enclosing loop (and vice
		// versa), so keep the scopes separate.
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortCallAfter(pass, body, rng) {
			return true
		}
		pass.Reportf(rng.Pos(), "map range order is randomized: sort the keys first, or annotate //gcslint:allow maprange with why the fold is order-independent")
		return true
	})
}

// sortCallAfter reports whether the function body contains, after the
// range statement, a call to package sort/slices or to a callee whose
// name mentions sort.
func sortCallAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					p := pn.Imported().Path()
					if p == "sort" || p == "slices" {
						found = true
						return false
					}
				}
			}
			if sortNameRe.MatchString(fun.Sel.Name) {
				found = true
				return false
			}
		case *ast.Ident:
			if sortNameRe.MatchString(fun.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
