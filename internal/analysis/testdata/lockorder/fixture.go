// Fixture for the lockorder rule, type-checked as gcs/internal/rt.
// Mirrors the runtime's two ranked mutexes: host.mu ranks before
// Router.mu — acquiring a host lock while holding the router lock is
// the deadlock pattern the rule exists to catch.
package rt

import "sync"

type host struct {
	mu sync.Mutex
}

type Router struct {
	mu sync.RWMutex
}

// documentedOrder is the sanctioned nesting: host before router.
func documentedOrder(h *host, r *Router) {
	h.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	h.mu.Unlock()
}

// inverted acquires against the hierarchy.
func inverted(h *host, r *Router) {
	r.mu.Lock()
	h.mu.Lock() // want "acquiring host.mu while holding Router.mu"
	h.mu.Unlock()
	r.mu.Unlock()
}

// sequential releases the router lock before touching the host: legal.
func sequential(h *host, r *Router) {
	r.mu.RLock()
	r.mu.RUnlock()
	h.mu.Lock()
	h.mu.Unlock()
}

// deferredHold: a deferred unlock keeps the router lock held to return,
// so the later host acquisition still violates the order.
func deferredHold(h *host, r *Router) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h.mu.Lock() // want "acquiring host.mu while holding Router.mu"
	h.mu.Unlock()
}

// readHeld: RLock counts as holding.
func readHeld(h *host, r *Router) {
	r.mu.RLock()
	h.mu.Lock() // want "acquiring host.mu while holding Router.mu"
	h.mu.Unlock()
	r.mu.RUnlock()
}

// closureRuns: a function literal runs on its own goroutine with its
// own (empty) held set; the host acquisition inside it is legal even
// though the spawner holds the router lock at the go statement.
func closureRuns(h *host, r *Router) {
	r.mu.Lock()
	go func() {
		h.mu.Lock()
		h.mu.Unlock()
	}()
	r.mu.Unlock()
}

// unranked mutexes nest freely in either direction.
type churner struct {
	churnMu sync.Mutex
}

func unrankedOK(c *churner, h *host, r *Router) {
	c.churnMu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	h.mu.Lock()
	h.mu.Unlock()
	c.churnMu.Unlock()
}

// allowEscape: a reviewed exception is suppressed per site but still
// visible to audit mode.
func allowEscape(h *host, r *Router) {
	r.mu.Lock()
	h.mu.Lock() //gcslint:allow lockorder — snapshot path, router lock is try-acquired upstream // want:allowed "acquiring host.mu while holding Router.mu"
	h.mu.Unlock()
	r.mu.Unlock()
}
