// Fixture for the nondeterminism rule, type-checked as a deterministic
// package (gcs/internal/sim).
package sim

import (
	"math/rand" // want "deterministic package imports math/rand"
	"time"
)

// wallReads collects the three forbidden wall-clock entry points.
func wallReads() time.Duration {
	t0 := time.Now()    // want "reads the wall clock via time.Now"
	d := time.Since(t0) // want "reads the wall clock via time.Since"
	_ = time.Until(t0)  // want "reads the wall clock via time.Until"
	return d
}

// seeded draws from an explicitly seeded source: the import itself is
// the finding (flagged above); the calls are not flagged twice.
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Int()
}

// durations is the negative case: time.Duration arithmetic and
// constants never read the wall clock and pass untouched.
func durations(d time.Duration) time.Duration {
	return 2*d + 50*time.Millisecond
}

// banner is the escape hatch: a by-design wall read, suppressed per
// site with a stated reason. The finding is still produced (audit mode
// sees it) but not surfaced.
func banner() time.Time {
	return time.Now() //gcslint:allow nondeterminism — log banner only // want:allowed "reads the wall clock via time.Now"
}
