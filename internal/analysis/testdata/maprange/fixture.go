// Fixture for the maprange rule, type-checked as gcs/internal/dyngraph.
package dyngraph

import "sort"

type edge struct{ u, v int }

// valuesUnsorted lets map iteration order reach the returned slice: the
// canonical reproducibility bug.
func valuesUnsorted(m map[int]string) []string {
	out := make([]string, 0, len(m))
	for _, v := range m { // want "map range order is randomized"
		out = append(out, v)
	}
	return out
}

// keysSorted is the sanctioned pattern: collect, then sort.
func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// edgesSorted launders order through a local helper; the rule
// recognizes sort-named callees, matching dyngraph's own sortEdges.
func edgesSorted(m map[edge]bool) []edge {
	out := make([]edge, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(es []edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
}

// maxVal is an order-independent fold, annotated as such: suppressed
// but still visible to audit mode.
func maxVal(m map[int]int) int {
	best := 0
	for _, v := range m { //gcslint:allow maprange — max is order-independent // want:allowed "map range order"
		if v > best {
			best = v
		}
	}
	return best
}

// sliceRange: ranging a slice is ordered and never flagged.
func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
