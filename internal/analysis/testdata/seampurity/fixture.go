// Fixture for the seampurity rule, type-checked as the algorithm
// package (gcs/internal/gcs): only gcs/internal/seam and non-temporal
// stdlib may be imported.
package gcs

import (
	"fmt"

	"gcs/internal/seam"

	_ "gcs/internal/clock" // want "reaches around the harness seam"
	_ "time"               // want "gcs imports time"
)

// describe uses the sanctioned imports: the seam interface and plain
// stdlib.
func describe(c seam.Clock) string {
	return fmt.Sprintf("clock at %.3f", c.Now())
}
