// Fixture for the zeroalloc rule, type-checked as gcs/internal/des.
// Only functions carrying the //gcslint:zeroalloc directive are under
// the contract; everything else may allocate freely.
package des

import "fmt"

type engine struct {
	heap []int
	free []int
}

var pool []int

func sink(v interface{}) { _ = v }

// push mirrors the real schedule path: appends rooted at the receiver
// amortize into the arena, and panic arguments are cold by definition.
//
//gcslint:zeroalloc
func (en *engine) push(v int) {
	if v < 0 {
		panic(fmt.Sprintf("push: negative key %d", v))
	}
	en.heap = append(en.heap, v)
	pool = append(pool, v)
}

// aliasOK roots an append through a local alias of receiver state, the
// `f := &n.flights[fi]` pattern from the transport arena.
//
//gcslint:zeroalloc
func (en *engine) aliasOK(v int) {
	h := &en.heap
	*h = append(*h, v)
}

// growLocal appends onto a function-local slice: per-call garbage.
//
//gcslint:zeroalloc
func growLocal(v int) []int {
	out := []int{}
	out = append(out, v) // want "appends to a function-local slice"
	return out
}

// closureCapture builds a closure over its parameter.
//
//gcslint:zeroalloc
func closureCapture(v int) func() int {
	return func() int { return v } // want "capturing closure"
}

// argBox passes a scalar where an interface is expected.
//
//gcslint:zeroalloc
func argBox(v int) {
	sink(v) // want "boxes int into"
}

// pointerOK: pointers fit the interface word without allocating.
//
//gcslint:zeroalloc
func pointerOK(en *engine) {
	sink(en)
}

// assignBox boxes through an assignment.
//
//gcslint:zeroalloc
func assignBox(v int) {
	var x interface{}
	x = v // want "boxes int into"
	_ = x
}

// retBox boxes at the return boundary.
//
//gcslint:zeroalloc
func retBox(v int) interface{} {
	return v // want "boxes int into returned"
}

// concat builds a fresh string every call.
//
//gcslint:zeroalloc
func concat(a, b string) string {
	return a + b // want "concatenates strings"
}

// unannotated is the negative control: same constructs, no directive,
// no findings.
func unannotated(v int) []int {
	out := []int{}
	out = append(out, v)
	sink(v)
	return out
}

// coldDebug uses the per-site escape for a reviewed exception.
//
//gcslint:zeroalloc
func coldDebug(v int) {
	if v == -1 {
		dbg := []int{}
		dbg = append(dbg, v) //gcslint:allow zeroalloc — unreachable outside -debug builds // want:allowed "function-local slice"
		sink(&dbg)
	}
}
