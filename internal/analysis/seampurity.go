package analysis

import (
	"strconv"
	"strings"
)

// Seampurity seals the PR 8 harness seam: internal/gcs — the algorithm
// itself — may import only internal/seam plus non-temporal stdlib. The
// whole point of the seam is that the identical node code runs under
// the DES harness and the real-time runtime; a direct import of clock,
// transport, dyngraph, or time re-couples the algorithm to one harness
// and the cross-validation suite stops meaning anything. The rule is a
// one-screen import check precisely because the invariant is structural:
// it either holds for the import graph or it does not.
var Seampurity = &Analyzer{
	Name: "seampurity",
	Doc:  "internal/gcs may import only internal/seam and non-temporal stdlib",
	Run:  runSeampurity,
}

func runSeampurity(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == seamAllowedImport:
			case strings.HasPrefix(path, modulePathPrefix) || path == "gcs":
				pass.Reportf(imp.Pos(), "gcs reaches around the harness seam: import %s (only %s is allowed; widen the seam interfaces instead)", path, seamAllowedImport)
			case path == "time":
				pass.Reportf(imp.Pos(), "gcs imports time: the node must read time only through seam.Clock")
			}
			// math/rand is already covered by the nondeterminism rule,
			// which also binds this package.
		}
	}
	return nil
}
