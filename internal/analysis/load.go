package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Offline package loading. The module has no dependency on
// golang.org/x/tools/go/packages, so the standalone gcslint driver and
// the fixture runner load packages the way cmd/go itself does: `go list
// -deps -export -json` yields, for every package in the transitive
// closure, the source file list and a build-cache path to compiled
// export data; importer.ForCompiler("gc") then resolves imports from
// those files while we parse and type-check the target package from
// source. No network, no GOPATH pkg dirs — just the build cache the
// toolchain already maintains.

// ListedPackage is the subset of cmd/go's -json output the loader needs.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// GoList runs `go list -deps -export -json patterns...` in dir and
// returns every listed package keyed by import path, plus the root
// (non-dep) import paths in listing order.
func GoList(dir string, patterns ...string) (map[string]*ListedPackage, []string, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	pkgs := map[string]*ListedPackage{}
	var roots []string
	dec := json.NewDecoder(out)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs[p.ImportPath] = &p
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, roots, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// via the given map of import path -> export data file (as produced by
// GoList or a vet.cfg's PackageFile table). importMap rewrites source-
// level paths to canonical ones (vendoring; empty is fine).
func ExportImporter(fset *token.FileSet, importMap, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if c, ok := importMap[path]; ok {
			path = c
		}
		f, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// ParseAndCheck parses the named files (ParseComments on — the
// directives live in comments) and type-checks them as package
// importPath, resolving imports through imp. Returns the syntax, the
// package, and a fully populated types.Info.
func ParseAndCheck(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	if firstErr != nil {
		return files, pkg, info, fmt.Errorf("type-checking %s: %v", importPath, firstErr)
	}
	return files, pkg, info, nil
}

// LintPackages is the standalone driver: it loads the packages matching
// patterns (relative to dir), runs the suite on every in-module root,
// and returns the surfaced diagnostics.
func LintPackages(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, roots, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for path, p := range pkgs {
		if p.Export != "" {
			exports[path] = p.Export
		}
	}
	var diags []Diagnostic
	for _, root := range roots {
		p := pkgs[root]
		if p.Standard || len(p.GoFiles) == 0 || p.Error != nil {
			continue
		}
		if !anyRuleApplies(p.ImportPath) {
			continue
		}
		fset := token.NewFileSet()
		imp := ExportImporter(fset, nil, exports)
		var filenames []string
		for _, g := range p.GoFiles {
			filenames = append(filenames, filepath.Join(p.Dir, g))
		}
		files, pkg, info, err := ParseAndCheck(fset, imp, p.ImportPath, filenames)
		if err != nil {
			return diags, err
		}
		diags = append(diags, RunAnalyzers(fset, files, pkg, info)...)
	}
	return diags, nil
}

func anyRuleApplies(pkgPath string) bool {
	for _, a := range Analyzers {
		if appliesTo(a, pkgPath) {
			return true
		}
	}
	return false
}
