// Package analysis is gcslint's analyzer suite: a small, stdlib-only
// reimplementation of the go/analysis Analyzer/Pass shape (the module
// has no external dependencies, so golang.org/x/tools is off the table)
// hosting the five rules that machine-enforce this repository's
// headline invariants:
//
//   - nondeterminism: no wall-clock reads (time.Now/Since/Until) and no
//     math/rand in the deterministic packages — the bit-identical-
//     reports guarantee, as a compile-time contract.
//   - seampurity: internal/gcs imports nothing but internal/seam and
//     non-temporal stdlib — the PR 8 seam, machine-enforced.
//   - lockorder: the real-time runtime's documented host→router lock
//     order, flagged when a function acquires a host lock while holding
//     the router lock.
//   - zeroalloc: functions annotated //gcslint:zeroalloc must not
//     contain capturing closures, interface boxing of concrete values,
//     appends onto function-local slices, or string concatenation —
//     the O(1)-allocation hot-path contract.
//   - maprange: a `for range` over a map in a deterministic package
//     must sort what it collects before anything downstream can observe
//     the iteration order.
//
// Suppression is explicit and auditable: a `//gcslint:allow <rule> —
// reason` comment on the flagged line (or the line above) silences one
// site; the package-level policy — which rules run on which packages —
// lives in config.go next to the analyzers. There is no blanket opt
// out.
//
// The suite runs three ways: `gcslint ./...` standalone, `go vet
// -vettool=$(which gcslint) ./...` under the build cache, and per-rule
// fixture tests (fixture.go) that fail if a rule stops firing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named rule. Run inspects a type-checked package via
// the Pass and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed to its rule.
type Diagnostic struct {
	Pos      token.Position
	Rule     string
	Message  string
	Surfaced bool // false when an //gcslint:allow directive suppressed it
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// allows maps file:line to the rule names allowed there (populated
	// from //gcslint:allow directives by newPass).
	allows map[string]map[string]bool
	diags  *[]Diagnostic
}

var allowRe = regexp.MustCompile(`gcslint:allow\s+([a-z]+)`)

// newPass builds a Pass over an already type-checked package, indexing
// its //gcslint:allow directives. diags collects across analyzers.
func newPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, diags *[]Diagnostic) *Pass {
	p := &Pass{
		Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
		allows: map[string]map[string]bool{},
		diags:  diags,
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					// The directive covers its own line and the next one, so
					// it works both trailing a statement and on the line above.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if p.allows[key] == nil {
							p.allows[key] = map[string]bool{}
						}
						p.allows[key][m[1]] = true
					}
				}
			}
		}
	}
	return p
}

// Reportf records one finding at pos. Findings inside _test.go files
// are dropped (the determinism contracts bind production code; tests
// routinely range maps and read wall clocks on purpose), and findings
// whose line carries a matching //gcslint:allow directive are kept but
// marked suppressed, so drivers can audit what the allowlist is hiding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	where := p.Fset.Position(pos)
	if strings.HasSuffix(where.Filename, "_test.go") {
		return
	}
	d := Diagnostic{
		Pos:      where,
		Rule:     p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Surfaced: true,
	}
	if rules := p.allows[fmt.Sprintf("%s:%d", where.Filename, where.Line)]; rules[p.Analyzer.Name] {
		d.Surfaced = false
	}
	*p.diags = append(*p.diags, d)
}

// RunAnalyzers executes every analyzer that applies to pkg (per the
// package policy in config.go) over one type-checked package and
// returns the surfaced diagnostics, sorted by position. Suppressed
// findings are dropped here; drivers that want to audit the allowlist
// use RunAll.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	all := RunAll(fset, files, pkg, info)
	out := all[:0]
	for _, d := range all {
		if d.Surfaced {
			out = append(out, d)
		}
	}
	return out
}

// RunAll is RunAnalyzers without the suppression filter: allowed
// findings come back with Surfaced == false.
func RunAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	for _, a := range Analyzers {
		if !appliesTo(a, pkg.Path()) {
			continue
		}
		pass := newPass(a, fset, files, pkg, info, &diags)
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Rule:     a.Name,
				Message:  fmt.Sprintf("analyzer error: %v", err),
				Surfaced: true,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}
