package sim

import (
	"testing"

	"gcs/internal/clock"
	"gcs/internal/des"
)

// TestDriverStateMatchesClockDrivers pins the sim harness's reusable
// driverState against the clock package's reference drivers: both must
// produce identical rate trajectories from the same forked streams. The
// harness re-implements the drivers with reseedable per-node state so
// rewiring allocates nothing; this test is what keeps the two
// implementations from silently diverging (a changed jitter formula or
// draw order on either side fails here).
func TestDriverStateMatchesClockDrivers(t *testing.T) {
	cases := []struct {
		name string
		spec DriverSpec
		ref  func(node int, rho float64, driveRand *des.Rand) clock.Driver
	}{
		{"RandomWalk", DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
			func(node int, rho float64, driveRand *des.Rand) clock.Driver {
				return clock.RandomWalk{Rho: rho, Interval: 0.5, Rand: driveRand.Fork(uint64(node))}
			}},
		{"BangBang", DriverSpec{Kind: DriveBangBang, Interval: 0.7},
			func(node int, rho float64, driveRand *des.Rand) clock.Driver {
				return clock.BangBang{Rho: rho, Interval: 0.7, StartHigh: node%2 == 0}
			}},
		{"Constant", DriverSpec{Kind: DriveConstant, Interval: 1},
			func(node int, rho float64, driveRand *des.Rand) clock.Driver {
				return clock.ConstantRate{Rate: 1}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				N: 4, Seed: 9, Horizon: 10, Rho: 0.02, MaxDelay: 0.01,
				Topology: TopologySpec{Kind: TopoRing},
				Driver:   tc.spec,
			}
			s := New(cfg)

			// Reference wiring: bare clocks driven by the clock package's
			// drivers from the same per-node streams the harness forks
			// (root seed -> fork 0xd81fe -> fork node).
			en := des.NewEngine()
			driveRand := des.NewRand(cfg.Seed).Fork(0xd81fe)
			ref := make([]*clock.HardwareClock, cfg.N)
			for i := 0; i < cfg.N; i++ {
				ref[i] = clock.New(en, 1)
				tc.ref(i, cfg.Rho, driveRand).Install(en, ref[i])
			}

			// Rates are pure functions of driver events, so comparing them
			// at a grid of times compares the whole trajectory.
			for at := 0.25; at <= cfg.Horizon; at += 0.25 {
				s.Advance(at)
				en.Run(at)
				for i := 0; i < cfg.N; i++ {
					if got, want := s.Clocks[i].Rate(), ref[i].Rate(); got != want {
						t.Fatalf("t=%v node %d: harness rate %v, clock-driver rate %v", at, i, got, want)
					}
				}
			}
			for i := 0; i < cfg.N; i++ {
				gmn, gmx := s.Clocks[i].RateBoundsSeen()
				wmn, wmx := ref[i].RateBoundsSeen()
				if gmn != wmn || gmx != wmx {
					t.Fatalf("node %d rate bounds diverged: harness [%v,%v], reference [%v,%v]",
						i, gmn, gmx, wmn, wmx)
				}
			}
		})
	}
}
