package sim

import (
	"math"
	"reflect"
	"testing"

	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/gcs"
)

// TestGradientWithinBoundOnScenarios is the tentpole acceptance test:
// on Line, Ring, and RotatingStar scenarios the observed per-distance
// local skew must stay within GradientBound(d) at every distance, per
// sample, across the whole run.
func TestGradientWithinBoundOnScenarios(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"Line", Config{
			N: 16, Seed: 7, Horizon: 30, Rho: 0.01, MaxDelay: 0.01,
			Topology: TopologySpec{Kind: TopoLine},
			Driver:   DriverSpec{Kind: DriveBangBang, Interval: 0.7},
		}},
		{"Ring", Config{
			N: 16, Seed: 7, Horizon: 30, Rho: 0.01, MaxDelay: 0.01,
			Topology: TopologySpec{Kind: TopoRing},
			Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		}},
		{"RotatingStar", Config{
			N: 16, Seed: 7, Horizon: 30, Rho: 0.01, MaxDelay: 0.01,
			Driver: DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
			Churn:  ChurnSpec{Kind: ChurnRotatingStar, Period: 1, Overlap: 0.25},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.CheckGradient = true
			s := New(cfg)
			rpt := s.Run()
			gc := s.Gradient()
			if gc == nil || gc.Samples() != rpt.Samples {
				t.Fatalf("checker missing or undersampled: %+v", gc)
			}
			if gc.MaxDist() < 1 {
				t.Fatal("no pair at any positive distance: checker degenerate")
			}
			if d, skew, ok := gc.Check(cfg.GradientBound); !ok {
				t.Fatalf("gradient violated at distance %d: skew %v > bound %v",
					d, skew, cfg.GradientBound(d))
			}
			// The report mirrors the checker's buckets.
			if len(rpt.PerDistanceSkew) != gc.MaxDist()+1 {
				t.Fatalf("report buckets %d, checker maxDist %d",
					len(rpt.PerDistanceSkew), gc.MaxDist())
			}
			for d := 1; d <= gc.MaxDist(); d++ {
				if rpt.PerDistanceSkew[d] != gc.MaxSkewAt(d) {
					t.Fatalf("report bucket %d = %v, checker %v",
						d, rpt.PerDistanceSkew[d], gc.MaxSkewAt(d))
				}
			}
			// The distance-1 bucket and MaxAdjacentSkew observe the same
			// quantity (edges are exactly the distance-1 pairs).
			if gc.MaxSkewAt(1) != rpt.MaxAdjacentSkew {
				t.Fatalf("distance-1 bucket %v != MaxAdjacentSkew %v",
					gc.MaxSkewAt(1), rpt.MaxAdjacentSkew)
			}
		})
	}
}

// TestGradientBoundShape pins the bound's analytic structure: zero below
// distance 1, linear growth in d, and +Inf when both catch-up regimes
// are disabled (no gradient property without a correction mechanism).
func TestGradientBoundShape(t *testing.T) {
	cfg := Config{N: 8, Topology: TopologySpec{Kind: TopoLine}}
	if cfg.GradientBound(0) != 0 || cfg.GradientBound(-3) != 0 {
		t.Fatal("nonpositive distance must have zero bound")
	}
	b1, b2, b4 := cfg.GradientBound(1), cfg.GradientBound(2), cfg.GradientBound(4)
	if !(b1 > 0) || b2 != 2*b1 || b4 != 4*b1 {
		t.Fatalf("bound not linear in d: %v %v %v", b1, b2, b4)
	}
	if cfg.GlobalSkewBound() < cfg.GradientBound(1) {
		t.Fatal("per-edge gradient bound exceeds the global bound")
	}
	// No correction mechanism, no gradient property: with jumps and the
	// fast rate both disabled the bound degenerates to +Inf.
	none := cfg
	none.Node.JumpThreshold = math.Inf(1)
	none.Node.Mu = gcs.MuDisabled
	if !math.IsInf(none.GradientBound(1), 1) {
		t.Fatalf("bound with no catch-up regime = %v, want +Inf", none.GradientBound(1))
	}
}

// TestGradientDistanceMatrixInvalidationAcrossChurn checks the lazy
// revalidation wiring end to end: under volatile churn the checker must
// recompute distances across epochs (more than once) but at most once
// per sample.
func TestGradientDistanceMatrixInvalidationAcrossChurn(t *testing.T) {
	cfg := churnyConfig(13)
	cfg.CheckGradient = true
	s := New(cfg)
	rpt := s.Run()
	gc := s.Gradient()
	if rpt.EdgeAdds == 0 {
		t.Fatal("churn never fired")
	}
	if gc.Recomputes() < 2 {
		t.Fatalf("distance matrix never invalidated across churn epochs: %d recomputes", gc.Recomputes())
	}
	if gc.Recomputes() > gc.Samples() {
		t.Fatalf("recomputed %d times over %d samples: revalidation not lazy",
			gc.Recomputes(), gc.Samples())
	}
	if d, skew, ok := gc.Check(cfg.GradientBound); !ok {
		t.Fatalf("gradient violated under churn at distance %d: skew %v > bound %v",
			d, skew, cfg.GradientBound(d))
	}
}

// TestGradientCheckSteadyStateDoesNotAllocate pins the per-sample check:
// once wired, an observe pass (clock reads, trace-free sampling, distance
// revalidation, full pair scan) allocates nothing on a static topology.
func TestGradientCheckSteadyStateDoesNotAllocate(t *testing.T) {
	cfg := Config{
		N: 32, Seed: 3, Horizon: 10, Rho: 0.01, MaxDelay: 0.01,
		Topology:      TopologySpec{Kind: TopoRing},
		Driver:        DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		CheckGradient: true,
	}
	s := New(cfg)
	s.Advance(2) // warm up: buffers sized, matrix computed
	if allocs := testing.AllocsPerRun(100, func() { s.observe() }); allocs > 0 {
		t.Errorf("per-sample gradient check allocated %v objects/op, want 0", allocs)
	}
}

// TestRunIsIdempotent is the regression test for the totals
// re-accumulation bug: Run after Advance-stepping, and a second Run,
// must report each jump/message/beacon exactly once.
func TestRunIsIdempotent(t *testing.T) {
	cfg := churnyConfig(42)
	oneShot := mustRun(t, cfg)

	s := New(cfg)
	s.Advance(cfg.Horizon / 3)
	s.Advance(2 * cfg.Horizon / 3)
	stepped := s.Run()
	if !reflect.DeepEqual(oneShot, stepped) {
		t.Fatalf("Run after Advance diverged from one-shot Run:\n  one-shot = %+v\n  stepped  = %+v",
			oneShot, stepped)
	}
	again := s.Run()
	if !reflect.DeepEqual(stepped, again) {
		t.Fatalf("second Run diverged:\n  first  = %+v\n  second = %+v", stepped, again)
	}
	if again.TotalBeacons == 0 || again.TotalMessages == 0 {
		t.Fatalf("degenerate totals: %+v", again)
	}
}

// TestVolatileCandidatesDenseBackboneFallback is the regression test for
// silent under-provisioning: when rejection sampling cannot fill the
// request, deterministic enumeration must supply every remaining
// non-backbone pair — and only genuinely exhausted graphs may come up
// short.
func TestVolatileCandidatesDenseBackboneFallback(t *testing.T) {
	// Star backbone over 6 nodes: 5 backbone edges, 10 candidate pairs.
	// Requesting 12 must yield exactly the 10 that exist.
	cfg := Config{
		N: 6, Seed: 1, Horizon: 1,
		Topology: TopologySpec{Kind: TopoStar},
		Churn: ChurnSpec{
			Kind: ChurnVolatile, Lifetime: 1, Absence: 1, ExtraEdges: 12,
		},
	}
	s := New(cfg)
	got := volatileCandidates(cfg.N, cfg.Churn.ExtraEdges, s.initialEdges, des.NewRand(99))
	if len(got) != 10 {
		t.Fatalf("got %d candidates, want all 10 non-backbone pairs", len(got))
	}
	seen := map[dyngraph.Edge]bool{}
	for _, e := range got {
		if e.U == 0 || seen[e] {
			t.Fatalf("candidate %v is a backbone edge or duplicate", e)
		}
		seen[e] = true
	}

	// Complete backbone: zero candidates exist; the fallback must detect
	// true exhaustion rather than loop or fabricate edges.
	cfg.Topology = TopologySpec{Kind: TopoComplete}
	if got := volatileCandidates(cfg.N, cfg.Churn.ExtraEdges, New(cfg).initialEdges, des.NewRand(1)); len(got) != 0 {
		t.Fatalf("complete backbone produced %d phantom candidates", len(got))
	}
}

// TestDiscoveryBeaconsOverFreshEdge checks the sim wiring of neighbor
// discovery: a scripted edge appearance mid-run makes both endpoints
// beacon immediately, and the values cross within one message delay.
func TestDiscoveryBeaconsOverFreshEdge(t *testing.T) {
	cfg := Config{
		N: 8, Seed: 5, Horizon: 10, Rho: 0.01, MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoLine},
		Driver:   DriverSpec{Kind: DriveConstant},
	}
	// Periodic beacons are pushed past the horizon, so the only traffic
	// in the window around the edge add is the discovery exchange itself.
	cfg.Node.BeaconEvery = 100
	s := New(cfg)
	e := dyngraph.E(0, 7)
	s.Engine.Schedule(5, "test.edge", func() { s.Graph.Add(5, e) })
	s.Advance(4.999)
	if d := s.Nodes[0].Snap().Discoveries; d != 0 {
		t.Fatalf("discovery fired before the edge appeared: %d", d)
	}
	msgsBefore := s.Nodes[0].Snap().Messages
	s.Advance(5 + cfg.MaxDelay + 1e-9)
	if d := s.Nodes[0].Snap().Discoveries; d != 1 {
		t.Fatalf("node 0 discoveries = %d, want 1", d)
	}
	if d := s.Nodes[7].Snap().Discoveries; d != 1 {
		t.Fatalf("node 7 discoveries = %d, want 1", d)
	}
	// The discovery beacon from node 7 must already have arrived at node
	// 0 — within one delay of the edge add, not one BeaconEvery later.
	if after := s.Nodes[0].Snap().Messages; after <= msgsBefore {
		t.Fatalf("no message crossed the fresh edge within the delay bound (%d -> %d)",
			msgsBefore, after)
	}
	rpt := s.Run()
	if rpt.TotalDiscoveries != 2 {
		t.Fatalf("TotalDiscoveries = %d, want 2", rpt.TotalDiscoveries)
	}
}

// TestGradientRadiusCappedAgreesWithExact pins the truncation contract:
// a radius-capped checker must produce exactly the exact checker's
// buckets 1..r and nothing beyond, on both static and churny scenarios.
func TestGradientRadiusCappedAgreesWithExact(t *testing.T) {
	base := Config{
		N: 24, Seed: 9, Horizon: 15, Rho: 0.01, MaxDelay: 0.01,
		Topology:      TopologySpec{Kind: TopoRing},
		Driver:        DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		CheckGradient: true,
	}
	churny := churnyConfig(9)
	churny.CheckGradient = true
	for name, cfg := range map[string]Config{"Ring": base, "Churny": churny} {
		t.Run(name, func(t *testing.T) {
			exact := New(cfg)
			exact.Run()
			for _, radius := range []int{1, 3, 5} {
				capped := cfg
				capped.GradientRadius = radius
				s := New(capped)
				s.Run()
				gc := s.Gradient()
				if gc.MaxDist() > radius {
					t.Fatalf("radius %d checker filled bucket %d", radius, gc.MaxDist())
				}
				for d := 1; d <= radius; d++ {
					if got, want := gc.MaxSkewAt(d), exact.Gradient().MaxSkewAt(d); got != want {
						t.Fatalf("radius %d bucket %d = %v, exact %v", radius, d, got, want)
					}
				}
			}
		})
	}
}

// TestGradientSampledSourcesSubsetOfExact pins source sampling: every
// bucket a sampled checker fills is bounded by the exact checker's
// bucket (it observes a subset of pairs), the distance-1 observations
// still catch real skew, and the source choice is deterministic.
func TestGradientSampledSourcesSubsetOfExact(t *testing.T) {
	cfg := Config{
		N: 24, Seed: 9, Horizon: 15, Rho: 0.01, MaxDelay: 0.01,
		Topology:      TopologySpec{Kind: TopoRing},
		Driver:        DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		CheckGradient: true,
	}
	exact := New(cfg)
	exact.Run()

	sampled := cfg
	sampled.GradientSources = 6
	s1 := New(sampled)
	r1 := s1.Run()
	gc := s1.Gradient()
	if gc.MaxDist() < 1 {
		t.Fatal("sampled checker observed no pairs")
	}
	for d := 1; d <= gc.MaxDist(); d++ {
		if gc.MaxSkewAt(d) > exact.Gradient().MaxSkewAt(d) {
			t.Fatalf("sampled bucket %d = %v exceeds exact %v",
				d, gc.MaxSkewAt(d), exact.Gradient().MaxSkewAt(d))
		}
	}
	// Determinism: a second identical run reproduces the report exactly.
	s2 := New(sampled)
	r2 := s2.Run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("sampled-source run not deterministic:\n  %+v\n  %+v", r1, r2)
	}

	// Radius + sources compose.
	both := sampled
	both.GradientRadius = 2
	s3 := New(both)
	s3.Run()
	if s3.Gradient().MaxDist() > 2 {
		t.Fatalf("radius+sources checker filled bucket %d", s3.Gradient().MaxDist())
	}
}

// TestGradientCappedSteadyStateDoesNotAllocate extends the zero-alloc
// pin to the radius-capped, source-sampled observe path.
func TestGradientCappedSteadyStateDoesNotAllocate(t *testing.T) {
	cfg := Config{
		N: 64, Seed: 3, Horizon: 10, Rho: 0.01, MaxDelay: 0.01,
		Topology:        TopologySpec{Kind: TopoRing},
		Driver:          DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		CheckGradient:   true,
		GradientRadius:  4,
		GradientSources: 16,
	}
	s := New(cfg)
	s.Advance(2)
	if allocs := testing.AllocsPerRun(100, func() { s.observe() }); allocs > 0 {
		t.Errorf("capped gradient check allocated %v objects/op, want 0", allocs)
	}
}
