package sim

import "fmt"

// TraceRecorder collects a ring-buffered time series of every node's
// logical clock value, one row per skew sample. It is the storage behind
// the lower-bound experiment's skew traces: the Section 4 plots need
// L_u(t) for every node over the whole execution, but the hot path must
// not allocate, so rows live in one flat pre-sized buffer and recording
// is a copy. When more samples arrive than the recorder's capacity, the
// oldest rows are overwritten (the ring keeps the most recent window).
//
// A recorder is reusable across runs — Reset reshapes it for a new node
// count while keeping the allocated buffers whenever they are large
// enough — so a sweep over many n values performs O(1) trace
// allocations, not O(runs).
type TraceRecorder struct {
	n        int
	capacity int
	times    []float64 // capacity ring of sample times
	rows     []float64 // capacity rows of n values each, same ring order
	head     int       // next write position
	count    int       // rows currently held, <= capacity
}

// NewTraceRecorder returns a recorder for n nodes holding up to capacity
// samples.
func NewTraceRecorder(n, capacity int) *TraceRecorder {
	if n < 1 || capacity < 1 {
		panic("sim: TraceRecorder needs positive node count and capacity")
	}
	return &TraceRecorder{
		n:        n,
		capacity: capacity,
		times:    make([]float64, capacity),
		rows:     make([]float64, capacity*n),
	}
}

// Reset drops all recorded samples and reshapes the recorder for n
// nodes, reusing the existing buffers when they are large enough.
func (tr *TraceRecorder) Reset(n int) {
	tr.ResetSize(n, tr.capacity)
}

// ResetSize drops all recorded samples and reshapes the recorder for n
// nodes and capacity samples, reusing the existing buffers when they are
// large enough. Sweeps over growing scenarios (the lower-bound n-sweep)
// reshape one recorder per step instead of reallocating one per n.
func (tr *TraceRecorder) ResetSize(n, capacity int) {
	if n < 1 || capacity < 1 {
		panic("sim: TraceRecorder needs positive node count and capacity")
	}
	tr.n = n
	tr.capacity = capacity
	tr.head = 0
	tr.count = 0
	if capacity > cap(tr.times) {
		tr.times = make([]float64, capacity)
	} else {
		tr.times = tr.times[:capacity]
	}
	if need := capacity * n; need > cap(tr.rows) {
		tr.rows = make([]float64, need)
	} else {
		tr.rows = tr.rows[:need]
	}
}

// Record appends one sample: the time plus a copy of vals (one logical
// clock value per node). It allocates nothing; once the ring is full the
// oldest sample is overwritten.
func (tr *TraceRecorder) Record(t float64, vals []float64) {
	if len(vals) != tr.n {
		panic(fmt.Sprintf("sim: trace row has %d values, recorder holds %d nodes", len(vals), tr.n))
	}
	tr.times[tr.head] = t
	copy(tr.rows[tr.head*tr.n:(tr.head+1)*tr.n], vals)
	tr.head = (tr.head + 1) % tr.capacity
	if tr.count < tr.capacity {
		tr.count++
	}
}

// Len returns the number of samples currently held.
func (tr *TraceRecorder) Len() int { return tr.count }

// Capacity returns the maximum number of samples the ring holds.
func (tr *TraceRecorder) Capacity() int { return tr.capacity }

// Nodes returns the per-sample row width (the node count).
func (tr *TraceRecorder) Nodes() int { return tr.n }

// Sample returns the i-th held sample in chronological order (0 is the
// oldest). The returned slice aliases the ring's storage: it is valid
// until the next Record or Reset and must not be modified.
func (tr *TraceRecorder) Sample(i int) (t float64, vals []float64) {
	if i < 0 || i >= tr.count {
		panic(fmt.Sprintf("sim: trace sample %d out of range [0, %d)", i, tr.count))
	}
	pos := i
	if tr.count == tr.capacity {
		pos = (tr.head + i) % tr.capacity
	}
	return tr.times[pos], tr.rows[pos*tr.n : (pos+1)*tr.n]
}

// Skew returns the i-th sample's time together with the minimum and
// maximum logical value across nodes — the row reduced to the global
// skew band that the lower-bound CSV dump plots.
func (tr *TraceRecorder) Skew(i int) (t, min, max float64) {
	t, vals := tr.Sample(i)
	min, max = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return t, min, max
}
