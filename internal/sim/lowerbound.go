package sim

// The Theorem 4.1 lower-bound experiment (Kuhn, Locher, Oshman, SPAA
// 2009, Section 4): over the two-chain network of Figure 1 the adversary
// picks, per node, the layered rate schedule of Eq. (1) — run at 1+rho
// until the hardware clock is ahead by MaxDelay times the node's
// flexible distance from the reference node, then at 1 — and charges
// message delays asymmetrically: the full MaxDelay on every hop of chain
// A, a negligible Epsilon on chain B. Chain B's edges are "constrained"
// in the sense of Definition 4.3 (their delays reveal nothing the
// adversary cannot absorb), so a node's flexible distance counts only
// its chain-A hops, and the farthest chain-A interior node sits
// Theta(n) flexible hops from the endpoints. Information about that
// node's clock is stale by at least one message delay per flexible hop
// when it reaches the chain ends, and conservative estimate aging
// recovers only a (1-rho)/(1+rho) fraction of the true growth, so every
// algorithm in the model is forced into global skew that grows linearly
// with n — matching, up to constants, the upper bound the rest of the
// repo demonstrates.

import (
	"math"

	"gcs/internal/clock"
	"gcs/internal/dyngraph"
	"gcs/internal/transport"
)

// LowerBoundConfig parameterizes one Theorem 4.1 run at a single n.
type LowerBoundConfig struct {
	// N is the node count of the two-chain network (>= 4).
	N int
	// Seed drives beacon phases; all delays and rate schedules are
	// adversarially fixed, so the execution is deterministic in (N, Seed).
	Seed uint64
	// Rho bounds hardware drift; MaxDelay bounds message delay. Zero
	// values default to 0.01 each, as elsewhere in the harness.
	Rho      float64
	MaxDelay float64
	// Epsilon is the delay the adversary charges on chain B (the fast
	// chain). It must lie in (0, MaxDelay]; zero defaults to MaxDelay/1000.
	Epsilon float64
	// BeaconEvery is the per-node beacon interval in hardware time
	// (default 0.1).
	BeaconEvery float64
	// Horizon is the real-time length of the run. Zero derives it from
	// the rate schedule: the last layered schedule switches back to rate
	// 1 at MaxDelay*maxDist/Rho, plus a settle margin.
	Horizon float64
	// SampleEvery is the skew sampling (and trace recording) period
	// (default 0.1).
	SampleEvery float64
}

// WithDefaults returns the config with unset fields filled in.
func (c LowerBoundConfig) WithDefaults() LowerBoundConfig {
	if c.N < 4 {
		panic("sim: lower bound needs N >= 4 (two chains with interior nodes)")
	}
	if c.Rho == 0 {
		c.Rho = 0.01
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 0.01
	}
	if c.Epsilon == 0 {
		c.Epsilon = c.MaxDelay / 1000
	}
	if c.Epsilon <= 0 || c.Epsilon > c.MaxDelay {
		panic("sim: lower-bound Epsilon must lie in (0, MaxDelay]")
	}
	if c.BeaconEvery == 0 {
		c.BeaconEvery = 0.1
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 0.1
	}
	if c.Horizon == 0 {
		s := c.switchHorizon()
		margin := 0.25 * s
		if margin < 2 {
			margin = 2
		}
		c.Horizon = s + margin
	}
	return c
}

// MaxFlexDist returns the largest flexible distance (Definition 4.3)
// from the reference endpoint w0 over the two-chain network, with chain
// B's edges constrained: roughly n/4, attained by the middle of chain A.
func (c LowerBoundConfig) MaxFlexDist() int {
	return maxFlexDist(c.N)
}

// SwitchHorizon returns the real time at which the farthest node's
// layered schedule switches from rate 1+rho back to rate 1 — the moment
// the adversary has banked its full MaxDelay*maxDist hardware offset.
func (c LowerBoundConfig) SwitchHorizon() float64 {
	return c.WithDefaults().switchHorizon()
}

// switchHorizon assumes Rho and MaxDelay have already been defaulted; it
// exists so WithDefaults can derive the horizon without recursing into
// itself through the exported wrapper.
func (c LowerBoundConfig) switchHorizon() float64 {
	return c.MaxDelay * float64(maxFlexDist(c.N)) / c.Rho
}

// maxFlexDist returns the largest flexible distance over the n-node
// two-chain network with chain B constrained.
func maxFlexDist(n int) int {
	dists, _ := lowerBoundDists(n)
	max := 0
	for _, d := range dists {
		if d > max {
			max = d
		}
	}
	return max
}

// OmegaSkew returns the analytic Omega(n) reference curve for the
// configuration: any view of the fastest node's clock held at the chain
// ends is stale by at least MaxDelay per flexible hop, and conservative
// aging recovers only a (1-rho)/(1+rho) fraction of the clock's true
// growth over that staleness, so the adversary forces skew of at least
//
//	2*Rho/(1+Rho) * MaxDelay * maxDist,
//
// which grows linearly in n. Observed skew exceeds it because beacons
// add a scheduling staleness of up to one beacon interval per hop on
// top of the delay bound.
func (c LowerBoundConfig) OmegaSkew() float64 {
	c = c.WithDefaults()
	return 2 * c.Rho / (1 + c.Rho) * c.MaxDelay * float64(maxFlexDist(c.N))
}

// lowerBoundDists builds the two-chain network for n nodes and returns
// each node's flexible distance from w0 (chain B constrained) together
// with the chain-B interior membership table the delay mask keys on.
func lowerBoundDists(n int) (dists []int, isB []bool) {
	tc := dyngraph.NewTwoChains(n)
	isB = make([]bool, n)
	for i := 1; i <= tc.LenB(); i++ {
		isB[tc.BIndex(i)] = true
	}
	constrained := make(map[dyngraph.Edge]bool, tc.LenB()+1)
	for _, e := range tc.Edges {
		if isB[e.U] || isB[e.V] {
			constrained[e] = true
		}
	}
	return dyngraph.FlexibleDistances(n, tc.Edges, constrained, 0), isB
}

// NewLowerBound wires the Theorem 4.1 scenario: the two-chain topology,
// one LayeredRate schedule per node keyed on its flexible distance, and
// a transport delay mask charging MaxDelay across chain A and Epsilon
// across chain B. The returned simulation has not run yet; attach a
// TraceRecorder before running to capture the skew time series.
func NewLowerBound(cfg LowerBoundConfig) *Simulation {
	cfg = cfg.WithDefaults()
	dists, isB := lowerBoundDists(cfg.N)
	return newLowerBoundWired(NewArena(), cfg, dists, isB)
}

// newLowerBoundWired does NewLowerBound's wiring from a precomputed
// layout, so callers that already ran the 0/1-BFS (RunLowerBound needs
// the distances for its report too) do not recompute it, onto a reusable
// arena, so sweeps pay the O(n) base wiring only when n grows. cfg must
// already have defaults applied.
func newLowerBoundWired(a *Arena, cfg LowerBoundConfig, dists []int, isB []bool) *Simulation {
	base := Config{
		N:           cfg.N,
		Seed:        cfg.Seed,
		Horizon:     cfg.Horizon,
		Rho:         cfg.Rho,
		MaxDelay:    cfg.MaxDelay,
		Topology:    TopologySpec{Kind: TopoTwoChains},
		Driver:      DriverSpec{Kind: DriveConstant},
		SampleEvery: cfg.SampleEvery,
	}
	base.Node.BeaconEvery = cfg.BeaconEvery
	s := a.Sim(base)

	// The adversary's delay mask: both DelayFns are built once here, so
	// the per-send mask lookup allocates nothing. An edge belongs to
	// chain B iff it touches a chain-B interior node (the shared
	// endpoints w0 and wn belong to both chains but every edge at them
	// leads into exactly one chain).
	slow := transport.FixedDelay(cfg.MaxDelay)
	fast := transport.FixedDelay(cfg.Epsilon)
	s.Net.SetDelayMask(func(from, to int) transport.DelayFn {
		if isB[from] || isB[to] {
			return fast
		}
		return slow
	})

	// Eq. (1) rate schedules: node x runs at 1+rho until its hardware
	// clock is ahead by MaxDelay*dist_M(w0, x), then at 1. Installing
	// over the ConstantRate driver the base wiring set is safe — the
	// schedule resets the rate at the current instant (time 0).
	for v, d := range dists {
		clock.LayeredRate(cfg.Rho, cfg.MaxDelay, d).Install(s.Engine, s.Clocks[v])
	}
	return s
}

// LowerBoundResult is the outcome of one Theorem 4.1 run.
type LowerBoundResult struct {
	N int `json:"n"`
	// MaxDist is the largest flexible distance in the network (~n/4).
	MaxDist int `json:"max_flexible_distance"`
	// MaxGlobalSkew is the largest observed max-minus-min logical clock
	// spread; the experiment's headline number.
	MaxGlobalSkew float64 `json:"max_global_skew"`
	// FinalGlobalSkew is the spread at the horizon.
	FinalGlobalSkew float64 `json:"final_global_skew"`
	// OmegaSkew is the analytic Omega(n) reference the observation is
	// plotted against (see LowerBoundConfig.OmegaSkew).
	OmegaSkew float64 `json:"omega_skew"`
	// UpperBound is the harness's analytic worst-case global skew for
	// the same topology, bracketing the observation from above.
	UpperBound float64 `json:"upper_bound"`
	// Horizon is the real-time length the run actually used.
	Horizon float64 `json:"horizon"`
	// Samples counts skew observations.
	Samples int `json:"samples"`
	// EventsExecuted is the DES kernel's fired-event count.
	EventsExecuted uint64          `json:"events_executed"`
	Transport      transport.Stats `json:"transport"`
}

// RunLowerBound wires and executes one Theorem 4.1 run. If tr is
// non-nil it is attached (and reset) to record the per-node logical
// clock time series. Results are deterministic in the config: same
// config, bit-identical result.
func RunLowerBound(cfg LowerBoundConfig, tr *TraceRecorder) LowerBoundResult {
	return NewArena().RunLowerBound(cfg, tr)
}

// RunLowerBound executes one Theorem 4.1 run on the arena's reusable
// simulation; see the package-level RunLowerBound. Reports are
// bit-identical to freshly wired runs.
func (a *Arena) RunLowerBound(cfg LowerBoundConfig, tr *TraceRecorder) LowerBoundResult {
	cfg = cfg.WithDefaults()
	// One layout computation serves the wiring, the reported maxDist,
	// and the Omega curve.
	dists, isB := lowerBoundDists(cfg.N)
	maxDist := 0
	for _, d := range dists {
		if d > maxDist {
			maxDist = d
		}
	}
	s := newLowerBoundWired(a, cfg, dists, isB)
	if tr != nil {
		s.AttachTrace(tr)
	}
	rpt := s.Run()
	return LowerBoundResult{
		N:               cfg.N,
		MaxDist:         maxDist,
		MaxGlobalSkew:   rpt.MaxGlobalSkew,
		FinalGlobalSkew: rpt.FinalGlobalSkew,
		OmegaSkew:       2 * cfg.Rho / (1 + cfg.Rho) * cfg.MaxDelay * float64(maxDist),
		UpperBound:      rpt.Bound,
		Horizon:         cfg.Horizon,
		Samples:         rpt.Samples,
		EventsExecuted:  rpt.EventsExecuted,
		Transport:       rpt.Transport,
	}
}

// LowerBoundSweep runs the scenario at each node count in ns (base's N
// is ignored) and returns one result per n. The sweep demonstrates the
// Omega(n) growth: observed max global skew scales linearly with n. One
// arena is reused across the whole sweep, so each step's wiring cost is
// only the delta over the largest n seen so far — run ascending sweeps
// for the cheapest schedule.
func LowerBoundSweep(base LowerBoundConfig, ns []int) []LowerBoundResult {
	// A fixed horizon copied from a single run would cut large-n runs
	// short of banking their full Omega(n) skew; always re-derive it from
	// the rate schedule per n.
	base.Horizon = 0
	return LowerBoundSweepParallel(base, ns, 1, nil)
}

// LowerBoundSweepParallel fans the n-sweep across workers goroutines
// (<= 0 means GOMAXPROCS), each owning a private arena and trace
// recorder reshaped per run, and returns results in ns order —
// bit-identical for every worker count, like RunSweep. base.Horizon is
// honored as given (the CLI passes the user's -horizon through); leave
// it 0 to re-derive the horizon from the rate schedule per n, which a
// Theorem 4.1 demonstration needs. collect, when non-nil, is called
// once per completed run from the worker goroutine with the sweep index
// and the worker's recorder; the recorder is only valid for the
// duration of the call (it is reshaped for the worker's next run), so
// consumers must extract what they need synchronously. With a nil
// collect no traces are recorded.
func LowerBoundSweepParallel(base LowerBoundConfig, ns []int, workers int,
	collect func(i int, res LowerBoundResult, tr *TraceRecorder)) []LowerBoundResult {
	results := make([]LowerBoundResult, len(ns))
	forEachCell(len(ns), workers, func(i int, a *Arena) {
		cfg := base
		cfg.N = ns[i]
		// An unset base Horizon re-derives per n in WithDefaults.
		cfg = cfg.WithDefaults()
		var tr *TraceRecorder
		if collect != nil {
			tr = a.Trace(cfg.N, int(math.Ceil(cfg.Horizon/cfg.SampleEvery))+2)
		}
		results[i] = a.RunLowerBound(cfg, tr)
		if collect != nil {
			collect(i, results[i], tr)
		}
	})
	return results
}
