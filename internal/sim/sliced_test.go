package sim

import (
	"reflect"
	"testing"

	"gcs/internal/simtest"
)

// TestArenaRunSlicedBitIdentical: slicing only changes where the engine
// pauses between events, never what it executes — a sliced cell's
// report is bit-identical to an unsliced run. The sweep service runs
// every cell through this seam, so resumed jobs stay comparable to
// uninterrupted ones.
func TestArenaRunSlicedBitIdentical(t *testing.T) {
	cfg := churnyConfig(11)
	want := mustRun(t, cfg)
	a := NewArena()
	calls := 0
	got, ok := a.RunSliced(cfg, 0.7, func() bool { calls++; return true })
	if !ok {
		t.Fatal("RunSliced abandoned a run whose cont always allowed it")
	}
	if calls < 2 {
		t.Fatalf("cont consulted %d times; slicing is not happening", calls)
	}
	simtest.AssertSameReport(t, "sliced vs plain run", got, want)
}

// TestArenaRunSlicedParallel: parallel configs have no mid-run seam and
// degrade to one-piece execution, still bit-identical to Run.
func TestArenaRunSlicedParallel(t *testing.T) {
	cfg := Config{N: 48, Seed: 5, Horizon: 4, Parallel: true, Shards: 4, Workers: 2}
	want := mustRun(t, cfg)
	got, ok := NewArena().RunSliced(cfg, 0.5, func() bool { return true })
	if !ok {
		t.Fatal("RunSliced abandoned a parallel run whose cont allowed it")
	}
	simtest.AssertSameReport(t, "sliced parallel vs plain run", got, want)
}

// TestArenaRunSlicedAbandon: a false cont abandons the cell with a
// zero report, and the arena remains fully reusable — the next run is
// bit-identical to a fresh one, which is what lets a draining daemon
// abandon in-flight cells and re-run them after restart.
func TestArenaRunSlicedAbandon(t *testing.T) {
	cfg := churnyConfig(11)
	a := NewArena()
	budget := 2
	rpt, ok := a.RunSliced(cfg, 0.5, func() bool { budget--; return budget >= 0 })
	if ok {
		t.Fatal("RunSliced completed a run its cont abandoned")
	}
	if !reflect.DeepEqual(rpt, SkewReport{}) {
		t.Fatalf("abandoned run leaked a partial report: %+v", rpt)
	}
	got, ok := a.RunSliced(cfg, 0.5, func() bool { return true })
	if !ok {
		t.Fatal("arena run after abandonment did not complete")
	}
	simtest.AssertSameReport(t, "post-abandon rerun vs fresh run", got, mustRun(t, cfg))
}
