package sim

import (
	"math"

	"gcs/internal/clock"
	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/fault"
	"gcs/internal/gcs"
	"gcs/internal/transport"
)

// SkewReport summarizes one execution. All fields are deterministic
// functions of the Config (including Seed), which the determinism
// regression test relies on.
type SkewReport struct {
	// MaxGlobalSkew is the largest max-minus-min logical clock spread
	// observed at any sample point.
	MaxGlobalSkew float64
	// MaxAdjacentSkew is the largest |L_u - L_v| observed over any edge
	// present at a sample point (the gradient/local skew).
	MaxAdjacentSkew float64
	// FinalGlobalSkew is the spread at the horizon.
	FinalGlobalSkew float64
	// Bound is the scenario's analytic global skew bound.
	Bound float64
	// Samples counts skew observations (including t=0 and the horizon).
	Samples int

	Transport transport.Stats
	// EventsExecuted is the DES kernel's fired-event count.
	EventsExecuted uint64
	EdgeAdds       int
	EdgeRemoves    int

	// MinRateSeen/MaxRateSeen aggregate hardware rates across all nodes,
	// for validating the [1-rho, 1+rho] drift bound.
	MinRateSeen float64
	MaxRateSeen float64

	TotalJumps    int
	TotalMessages int
	TotalBeacons  int
	// TotalDiscoveries counts immediate beacons sent over fresh edges
	// (gcs neighbor discovery on EdgeAdded).
	TotalDiscoveries int

	// PerDistanceSkew, when Config.CheckGradient is set, holds the
	// largest |L_u - L_v| observed over any pair at current hop distance
	// d, indexed by d (index 0 unused). Nil when the check is off.
	PerDistanceSkew []float64
	// DistanceRecomputes counts the gradient checker's distance-matrix
	// BFS sweeps (one per topology-change epoch observed); 0 when the
	// check is off.
	DistanceRecomputes int

	// Faults counts the injected disturbances (Config.Faults); zero when
	// injection is off.
	Faults fault.Stats
	// ReconvergenceTime measures graceful degradation under injection:
	// the time from the last injected disturbance until the global skew
	// (over live nodes) re-entered the analytic bound. 0 when the skew
	// never left the bound after the last fault (or no fault fired);
	// +Inf when it was still outside at the horizon — the chaos CI gate
	// fails on that.
	ReconvergenceTime float64
}

// Simulation is one fully wired scenario, exposed so tests can inspect
// mid-run state; most callers use Run. A Simulation is reusable: Reset
// rewires it in place for another config, recycling the engine's event
// pool, the graph's adjacency and history storage, the transport's
// flight arena, and every per-node object, so repeated runs of
// same-shape configs allocate nothing (see Arena).
type Simulation struct {
	Cfg    Config
	Engine *des.Engine
	Graph  *dyngraph.Dynamic
	Net    *transport.Network
	Clocks []*clock.HardwareClock
	Nodes  []*gcs.Node

	// allClocks/allNodes/allDrivers are the grow-only pools backing the
	// public slices, which are views of the first Cfg.N entries.
	allClocks  []*clock.HardwareClock
	allNodes   []*gcs.Node
	allDrivers []*driverState

	// Reseedable PRNG streams, one per subsystem, matching the fork ids a
	// fresh wiring would draw so reuse stays bit-identical.
	root      *des.Rand
	delayRand *des.Rand
	driveRand *des.Rand
	phaseRand *des.Rand
	// delayFn is the long-lived base delay law over delayRand; it is
	// rebuilt only when the delay bounds change.
	delayFn  transport.DelayFn
	delayMax float64
	delayMin float64
	// onMessage is the single delivery handler shared by every node.
	onMessage transport.Handler
	// sampleFn is the long-lived periodic skew sampler.
	sampleFn func()
	// wired records that the one-time wiring (discovery subscription) has
	// happened; edgeCfg/boundCfg key the cached initial edge set and
	// analytic bound.
	wired       bool
	edgeCfg     edgeKey
	boundCfg    Config
	boundOK     bool
	bound       float64
	report      SkewReport
	lastSampleT float64
	// initialEdges is the backbone edge set materialized once per
	// topology shape and reused by the churner setup (Topology.Edges is
	// O(n) or worse, so it must not be recomputed per run).
	initialEdges []dyngraph.Edge
	// volCands caches the volatile-churn candidate set, which is a
	// deterministic function of volKey (the rejection sampling draws from
	// a dedicated root fork), so same-config re-runs skip the O(n) map
	// rebuild.
	volCands []dyngraph.Edge
	volKey   volCandKey
	// vals is the reused logical-clock sample buffer; edgeFn is the
	// long-lived per-edge observer closure. Both exist so that observe
	// allocates nothing per sample.
	vals   []float64
	edgeFn func(dyngraph.Edge)
	// trace, when non-nil, receives one row of logical values per sample.
	trace *TraceRecorder
	// gradient, when non-nil (Config.CheckGradient), folds every sample
	// into per-distance skew buckets.
	gradient *GradientChecker
	// started records whether the periodic sampler has been installed.
	started bool

	// Fault-injection state (Config.Faults). msgFaults and injector are
	// grow-once pools; faultHooks holds the long-lived callbacks into
	// nodes and clocks. downMask aliases the injector's live mask so
	// observe can exclude crashed nodes; goodSince tracks when the skew
	// last re-entered faultBound (-1 while outside), feeding the
	// ReconvergenceTime metric.
	faultOn    bool
	msgFaults  *fault.Messages
	injector   *fault.Injector
	faultHooks fault.Hooks
	faultRoot  des.Rand
	downMask   []bool
	faultBound float64
	goodSince  float64
}

// edgeKey identifies the inputs the cached initial edge set depends on.
type edgeKey struct {
	topo TopologySpec
	n    int
	star bool
}

// volCandKey identifies the inputs the cached volatile candidate set
// depends on: the backbone shape, the node count, the request size, and
// the seed driving the rejection sampling.
type volCandKey struct {
	edges edgeKey
	seed  uint64
	extra int
}

// driverState is one node's reusable rate driver: long-lived closures
// over a reseedable PRNG, so rewiring a simulation re-installs drivers
// without allocating. The install sequence — rate draws, event labels,
// scheduling order — reproduces clock.RandomWalk/BangBang/ConstantRate
// exactly, keeping arena runs bit-identical to freshly wired ones.
type driverState struct {
	s      *Simulation
	hw     *clock.HardwareClock
	rand   des.Rand
	high   bool
	stepFn func()
	flipFn func()
}

func newDriverState(s *Simulation, hw *clock.HardwareClock) *driverState {
	ds := &driverState{s: s, hw: hw}
	ds.stepFn = func() {
		cfg := &ds.s.Cfg
		ds.hw.SetRate(ds.rand.Range(1-cfg.Rho, 1+cfg.Rho))
		ds.s.Engine.ScheduleAfter(cfg.Driver.Interval*(0.5+ds.rand.Float64()), "clock.walk", ds.stepFn)
	}
	ds.flipFn = func() {
		ds.flip()
		ds.s.Engine.ScheduleAfter(ds.s.Cfg.Driver.Interval, "clock.bang", ds.flipFn)
	}
	return ds
}

func (ds *driverState) flip() {
	if ds.high {
		ds.hw.SetRate(1 + ds.s.Cfg.Rho)
	} else {
		ds.hw.SetRate(1 - ds.s.Cfg.Rho)
	}
	ds.high = !ds.high
}

// install arms the driver for one run. driveRand is the shared
// per-wiring driver stream; node keys this node's fork of it.
func (ds *driverState) install(node int, driveRand *des.Rand) {
	cfg := &ds.s.Cfg
	switch cfg.Driver.Kind {
	case DriveConstant:
		ds.hw.SetRate(1)
	case DriveRandomWalk:
		if cfg.Driver.Interval <= 0 {
			panic("sim: RandomWalk interval must be positive")
		}
		driveRand.ForkInto(uint64(node), &ds.rand)
		ds.hw.SetRate(ds.rand.Range(1-cfg.Rho, 1+cfg.Rho))
		ds.s.Engine.ScheduleAfter(cfg.Driver.Interval*(0.5+ds.rand.Float64()), "clock.walk", ds.stepFn)
	case DriveBangBang:
		if cfg.Driver.Interval <= 0 {
			panic("sim: BangBang interval must be positive")
		}
		ds.high = node%2 == 0
		ds.flip()
		ds.s.Engine.ScheduleAfter(cfg.Driver.Interval, "clock.bang", ds.flipFn)
	default:
		panic("sim: unknown driver kind")
	}
}

// New wires a simulation from the config without running it.
func New(cfg Config) *Simulation {
	s := &Simulation{
		Engine:    des.NewEngine(),
		root:      des.NewRand(0),
		delayRand: des.NewRand(0),
		driveRand: des.NewRand(0),
		phaseRand: des.NewRand(0),
	}
	s.edgeFn = func(e dyngraph.Edge) {
		if d := math.Abs(s.vals[e.U] - s.vals[e.V]); d > s.report.MaxAdjacentSkew {
			s.report.MaxAdjacentSkew = d
		}
	}
	s.onMessage = func(m transport.Message) {
		if m.Values != nil {
			s.Nodes[m.To].OnValues(m.From, m.Values)
		} else {
			s.Nodes[m.To].OnMessage(m.From, m.Value)
		}
	}
	s.sampleFn = func() {
		s.observe()
		s.Engine.ScheduleAfter(s.Cfg.SampleEvery, "sim.sample", s.sampleFn)
	}
	s.wire(cfg)
	return s
}

// Reset rewires the simulation in place for cfg, reusing every warm
// buffer and pooled object of the previous run. After Reset the
// simulation behaves exactly like New(cfg) — executions are
// bit-identical — but a same-shape rewire performs zero allocations.
func (s *Simulation) Reset(cfg Config) { s.wire(cfg) }

func (s *Simulation) wire(cfg Config) {
	// New/Reset keep the panic contract for programmer errors; the
	// error-returning boundary is sim.Run/RunSweep, which Validate first.
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg = cfg.WithDefaults()
	s.Cfg = cfg
	s.Engine.Reset()
	s.root.Reseed(cfg.Seed)

	// Initial backbone edges, cached per topology shape.
	star := cfg.Churn.Kind == ChurnRotatingStar
	if key := (edgeKey{topo: cfg.Topology, n: cfg.N, star: star}); !s.wired || key != s.edgeCfg {
		if star {
			s.initialEdges = nil
		} else {
			s.initialEdges = cfg.Topology.Edges(cfg.N)
		}
		s.edgeCfg = key
	}

	if s.Graph == nil {
		s.Graph = dyngraph.NewDynamic(cfg.N, s.initialEdges)
	} else {
		s.Graph.Reset(cfg.N, s.initialEdges)
	}

	if s.delayFn == nil || s.delayMax != cfg.MaxDelay || s.delayMin != cfg.MinDelay {
		s.delayMax = cfg.MaxDelay
		s.delayMin = cfg.MinDelay
		// A zero MinDelay draws the bit-identical sequence as the legacy
		// UniformDelay law, so existing serial reports are unchanged.
		s.delayFn = transport.UniformDelayIn(cfg.MinDelay, cfg.MaxDelay, s.delayRand)
	}
	s.root.ForkInto(0xde1a9, s.delayRand)
	if s.Net == nil {
		s.Net = transport.New(s.Engine, s.Graph, s.delayFn, cfg.MaxDelay)
	} else {
		s.Net.Reset(s.delayFn, cfg.MaxDelay)
	}
	s.Net.SetCoalescing(!cfg.NoCoalesce)

	// Grow the node/clock/driver pools up to cfg.N, then reset the live
	// prefix. Nodes are wired straight to the (stable) Network and
	// Dynamic graph through the harness seam — transport.Network is the
	// seam.Sender and dyngraph.Dynamic the seam.Topology, with no
	// per-node adapter closures.
	for len(s.allClocks) < cfg.N {
		i := len(s.allClocks)
		hw := clock.New(s.Engine, 1)
		nd := gcs.New(i, hw, cfg.Node, s.Net, s.Graph)
		s.allClocks = append(s.allClocks, hw)
		s.allNodes = append(s.allNodes, nd)
		s.allDrivers = append(s.allDrivers, newDriverState(s, hw))
	}
	s.Clocks = s.allClocks[:cfg.N]
	s.Nodes = s.allNodes[:cfg.N]

	s.root.ForkInto(0xd81fe, s.driveRand)
	for i := 0; i < cfg.N; i++ {
		s.Clocks[i].Reset(1)
		s.Nodes[i].Reset(cfg.Node)
		s.Net.SetHandler(i, s.onMessage)
		s.allDrivers[i].install(i, s.driveRand)
	}

	// Neighbor discovery: subscribe before the churner installs, so even
	// edges a churn process adds at time 0 trigger an immediate beacon
	// exchange across the fresh edge. The graph keeps its subscribers
	// across Reset, so this happens exactly once per Simulation.
	if !s.wired {
		s.Graph.Subscribe(discovery{s})
		s.wired = true
	}

	if ch := s.churner(s.root); ch != nil {
		ch.Install(s.Engine, s.Graph)
	}

	s.root.ForkInto(0x9a5e, s.phaseRand)
	for i := 0; i < cfg.N; i++ {
		s.Nodes[i].Start(s.phaseRand.Range(0, cfg.Node.BeaconEvery))
	}

	s.wireFaults(cfg)

	s.gradient = wireGradient(s.gradient, cfg)

	if cap(s.vals) < cfg.N {
		s.vals = make([]float64, cfg.N)
	} else {
		s.vals = s.vals[:cfg.N]
	}
	s.trace = nil
	s.report = SkewReport{}
	s.lastSampleT = 0
	s.started = false
}

// wireFaults arms fault injection for one run. The fault root is forked
// from the scenario root (never advancing it, so a zero-valued Spec
// leaves every other stream bit-identical); message faults wire into
// the transport, crash/recover and rate excursions into the injector's
// engine events.
func (s *Simulation) wireFaults(cfg Config) {
	s.faultOn = cfg.Faults.Enabled()
	s.downMask = nil
	s.goodSince = -1
	if !s.faultOn {
		return
	}
	s.root.ForkInto(0xfa07, &s.faultRoot)
	if cfg.Faults.MessageFaults() {
		if s.msgFaults == nil {
			s.msgFaults = fault.NewMessages()
		}
		s.msgFaults.Wire(cfg.Faults, cfg.MaxDelay, cfg.N, &s.faultRoot)
		s.Net.SetFaults(s.msgFaults)
	}
	if s.injector == nil {
		s.injector = fault.NewInjector()
		s.faultHooks = fault.Hooks{
			Crash:   func(i int) { s.Nodes[i].Crash() },
			Recover: func(i int) { s.Nodes[i].Recover() },
			SetRate: func(i int, rate float64) { s.Clocks[i].SetRate(rate) },
		}
	}
	s.injector.Wire(cfg.Faults, cfg.N, cfg.Rho, &s.faultRoot, s.faultHooks)
	s.injector.Install(s.Engine)
	s.downMask = s.injector.Down()
	s.faultBound = s.boundFor(cfg)
}

// reconvergenceTime derives the report metric from the merged fault
// stats and the time the skew last re-entered the bound: 0 when no
// fault fired or the skew never left the bound after the last fault,
// the re-entry delay otherwise, +Inf when still outside at the horizon.
// Shared by the serial and parallel harnesses.
func reconvergenceTime(fs fault.Stats, goodSince float64) float64 {
	if fs.Total() == 0 {
		return 0
	}
	if goodSince < 0 {
		return math.Inf(1)
	}
	if d := goodSince - fs.LastFaultT; d > 0 {
		return d
	}
	return 0
}

// wireGradient returns the checker for cfg, reusing prev when its shape
// still fits (reset in place) and replacing it otherwise; nil when the
// check is off. Shared by the serial and parallel harnesses.
func wireGradient(prev *GradientChecker, cfg Config) *GradientChecker {
	if !cfg.CheckGradient {
		return nil
	}
	wantSources := cfg.GradientSources
	if wantSources >= cfg.N {
		wantSources = 0 // sampling every node is the exact check
	}
	r, src := 0, 0
	if prev != nil {
		r, src = prev.shape()
	}
	if prev == nil || prev.nodes() != cfg.N || r != cfg.GradientRadius || src != wantSources {
		return newGradientChecker(cfg.N, cfg.GradientRadius, wantSources)
	}
	prev.reset()
	return prev
}

// discovery relays topology events to the algorithm layer: both
// endpoints of a fresh edge beacon immediately over it instead of
// waiting up to BeaconEvery, which is what the paper's catch-up
// argument assumes of nodes that become adjacent.
type discovery struct{ s *Simulation }

func (d discovery) EdgeAdded(t float64, e dyngraph.Edge) {
	d.s.Nodes[e.U].OnEdgeAdded(e.V)
	d.s.Nodes[e.V].OnEdgeAdded(e.U)
}

func (d discovery) EdgeRemoved(t float64, e dyngraph.Edge) {}

func (s *Simulation) churner(root *des.Rand) dyngraph.Churner {
	cfg := s.Cfg
	switch cfg.Churn.Kind {
	case ChurnNone:
		return nil
	case ChurnVolatile:
		if key := (volCandKey{edges: s.edgeCfg, seed: cfg.Seed, extra: cfg.Churn.ExtraEdges}); s.volCands == nil || key != s.volKey {
			s.volCands = volatileCandidates(cfg.N, cfg.Churn.ExtraEdges, s.initialEdges, root.Fork(0xca9d))
			s.volKey = key
		}
		return dyngraph.VolatileEdges{
			Candidates: s.volCands,
			Lifetime:   cfg.Churn.Lifetime,
			Absence:    cfg.Churn.Absence,
			Rand:       root.Fork(0xc400),
		}
	case ChurnRotatingStar:
		return dyngraph.RotatingStar{
			Period:  cfg.Churn.Period,
			Overlap: cfg.Churn.Overlap,
		}
	}
	panic("sim: unknown churn kind")
}

// volatileCandidates draws extra distinct random edges over n nodes that
// are not part of the static backbone. Rejection sampling is capped, so
// on dense backbones it can exhaust its attempt budget short of the
// request; the remainder is then filled by deterministic enumeration of
// the unused non-backbone pairs, so the churner is under-provisioned
// only when the graph genuinely has fewer candidates than requested.
// Shared by the serial and parallel harnesses.
func volatileCandidates(n, extra int, backboneEdges []dyngraph.Edge, r *des.Rand) []dyngraph.Edge {
	backbone := map[dyngraph.Edge]bool{}
	for _, e := range backboneEdges {
		backbone[e] = true
	}
	seen := map[dyngraph.Edge]bool{}
	var out []dyngraph.Edge
	for attempts := 0; len(out) < extra && attempts < 100*extra+100; attempts++ {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		e := dyngraph.E(u, v)
		if backbone[e] || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	for u := 0; u < n && len(out) < extra; u++ {
		for v := u + 1; v < n && len(out) < extra; v++ {
			e := dyngraph.Edge{U: u, V: v}
			if backbone[e] || seen[e] {
				continue
			}
			out = append(out, e)
		}
	}
	return out
}

// AttachTrace registers tr to receive one (time, per-node logical
// values) row per skew sample. tr is reset to the scenario's node count;
// call after wiring (New or Reset), before the simulation runs.
func (s *Simulation) AttachTrace(tr *TraceRecorder) {
	tr.Reset(s.Cfg.N)
	s.trace = tr
}

// observe records one skew sample at the engine's current time. It
// reuses the simulation's sample buffer and edge observer, so sampling
// allocates nothing.
func (s *Simulation) observe() {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, nd := range s.Nodes {
		if s.downMask != nil && s.downMask[i] {
			// A crashed node has no logical clock. Poisoning its sample with
			// NaN makes every consumer skip it for free: NaN fails the lo/hi
			// comparisons here, the |L_u - L_v| > max test in edgeFn, and the
			// gradient checker's bucket comparisons.
			s.vals[i] = math.NaN()
			continue
		}
		l := nd.Logical()
		s.vals[i] = l
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	spread := hi - lo
	if hi < lo {
		spread = 0 // every node down: no live pair to skew
	}
	if spread > s.report.MaxGlobalSkew {
		s.report.MaxGlobalSkew = spread
	}
	if s.trace != nil {
		s.trace.Record(s.Engine.Now(), s.vals)
	}
	if s.gradient != nil {
		s.gradient.observe(s.Graph, s.vals)
	}
	// Max over edges is order-independent, so the unordered allocation-free
	// iteration is deterministic in its result.
	s.Graph.RangeCurrentEdges(s.edgeFn)
	s.report.FinalGlobalSkew = spread
	if s.faultOn {
		if spread > s.faultBound {
			s.goodSince = -1
		} else if s.goodSince < 0 {
			s.goodSince = s.Engine.Now()
		}
	}
	s.report.Samples++
	s.lastSampleT = s.Engine.Now()
}

// Advance runs the execution up to real time t, installing the periodic
// skew sampler on first call. Tests step a live scenario through it; Run
// drives it to the horizon and finalizes the report.
func (s *Simulation) Advance(t float64) {
	if !s.started {
		s.started = true
		s.Engine.Schedule(s.Engine.Now(), "sim.sample", s.sampleFn)
	}
	s.Engine.Run(t)
}

// boundFor returns the analytic global skew bound for cfg, cached across
// runs: GlobalSkewBound materializes the topology and runs a BFS, so a
// reused simulation must not recompute it per run. The cache keys on
// every field the bound depends on (Seed, Horizon, SampleEvery, Driver,
// and the check/coalesce toggles do not affect it).
func (s *Simulation) boundFor(cfg Config) float64 {
	key := cfg
	key.Seed = 0
	key.Horizon = 0
	key.SampleEvery = 0
	key.Driver = DriverSpec{}
	key.CheckGradient = false
	key.GradientRadius = 0
	key.GradientSources = 0
	key.NoCoalesce = false
	key.Parallel = false
	key.Shards = 0
	key.Workers = 0
	key.MinDelay = 0
	key.Faults = FaultSpec{}
	if !s.boundOK || key != s.boundCfg {
		s.bound = cfg.GlobalSkewBound()
		s.boundCfg = key
		s.boundOK = true
	}
	return s.bound
}

// Run executes the scenario to its horizon and returns the report.
func (s *Simulation) Run() SkewReport {
	cfg := s.Cfg
	s.Advance(cfg.Horizon)
	// End-of-run state at exactly the horizon, unless the periodic
	// sampler already landed there (Horizon a multiple of SampleEvery).
	if s.report.Samples == 0 || s.lastSampleT < cfg.Horizon {
		s.observe()
	}

	s.report.Bound = s.boundFor(cfg)
	s.report.Transport = s.Net.Stats()
	s.report.EventsExecuted = s.Engine.Executed()
	s.report.EdgeAdds, s.report.EdgeRemoves = s.Graph.Stats()
	if s.gradient != nil {
		s.report.PerDistanceSkew = s.gradient.PerDistance()
		s.report.DistanceRecomputes = s.gradient.Recomputes()
	}

	// The totals below are recomputed from node snapshots on every call,
	// so Run is idempotent: calling it after Advance-stepping, or twice,
	// reports each jump/message/beacon exactly once.
	s.report.MinRateSeen, s.report.MaxRateSeen = math.Inf(1), math.Inf(-1)
	s.report.TotalJumps, s.report.TotalMessages = 0, 0
	s.report.TotalBeacons, s.report.TotalDiscoveries = 0, 0
	for i, hw := range s.Clocks {
		mn, mx := hw.RateBoundsSeen()
		if mn < s.report.MinRateSeen {
			s.report.MinRateSeen = mn
		}
		if mx > s.report.MaxRateSeen {
			s.report.MaxRateSeen = mx
		}
		snap := s.Nodes[i].Snap()
		s.report.TotalJumps += snap.Jumps
		s.report.TotalMessages += snap.Messages
		s.report.TotalBeacons += snap.Beacons
		s.report.TotalDiscoveries += snap.Discoveries
	}

	if s.faultOn {
		fs := s.Net.FaultStats()
		fs.Merge(s.injector.Stats())
		s.report.Faults = fs
		s.report.ReconvergenceTime = reconvergenceTime(fs, s.goodSince)
	}
	return s.report
}

// Gradient returns the simulation's gradient checker, or nil when
// Config.CheckGradient is off.
func (s *Simulation) Gradient() *GradientChecker { return s.gradient }

// Run wires and executes cfg in one call, dispatching to the sharded
// parallel harness when Config.Parallel is set. A malformed config is
// rejected with Validate's error before anything is wired — the
// harness-boundary contract a long-running sweep service relies on.
func Run(cfg Config) (SkewReport, error) {
	if err := cfg.Validate(); err != nil {
		return SkewReport{}, err
	}
	if cfg.Parallel {
		return NewParallel(cfg).Run(), nil
	}
	return New(cfg).Run(), nil
}
