package sim

import (
	"math"

	"gcs/internal/clock"
	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/gcs"
	"gcs/internal/transport"
)

// SkewReport summarizes one execution. All fields are deterministic
// functions of the Config (including Seed), which the determinism
// regression test relies on.
type SkewReport struct {
	// MaxGlobalSkew is the largest max-minus-min logical clock spread
	// observed at any sample point.
	MaxGlobalSkew float64
	// MaxAdjacentSkew is the largest |L_u - L_v| observed over any edge
	// present at a sample point (the gradient/local skew).
	MaxAdjacentSkew float64
	// FinalGlobalSkew is the spread at the horizon.
	FinalGlobalSkew float64
	// Bound is the scenario's analytic global skew bound.
	Bound float64
	// Samples counts skew observations (including t=0 and the horizon).
	Samples int

	Transport transport.Stats
	// EventsExecuted is the DES kernel's fired-event count.
	EventsExecuted uint64
	EdgeAdds       int
	EdgeRemoves    int

	// MinRateSeen/MaxRateSeen aggregate hardware rates across all nodes,
	// for validating the [1-rho, 1+rho] drift bound.
	MinRateSeen float64
	MaxRateSeen float64

	TotalJumps    int
	TotalMessages int
	TotalBeacons  int
	// TotalDiscoveries counts immediate beacons sent over fresh edges
	// (gcs neighbor discovery on EdgeAdded).
	TotalDiscoveries int

	// PerDistanceSkew, when Config.CheckGradient is set, holds the
	// largest |L_u - L_v| observed over any pair at current hop distance
	// d, indexed by d (index 0 unused). Nil when the check is off.
	PerDistanceSkew []float64
}

// Simulation is one fully wired scenario, exposed so tests can inspect
// mid-run state; most callers use Run.
type Simulation struct {
	Cfg    Config
	Engine *des.Engine
	Graph  *dyngraph.Dynamic
	Net    *transport.Network
	Clocks []*clock.HardwareClock
	Nodes  []*gcs.Node

	report      SkewReport
	lastSampleT float64
	// initialEdges is the backbone edge set materialized once in New and
	// reused by the churner setup (Topology.Edges is O(n) or worse, so it
	// must not be recomputed per consumer).
	initialEdges []dyngraph.Edge
	// vals is the reused logical-clock sample buffer; edgeFn is the
	// long-lived per-edge observer closure. Both exist so that observe
	// allocates nothing per sample.
	vals   []float64
	edgeFn func(dyngraph.Edge)
	// trace, when non-nil, receives one row of logical values per sample.
	trace *TraceRecorder
	// gradient, when non-nil (Config.CheckGradient), folds every sample
	// into per-distance skew buckets.
	gradient *GradientChecker
	// started records whether the periodic sampler has been installed.
	started bool
}

// New wires a simulation from the config without running it.
func New(cfg Config) *Simulation {
	cfg = cfg.WithDefaults()
	en := des.NewEngine()
	root := des.NewRand(cfg.Seed)

	var initial []dyngraph.Edge
	if cfg.Churn.Kind != ChurnRotatingStar {
		initial = cfg.Topology.Edges(cfg.N)
	}
	g := dyngraph.NewDynamic(cfg.N, initial)
	net := transport.New(en, g,
		transport.UniformDelay(cfg.MaxDelay, root.Fork(0xde1a9)), cfg.MaxDelay)

	s := &Simulation{
		Cfg:          cfg,
		Engine:       en,
		Graph:        g,
		Net:          net,
		Clocks:       make([]*clock.HardwareClock, cfg.N),
		Nodes:        make([]*gcs.Node, cfg.N),
		initialEdges: initial,
		vals:         make([]float64, cfg.N),
	}
	s.edgeFn = func(e dyngraph.Edge) {
		if d := math.Abs(s.vals[e.U] - s.vals[e.V]); d > s.report.MaxAdjacentSkew {
			s.report.MaxAdjacentSkew = d
		}
	}

	if cfg.CheckGradient {
		s.gradient = newGradientChecker(cfg.N)
	}

	onMessage := func(m transport.Message) {
		s.Nodes[m.To].OnMessage(m.From, m.Value)
	}
	driveRand := root.Fork(0xd81fe)
	for i := 0; i < cfg.N; i++ {
		i := i
		hw := clock.New(en, 1)
		s.Clocks[i] = hw
		s.Nodes[i] = gcs.New(i, hw, cfg.Node,
			func(v float64) int { return net.Broadcast(i, v) },
			func(buf []int) []int { return g.AppendNeighbors(i, buf) })
		s.Nodes[i].SetUnicast(func(to int, v float64) bool { return net.Send(i, to, v) })
		net.SetHandler(i, onMessage)
		cfg.Driver.build(i, cfg.Rho, driveRand).Install(en, hw)
	}
	// Neighbor discovery: subscribe before the churner installs, so even
	// edges a churn process adds at time 0 trigger an immediate beacon
	// exchange across the fresh edge.
	g.Subscribe(discovery{s})

	if ch := s.churner(root); ch != nil {
		ch.Install(en, g)
	}

	phaseRand := root.Fork(0x9a5e)
	for i := 0; i < cfg.N; i++ {
		s.Nodes[i].Start(phaseRand.Range(0, cfg.Node.BeaconEvery))
	}
	return s
}

// discovery relays topology events to the algorithm layer: both
// endpoints of a fresh edge beacon immediately over it instead of
// waiting up to BeaconEvery, which is what the paper's catch-up
// argument assumes of nodes that become adjacent.
type discovery struct{ s *Simulation }

func (d discovery) EdgeAdded(t float64, e dyngraph.Edge) {
	d.s.Nodes[e.U].OnEdgeAdded(e.V)
	d.s.Nodes[e.V].OnEdgeAdded(e.U)
}

func (d discovery) EdgeRemoved(t float64, e dyngraph.Edge) {}

func (s *Simulation) churner(root *des.Rand) dyngraph.Churner {
	cfg := s.Cfg
	switch cfg.Churn.Kind {
	case ChurnNone:
		return nil
	case ChurnVolatile:
		return dyngraph.VolatileEdges{
			Candidates: s.volatileCandidates(root.Fork(0xca9d)),
			Lifetime:   cfg.Churn.Lifetime,
			Absence:    cfg.Churn.Absence,
			Rand:       root.Fork(0xc400),
		}
	case ChurnRotatingStar:
		return dyngraph.RotatingStar{
			Period:  cfg.Churn.Period,
			Overlap: cfg.Churn.Overlap,
		}
	}
	panic("sim: unknown churn kind")
}

// volatileCandidates draws ExtraEdges distinct random edges that are not
// part of the static backbone (the initial edge set already materialized
// in New). Rejection sampling is capped, so on dense backbones it can
// exhaust its attempt budget short of the request; the remainder is then
// filled by deterministic enumeration of the unused non-backbone pairs,
// so the churner is under-provisioned only when the graph genuinely has
// fewer candidates than requested.
func (s *Simulation) volatileCandidates(r *des.Rand) []dyngraph.Edge {
	backbone := map[dyngraph.Edge]bool{}
	for _, e := range s.initialEdges {
		backbone[e] = true
	}
	seen := map[dyngraph.Edge]bool{}
	var out []dyngraph.Edge
	for attempts := 0; len(out) < s.Cfg.Churn.ExtraEdges && attempts < 100*s.Cfg.Churn.ExtraEdges+100; attempts++ {
		u := r.Intn(s.Cfg.N)
		v := r.Intn(s.Cfg.N)
		if u == v {
			continue
		}
		e := dyngraph.E(u, v)
		if backbone[e] || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	for u := 0; u < s.Cfg.N && len(out) < s.Cfg.Churn.ExtraEdges; u++ {
		for v := u + 1; v < s.Cfg.N && len(out) < s.Cfg.Churn.ExtraEdges; v++ {
			e := dyngraph.Edge{U: u, V: v}
			if backbone[e] || seen[e] {
				continue
			}
			out = append(out, e)
		}
	}
	return out
}

// AttachTrace registers tr to receive one (time, per-node logical
// values) row per skew sample. tr is reset to the scenario's node count;
// call before the simulation runs.
func (s *Simulation) AttachTrace(tr *TraceRecorder) {
	tr.Reset(s.Cfg.N)
	s.trace = tr
}

// observe records one skew sample at the engine's current time. It
// reuses the simulation's sample buffer and edge observer, so sampling
// allocates nothing.
func (s *Simulation) observe() {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, nd := range s.Nodes {
		l := nd.Logical()
		s.vals[i] = l
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if spread := hi - lo; spread > s.report.MaxGlobalSkew {
		s.report.MaxGlobalSkew = spread
	}
	if s.trace != nil {
		s.trace.Record(s.Engine.Now(), s.vals)
	}
	if s.gradient != nil {
		s.gradient.observe(s.Graph, s.vals)
	}
	// Max over edges is order-independent, so the unordered allocation-free
	// iteration is deterministic in its result.
	s.Graph.RangeCurrentEdges(s.edgeFn)
	s.report.FinalGlobalSkew = hi - lo
	s.report.Samples++
	s.lastSampleT = s.Engine.Now()
}

// Advance runs the execution up to real time t, installing the periodic
// skew sampler on first call. Tests step a live scenario through it; Run
// drives it to the horizon and finalizes the report.
func (s *Simulation) Advance(t float64) {
	if !s.started {
		s.started = true
		var sample func()
		sample = func() {
			s.observe()
			s.Engine.ScheduleAfter(s.Cfg.SampleEvery, "sim.sample", sample)
		}
		s.Engine.Schedule(s.Engine.Now(), "sim.sample", sample)
	}
	s.Engine.Run(t)
}

// Run executes the scenario to its horizon and returns the report.
func (s *Simulation) Run() SkewReport {
	cfg := s.Cfg
	s.Advance(cfg.Horizon)
	// End-of-run state at exactly the horizon, unless the periodic
	// sampler already landed there (Horizon a multiple of SampleEvery).
	if s.report.Samples == 0 || s.lastSampleT < cfg.Horizon {
		s.observe()
	}

	s.report.Bound = cfg.GlobalSkewBound()
	s.report.Transport = s.Net.Stats()
	s.report.EventsExecuted = s.Engine.Executed()
	s.report.EdgeAdds, s.report.EdgeRemoves = s.Graph.Stats()
	if s.gradient != nil {
		s.report.PerDistanceSkew = s.gradient.PerDistance()
	}

	// The totals below are recomputed from node snapshots on every call,
	// so Run is idempotent: calling it after Advance-stepping, or twice,
	// reports each jump/message/beacon exactly once.
	s.report.MinRateSeen, s.report.MaxRateSeen = math.Inf(1), math.Inf(-1)
	s.report.TotalJumps, s.report.TotalMessages = 0, 0
	s.report.TotalBeacons, s.report.TotalDiscoveries = 0, 0
	for i, hw := range s.Clocks {
		mn, mx := hw.RateBoundsSeen()
		if mn < s.report.MinRateSeen {
			s.report.MinRateSeen = mn
		}
		if mx > s.report.MaxRateSeen {
			s.report.MaxRateSeen = mx
		}
		snap := s.Nodes[i].Snap()
		s.report.TotalJumps += snap.Jumps
		s.report.TotalMessages += snap.Messages
		s.report.TotalBeacons += snap.Beacons
		s.report.TotalDiscoveries += snap.Discoveries
	}
	return s.report
}

// Gradient returns the simulation's gradient checker, or nil when
// Config.CheckGradient is off.
func (s *Simulation) Gradient() *GradientChecker { return s.gradient }

// Run wires and executes cfg in one call.
func Run(cfg Config) SkewReport {
	return New(cfg).Run()
}
