// Package sim is the scenario harness: it wires engine, dynamic graph,
// churner, per-node clock drivers, bounded-delay transport, and n GCS
// nodes from a declarative Config, runs the execution to a horizon, and
// reports skew and traffic statistics. Every future scaling or
// lower-bound experiment drives a simulation through this package.
package sim

import (
	"fmt"
	"math"

	"gcs/internal/dyngraph"
	"gcs/internal/fault"
	"gcs/internal/gcs"
)

// FaultSpec is the declarative fault plan carried by Config.Faults; see
// package fault for the injection model and determinism contract.
type FaultSpec = fault.Spec

// TopologyKind selects the initial (backbone) edge set.
type TopologyKind int

const (
	TopoLine TopologyKind = iota
	TopoRing
	TopoStar
	TopoGrid
	TopoComplete
	// TopoTwoChains is the Theorem 4.1 / Figure 1 lower-bound network:
	// two parallel chains sharing their endpoint nodes 0 and n-1 (see
	// dyngraph.NewTwoChains). The LowerBound scenario layers adversarial
	// rate schedules and delay masks over it.
	TopoTwoChains
)

// String returns the kind's scenario-table name.
func (k TopologyKind) String() string {
	switch k {
	case TopoLine:
		return "Line"
	case TopoRing:
		return "Ring"
	case TopoStar:
		return "Star"
	case TopoGrid:
		return "Grid"
	case TopoComplete:
		return "Complete"
	case TopoTwoChains:
		return "TwoChains"
	}
	return fmt.Sprintf("TopologyKind(%d)", int(k))
}

// TopologySpec is a declarative topology choice. W and H apply to
// TopoGrid only and must satisfy W*H == n.
type TopologySpec struct {
	Kind TopologyKind
	W, H int
}

// Edges materializes the topology over n nodes.
func (s TopologySpec) Edges(n int) []dyngraph.Edge {
	switch s.Kind {
	case TopoLine:
		return dyngraph.Line(n)
	case TopoRing:
		return dyngraph.Ring(n)
	case TopoStar:
		return dyngraph.Star(n)
	case TopoGrid:
		if s.W*s.H != n {
			panic(fmt.Sprintf("sim: grid %dx%d does not cover %d nodes", s.W, s.H, n))
		}
		return dyngraph.Grid(s.W, s.H)
	case TopoComplete:
		return dyngraph.Complete(n)
	case TopoTwoChains:
		return dyngraph.NewTwoChains(n).Edges
	}
	panic(fmt.Sprintf("sim: unknown topology kind %d", s.Kind))
}

// diameter returns the topology's hop diameter (-1 if disconnected).
// The generator topologies have closed forms, so the analytic bound of
// a 100k-node scenario does not pay an all-source BFS (O(n²) at ring
// sizes where the simulation itself is O(n)); TopoTwoChains falls back
// to the generic sweep. TestTopologyDiameterClosedForm pins the closed
// forms against dyngraph.Diameter.
func (s TopologySpec) diameter(n int) int {
	switch s.Kind {
	case TopoLine:
		return n - 1
	case TopoRing:
		return n / 2
	case TopoStar:
		if n <= 2 {
			return n - 1
		}
		return 2
	case TopoGrid:
		if s.W*s.H != n {
			panic(fmt.Sprintf("sim: grid %dx%d does not cover %d nodes", s.W, s.H, n))
		}
		return (s.W - 1) + (s.H - 1)
	case TopoComplete:
		if n <= 1 {
			return 0
		}
		return 1
	}
	return dyngraph.Diameter(n, s.Edges(n))
}

// DriverKind selects the hardware-clock rate process.
type DriverKind int

const (
	DriveConstant DriverKind = iota
	DriveRandomWalk
	DriveBangBang
)

// String returns the kind's scenario-table name.
func (k DriverKind) String() string {
	switch k {
	case DriveConstant:
		return "Constant"
	case DriveRandomWalk:
		return "RandomWalk"
	case DriveBangBang:
		return "BangBang"
	}
	return fmt.Sprintf("DriverKind(%d)", int(k))
}

// DriverSpec is a declarative per-node clock driver choice. The same
// spec instantiates one driver per node (run.go's reusable driverState,
// which reproduces the clock package's driver semantics with reseedable
// per-node streams): RandomWalk forks an independent stream per node,
// BangBang anti-phases odd and even nodes (the worst benign pattern for
// adjacent skew).
type DriverSpec struct {
	Kind DriverKind
	// Interval is the rate-change period (RandomWalk, BangBang).
	Interval float64
}

// ChurnKind selects the topology-change process.
type ChurnKind int

const (
	// ChurnNone keeps the initial topology static.
	ChurnNone ChurnKind = iota
	// ChurnVolatile keeps the topology as a static backbone and churns
	// ExtraEdges additional random candidate edges around it.
	ChurnVolatile
	// ChurnRotatingStar ignores the topology spec and cycles complete
	// stars with rotating hubs (the maximally dynamic pattern); the
	// execution is Period-interval connected.
	ChurnRotatingStar
)

// String returns the kind's scenario-table name.
func (k ChurnKind) String() string {
	switch k {
	case ChurnNone:
		return "None"
	case ChurnVolatile:
		return "Volatile"
	case ChurnRotatingStar:
		return "RotatingStar"
	}
	return fmt.Sprintf("ChurnKind(%d)", int(k))
}

// ChurnSpec is a declarative churn choice.
type ChurnSpec struct {
	Kind ChurnKind
	// Period and Overlap drive ChurnRotatingStar.
	Period, Overlap float64
	// Lifetime, Absence, and ExtraEdges drive ChurnVolatile.
	Lifetime, Absence float64
	ExtraEdges        int
}

// T returns the interval-connectivity parameter contributed by the churn
// process: the longest wait before a propagation path is guaranteed.
func (s ChurnSpec) T() float64 {
	if s.Kind == ChurnRotatingStar {
		return s.Period
	}
	return 0
}

// Config declares one complete scenario. The zero value of every field
// except N is usable; WithDefaults fills the rest.
type Config struct {
	N       int
	Seed    uint64
	Horizon float64
	// Rho bounds hardware clock drift; MaxDelay bounds message delay.
	Rho      float64
	MaxDelay float64

	Topology TopologySpec
	Driver   DriverSpec
	Churn    ChurnSpec
	// Node carries the algorithm parameters; Rho and MaxDelay are
	// overridden from the Config so the scenario stays consistent.
	Node gcs.Params

	// SampleEvery is the real-time period of skew sampling.
	SampleEvery float64

	// CheckGradient attaches a GradientChecker to the simulation: every
	// skew sample additionally buckets |L_u - L_v| over node pairs by
	// their current hop distance, for comparison against GradientBound.
	// Off by default — the exact check reads n^2 pairs per sample.
	CheckGradient bool

	// GradientRadius, when positive, caps the gradient check at pairs
	// within that many hops: distances come from a radius-capped
	// BoundedDistances (O(n·k) memory for ball size k) instead of the
	// all-pairs matrix, and only buckets 1..GradientRadius are
	// verified. The gradient property is per-distance, so the truncated
	// check is exact for the buckets it covers. 0 keeps the exact
	// all-distance check.
	GradientRadius int

	// GradientSources, when positive, checks only that many evenly
	// spaced source nodes per sample instead of all n — a deterministic
	// function of (N, GradientSources), so reports stay pure functions
	// of the Config. 0 checks every node.
	GradientSources int

	// Parallel runs the scenario on the sharded conservative-parallel
	// engine (des.ParallelEngine) instead of the serial kernel. Parallel
	// mode is its own physics: message delays are drawn from per-node
	// streams (so results do not depend on global event interleavings)
	// and lie in (MinDelay, MaxDelay] instead of (0, MaxDelay] — the
	// positive floor is the engine's lookahead. Reports are deterministic
	// functions of the Config; the worker count is an execution detail
	// and never changes a report, which the parallel determinism suite
	// pins.
	Parallel bool

	// Shards is the number of node shards in parallel mode (0 = 8,
	// clamped to N). The shard count decides which messages take the
	// cross-shard path and is therefore part of the simulated physics:
	// changing it changes the report, unlike Workers.
	Shards int

	// Workers is the goroutine count parallel mode executes shard
	// windows with (0 = GOMAXPROCS). Pure execution detail: every worker
	// count produces the bit-identical report, with 1 the serial
	// reference.
	Workers int

	// MinDelay is the positive message-delay floor, the parallel
	// engine's lookahead. 0 defaults to MaxDelay/4 in parallel mode and
	// keeps the legacy (0, MaxDelay] law in serial mode (a zero floor
	// draws the bit-identical delay sequence).
	MinDelay float64

	// Faults is the declarative fault-injection plan: probabilistic
	// message loss/duplication, delay spikes beyond MaxDelay, node
	// crash-stop/crash-recover schedules, and hardware-rate excursions
	// outside [1-rho, 1+rho]. Faults are physics, like Shards and
	// MinDelay: every draw comes from per-node streams, so faulted
	// reports are bit-identical across reruns and worker counts, and the
	// zero value leaves the execution untouched draw for draw. Plans
	// with message faults force NoCoalesce (a verdict is per send).
	Faults FaultSpec

	// NoCoalesce disables transport beacon coalescing (on by default):
	// with coalescing, values sent over the same directed edge within one
	// engine event share a single pooled multi-value delivery, capping
	// delivery cost at one event per directed edge per tick. The current
	// algorithm sends at most one value per directed edge per tick, so
	// every batch is a singleton and the coalesced execution is
	// bit-identical to the uncoalesced one (pinned by the equivalence
	// tests); the cap protects future multi-send-per-tick workloads.
	NoCoalesce bool
}

// WithDefaults returns the config with unset fields filled in. It is
// total — malformed configurations are reported by Validate (the
// harness-boundary error path), not by panics here.
func (c Config) WithDefaults() Config {
	if c.Horizon == 0 {
		c.Horizon = 10
	}
	if c.Rho == 0 {
		c.Rho = 0.01
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 0.01
	}
	if c.Driver.Interval == 0 {
		c.Driver.Interval = 1
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 0.1
	}
	if c.Parallel {
		if c.Shards == 0 {
			c.Shards = 8
		}
		if c.Shards > c.N {
			c.Shards = c.N
		}
		if c.MinDelay == 0 {
			c.MinDelay = c.MaxDelay / 4
		}
	}
	c.Node.Rho = c.Rho
	c.Node.MaxDelay = c.MaxDelay
	c.Node = c.Node.WithDefaults()
	c.Faults = c.Faults.WithDefaults(c.Horizon)
	if c.Faults.MessageFaults() {
		// A fault verdict is drawn per send; coalescing would fold many
		// values under one verdict. Only message-faulted plans pay this —
		// crash/rate-only plans (and the zero Spec) keep coalescing, so
		// they stay bit-identical to their unfaulted execution elsewhere.
		c.NoCoalesce = true
	}
	return c
}

// Validate checks the configuration at the harness boundary, returning
// a descriptive error instead of panicking, so a long-running service
// can reject a bad job and keep sweeping. Run and RunSweep call it
// before wiring; New/NewParallel still panic on invalid configs (a
// pre-validated programmer-error path, like the remaining internal
// invariants: DES time regression, lookahead breach).
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("sim: Config.N must be positive (got %d)", c.N)
	}
	if c.Horizon < 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("sim: Config.Horizon %v must be finite and nonnegative", c.Horizon)
	}
	if c.Rho < 0 || c.Rho >= 1 || math.IsNaN(c.Rho) {
		return fmt.Errorf("sim: Config.Rho %v outside [0, 1)", c.Rho)
	}
	if c.MaxDelay < 0 || math.IsNaN(c.MaxDelay) {
		return fmt.Errorf("sim: Config.MaxDelay %v must be nonnegative", c.MaxDelay)
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("sim: Config.SampleEvery %v must be nonnegative", c.SampleEvery)
	}
	d := c.WithDefaults()
	// The rotating star ignores the backbone topology entirely, so a
	// backbone spec under it is never materialized and its size floors
	// don't apply.
	backbone := d.Churn.Kind != ChurnRotatingStar
	switch c.Topology.Kind {
	case TopoLine, TopoStar, TopoComplete:
	case TopoRing:
		if backbone && c.N < 3 {
			return fmt.Errorf("sim: ring topology needs n >= 3 (got %d)", c.N)
		}
	case TopoTwoChains:
		if backbone && c.N < 4 {
			return fmt.Errorf("sim: two-chains topology needs n >= 4 (got %d)", c.N)
		}
	case TopoGrid:
		if backbone && c.Topology.W*c.Topology.H != c.N {
			return fmt.Errorf("sim: grid %dx%d does not cover %d nodes", c.Topology.W, c.Topology.H, c.N)
		}
	default:
		return fmt.Errorf("sim: unknown topology kind %d", int(c.Topology.Kind))
	}
	switch d.Driver.Kind {
	case DriveConstant:
	case DriveRandomWalk, DriveBangBang:
		if d.Driver.Interval <= 0 {
			return fmt.Errorf("sim: %v driver interval %v must be positive", d.Driver.Kind, d.Driver.Interval)
		}
	default:
		return fmt.Errorf("sim: unknown driver kind %d", int(d.Driver.Kind))
	}
	switch d.Churn.Kind {
	case ChurnNone:
	case ChurnVolatile:
		if d.Churn.Lifetime <= 0 || d.Churn.Absence <= 0 {
			return fmt.Errorf("sim: volatile churn durations (Lifetime %v, Absence %v) must be positive",
				d.Churn.Lifetime, d.Churn.Absence)
		}
		if d.Churn.ExtraEdges < 0 {
			return fmt.Errorf("sim: volatile churn ExtraEdges %d must be nonnegative", d.Churn.ExtraEdges)
		}
	case ChurnRotatingStar:
		if !(d.Churn.Overlap > 0 && d.Churn.Overlap < d.Churn.Period) {
			return fmt.Errorf("sim: rotating star needs 0 < Overlap < Period (got Overlap %v, Period %v)",
				d.Churn.Overlap, d.Churn.Period)
		}
	default:
		return fmt.Errorf("sim: unknown churn kind %d", int(d.Churn.Kind))
	}
	if c.Shards < 0 || (c.Parallel && d.Shards < 1) {
		return fmt.Errorf("sim: Config.Shards must be positive (got %d)", c.Shards)
	}
	if d.MinDelay < 0 || d.MinDelay >= d.MaxDelay {
		return fmt.Errorf("sim: Config.MinDelay %v must lie in [0, MaxDelay %v)", d.MinDelay, d.MaxDelay)
	}
	if err := d.Node.Validate(); err != nil {
		return err
	}
	return d.Faults.Validate(d.Horizon)
}

// GlobalSkewBound returns the analytic worst-case global skew for the
// scenario. The max-propagation argument: a value held anywhere reaches
// any node after at most one beacon interval plus one message delay per
// hop (a "hop window"), and the network maximum grows at real rate at
// most 1+rho, so the skew is bounded by (1+rho) times the total
// propagation time. For static and backbone scenarios the hop count is
// the backbone diameter; for the rotating star it is 2 (leaf -> hub ->
// leaf) plus up to two star periods of slack for beacons lost to star
// teardowns mid-flight. A positive JumpThreshold adds its value per hop.
func (c Config) GlobalSkewBound() float64 {
	c = c.WithDefaults()
	beaconReal := c.Node.BeaconEvery / (1 - c.Rho)
	hop := beaconReal + c.MaxDelay + c.Node.JumpThreshold
	var hops float64
	slack := 2 * c.Churn.T()
	if c.Churn.Kind == ChurnRotatingStar {
		hops = 2
	} else {
		d := c.Topology.diameter(c.N)
		if d < 0 {
			panic("sim: disconnected backbone topology")
		}
		hops = float64(d)
	}
	return (1 + c.Rho) * (hops*hop + slack)
}

// GradientBound returns the analytic per-distance local skew bound — the
// harness's form of the paper's Section 5 gradient property: the skew
// between nodes currently d hops apart is linear in d, not in the
// diameter. It is the per-edge stable skew times d plus the same churn
// slack as GlobalSkewBound. The per-edge term is the cheaper of the two
// catch-up regimes:
//
//   - jump regime: a lagging node jumps once its max estimate exceeds
//     L by JumpThreshold, and the estimate one hop closer to the front
//     is stale by at most one beacon interval plus one delay, so an
//     edge's skew stays within JumpThreshold plus one hop window of
//     clock growth;
//   - fast-rate regime (requires a convergent boost,
//     (1+Mu)(1-Rho) > 1+Rho): a gap above Kappa is detected within one
//     hop window — during which the leader gains at most (1+Mu)(1+Rho)
//     per unit real time — and then shrinks, so an edge's skew stays
//     within Kappa plus one fast-rate hop window.
//
// Distances beyond the current topology get the same linear
// extrapolation; d <= 0 returns 0. A configuration with jumps disabled
// (JumpThreshold = +Inf) and the fast rate disabled or non-convergent
// has no gradient property: the bound is +Inf.
func (c Config) GradientBound(d int) float64 {
	if d <= 0 {
		return 0
	}
	c = c.WithDefaults()
	hop := c.Node.BeaconEvery/(1-c.Rho) + c.MaxDelay
	perEdge := math.Inf(1)
	if !math.IsInf(c.Node.JumpThreshold, 1) {
		perEdge = c.Node.JumpThreshold + (1+c.Rho)*hop
	}
	if mu := c.Node.EffectiveMu(); (1+mu)*(1-c.Rho) > 1+c.Rho {
		if fast := c.Node.Kappa + (1+mu)*(1+c.Rho)*hop; fast < perEdge {
			perEdge = fast
		}
	}
	return float64(d)*perEdge + (1+c.Rho)*2*c.Churn.T()
}
