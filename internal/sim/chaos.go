package sim

// The chaos grid is the robustness counterpart of the scenario sweep: a
// fault-plan × topology × churn cross where every cell must inject at
// least one disturbance and re-converge — finite ReconvergenceTime —
// before the horizon. `gcsim chaos` runs it and the CI gate fails on
// any cell that does not re-enter the analytic bound.

// ChaosPlan names one fault plan of the chaos grid.
type ChaosPlan struct {
	Name string
	Spec FaultSpec
}

// ChaosPlans returns the canonical fault plans: each fault kind alone
// at an aggressive rate (so the gate attributes a failure to one
// mechanism), crash-stop separately from crash-recover, and a combined
// plan layering all four kinds at once.
func ChaosPlans() []ChaosPlan {
	return []ChaosPlan{
		{Name: "drop", Spec: FaultSpec{Drop: 0.25}},
		{Name: "dup", Spec: FaultSpec{Dup: 0.25}},
		{Name: "spike", Spec: FaultSpec{DelaySpike: 0.25, SpikeFactor: 4}},
		{Name: "crash", Spec: FaultSpec{CrashEvery: 4, CrashDowntime: 0.5}},
		{Name: "crashstop", Spec: FaultSpec{CrashEvery: 30, CrashStop: true}},
		{Name: "rates", Spec: FaultSpec{RateExcursionEvery: 2, RateExcursionFactor: 4, RateExcursionFor: 0.5}},
		{Name: "all", Spec: FaultSpec{
			Drop: 0.1, Dup: 0.05, DelaySpike: 0.1, SpikeFactor: 3,
			CrashEvery: 8, CrashDowntime: 0.5,
			RateExcursionEvery: 4, RateExcursionFactor: 3, RateExcursionFor: 0.5,
		}},
	}
}

// ChaosGrid crosses every chaos plan with a static ring, a static grid,
// and the rotating-star churn (the maximally dynamic pattern). Each
// cell's seed derives from the base seed and grid index (CellSeed), so
// the grid is a pure function of (n, seed, horizon, parallel).
func ChaosGrid(n int, seed uint64, horizon float64, parallel bool) []SweepCell {
	gw := squareGridW(n)
	combos := []struct {
		label string
		topo  TopologySpec
		churn ChurnSpec
	}{
		{"ring", TopologySpec{Kind: TopoRing}, ChurnSpec{}},
		{"grid", TopologySpec{Kind: TopoGrid, W: gw, H: n / gw}, ChurnSpec{}},
		{"star", TopologySpec{}, ChurnSpec{Kind: ChurnRotatingStar, Period: 1, Overlap: 0.25}},
	}
	var cells []SweepCell
	for _, p := range ChaosPlans() {
		for _, c := range combos {
			cfg := Config{
				N:        n,
				Horizon:  horizon,
				Rho:      0.01,
				MaxDelay: 0.01,
				Topology: c.topo,
				Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
				Churn:    c.churn,
				Faults:   p.Spec,
				Parallel: parallel,
				// The chaos sweep parallelizes across cells, so each parallel
				// cell runs its windows on one worker; the report is
				// worker-invariant either way.
				Workers: 1,
			}
			cfg.Seed = CellSeed(seed, len(cells))
			cells = append(cells, SweepCell{Name: p.Name + "/" + c.label, Cfg: cfg})
		}
	}
	return cells
}

// squareGridW returns the largest divisor of n that is at most sqrt(n),
// so W x (n/W) is the most square grid covering exactly n nodes.
func squareGridW(n int) int {
	w := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w
}
