package sim

import (
	"fmt"
	"testing"

	"gcs/internal/simtest"
)

// arenaConfigs covers every stochastic subsystem the rewiring path must
// reseed: random-walk drivers, volatile churn, the rotating star's
// discovery bursts, and plain static rings.
func arenaConfigs() []Config {
	return []Config{
		{
			N: 24, Seed: 5, Horizon: 10, Rho: 0.01, MaxDelay: 0.01,
			Topology: TopologySpec{Kind: TopoRing},
			Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		},
		{
			N: 16, Seed: 9, Horizon: 12, Rho: 0.02, MaxDelay: 0.02,
			Driver: DriverSpec{Kind: DriveRandomWalk, Interval: 1},
			Churn:  ChurnSpec{Kind: ChurnRotatingStar, Period: 2, Overlap: 0.5},
		},
		churnyConfig(77),
		{
			N: 12, Seed: 3, Horizon: 8,
			Topology:      TopologySpec{Kind: TopoGrid, W: 4, H: 3},
			Driver:        DriverSpec{Kind: DriveBangBang, Interval: 0.7},
			CheckGradient: true,
		},
	}
}

// TestArenaReuseMatchesFreshRun is the arena's correctness anchor: a
// run on a reused (and reshaped) simulation must be bit-identical to a
// freshly wired run of the same config, for every scenario family and
// in any interleaving order.
func TestArenaReuseMatchesFreshRun(t *testing.T) {
	cfgs := arenaConfigs()
	a := NewArena()
	// Forward pass warms the arena across shapes; the second pass rests
	// entirely on reuse (every shape was seen before).
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range cfgs {
			got := a.Run(cfg)
			want := mustRun(t, cfg)
			simtest.AssertSameReport(t, fmt.Sprintf("pass %d config %d: arena vs fresh", pass, i), got, want)
			if got.EventsExecuted == 0 || got.Transport.Delivered == 0 {
				t.Fatalf("pass %d config %d: degenerate execution: %+v", pass, i, got)
			}
		}
	}
}

// TestArenaSeedChangeOnReuse pins that rewiring actually reseeds the
// PRNG streams: the same shape under a different seed must diverge.
func TestArenaSeedChangeOnReuse(t *testing.T) {
	cfg := arenaConfigs()[0]
	a := NewArena()
	first := a.Run(cfg)
	cfg.Seed++
	second := a.Run(cfg)
	simtest.AssertReportsDiffer(t, "reused arena, seed change", first, second)
}

// TestArenaGrowAndShrink reuses one arena across node counts in both
// directions; every run must still match a fresh wiring.
func TestArenaGrowAndShrink(t *testing.T) {
	a := NewArena()
	for _, n := range []int{8, 64, 16, 128, 32} {
		cfg := Config{
			N: n, Seed: uint64(n), Horizon: 6, Rho: 0.01, MaxDelay: 0.01,
			Topology: TopologySpec{Kind: TopoRing},
			Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		}
		got := a.Run(cfg)
		want := mustRun(t, cfg)
		simtest.AssertSameReport(t, fmt.Sprintf("n=%d: arena vs fresh", n), got, want)
	}
}

// TestArenaSecondRunZeroAlloc is the tentpole acceptance pin: re-running
// a same-shape config on a reused arena — engine reset, graph reset,
// transport reset, node resets, driver reseeds, the full execution, and
// the report — performs zero allocations. The config exercises the
// random-walk driver so the reseedable per-node driver streams are on
// the measured path.
func TestArenaSecondRunZeroAlloc(t *testing.T) {
	cfg := Config{
		N: 64, Seed: 11, Horizon: 5, Rho: 0.01, MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
	}
	a := NewArena()
	a.Run(cfg) // first run pays the wiring
	// AllocsPerRun's warm-up call absorbs free-list capacity growth from
	// releasing the first run's still-pending events; every measured
	// cycle is a steady-state reuse.
	allocs := testing.AllocsPerRun(3, func() {
		a.Run(cfg)
	})
	if allocs > 0 {
		t.Errorf("re-run on a reused arena allocated %v objects/op, want 0", allocs)
	}
}

// TestArenaTraceReuse pins that a TraceRecorder attached per run on a
// reused arena records the same series as on a fresh simulation.
func TestArenaTraceReuse(t *testing.T) {
	cfg := arenaConfigs()[0]
	a := NewArena()
	a.Run(cfg) // warm
	tr := NewTraceRecorder(1, 256)
	s := a.Sim(cfg)
	s.AttachTrace(tr)
	got := s.Run()

	want := New(cfg)
	trWant := NewTraceRecorder(cfg.N, 256)
	want.AttachTrace(trWant)
	want.Run()

	if tr.Len() == 0 || tr.Len() != trWant.Len() {
		t.Fatalf("trace lengths diverged: arena %d, fresh %d", tr.Len(), trWant.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		ta, va := tr.Sample(i)
		tb, vb := trWant.Sample(i)
		if ta != tb {
			t.Fatalf("trace sample %d at time %v, fresh at %v", i, ta, tb)
		}
		simtest.AssertSameReport(t, fmt.Sprintf("trace sample %d", i), va, vb)
	}
	if got.Samples != tr.Len() {
		t.Fatalf("report counted %d samples, trace holds %d", got.Samples, tr.Len())
	}
}
