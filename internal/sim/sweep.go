package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// A SweepCell is one scenario of a sweep grid: a display name plus the
// full config to run. Every cell is independent — the config (including
// its Seed) completely determines the execution — which is what makes
// the parallel runner trivially bit-identical to serial order.
type SweepCell struct {
	Name string
	Cfg  Config
}

// SweepResult pairs a cell with its finished report. Cfg is the
// defaulted config the run actually used, so consumers can evaluate
// analytic bounds (GradientBound, GlobalSkewBound) without re-deriving
// defaults.
type SweepResult struct {
	Name   string
	Cfg    Config
	Report SkewReport
}

// CellSeed derives a per-cell seed from a base seed and the cell's grid
// index, so sweep grids get decorrelated streams without the caller
// hand-picking seeds. The mix is SplitMix64's increment, the same
// constant des.Rand forks with.
func CellSeed(base uint64, index int) uint64 {
	return base + 0x9e3779b97f4a7c15*uint64(index+1)
}

// forEachCell fans indices 0..n-1 across workers goroutines (<= 0
// means GOMAXPROCS), each owning a private Arena reused from cell to
// cell, and blocks until all cells ran. run must write only
// index-disjoint state. This is the one worker-pool implementation
// behind RunSweep and LowerBoundSweepParallel.
func forEachCell(n, workers int, run func(i int, a *Arena)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := NewArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i, a)
			}
		}()
	}
	wg.Wait()
}

// RunSweep executes every cell and returns one result per cell, in cell
// order. Cells are fanned across workers goroutines (<= 0 means
// GOMAXPROCS), each owning a private Arena, so per-run wiring is reused
// within a worker and nothing is shared between workers. Because each
// cell's execution depends only on its config, the output is
// bit-identical for every worker count — including workers == 1, the
// serial order — which TestSweepParallelBitIdentical pins.
//
// Every cell is validated up front: one malformed config rejects the
// whole sweep with a descriptive error before any cell runs, so a
// sweep service never dies mid-grid on a panic.
func RunSweep(cells []SweepCell, workers int) ([]SweepResult, error) {
	for i := range cells {
		if err := cells[i].Cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep cell %d (%s): %w", i, cells[i].Name, err)
		}
	}
	out := make([]SweepResult, len(cells))
	forEachCell(len(cells), workers, func(i int, a *Arena) {
		out[i] = SweepResult{
			Name:   cells[i].Name,
			Cfg:    cells[i].Cfg.WithDefaults(),
			Report: a.Run(cells[i].Cfg),
		}
	})
	return out, nil
}
