package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// A SweepCell is one scenario of a sweep grid: a display name plus the
// full config to run. Every cell is independent — the config (including
// its Seed) completely determines the execution — which is what makes
// the parallel runner trivially bit-identical to serial order.
type SweepCell struct {
	Name string
	Cfg  Config
}

// SweepResult pairs a cell with its finished report. Cfg is the
// defaulted config the run actually used, so consumers can evaluate
// analytic bounds (GradientBound, GlobalSkewBound) without re-deriving
// defaults. Err, when non-nil, is the cell's validation error: the cell
// did not run (Cfg and Report are zero-valued) but its siblings did —
// one malformed cell never discards the rest of the sweep.
type SweepResult struct {
	Name   string
	Cfg    Config
	Report SkewReport
	Err    error
}

// CellSeed derives a per-cell seed from a base seed and the cell's grid
// index, so sweep grids get decorrelated streams without the caller
// hand-picking seeds. The mix is SplitMix64's increment, the same
// constant des.Rand forks with.
func CellSeed(base uint64, index int) uint64 {
	return base + 0x9e3779b97f4a7c15*uint64(index+1)
}

// forEachCell fans indices 0..n-1 across workers goroutines (<= 0
// means GOMAXPROCS), each owning a private Arena reused from cell to
// cell, and blocks until all cells ran. run must write only
// index-disjoint state. This is the one worker-pool implementation
// behind RunSweep and LowerBoundSweepParallel.
func forEachCell(n, workers int, run func(i int, a *Arena)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := NewArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i, a)
			}
		}()
	}
	wg.Wait()
}

// RunSweep executes every cell and returns one result per cell, in cell
// order. Cells are fanned across workers goroutines (<= 0 means
// GOMAXPROCS), each owning a private Arena, so per-run wiring is reused
// within a worker and nothing is shared between workers. Because each
// cell's execution depends only on its config, the output is
// bit-identical for every worker count — including workers == 1, the
// serial order — which TestSweepParallelBitIdentical pins.
//
// Every cell is validated up front, but a malformed config fails only
// its own cell: the result carries the cell's error while every valid
// sibling still runs and reports. The returned error joins the per-cell
// errors (nil when every cell ran), so callers that treat any failure
// as fatal keep a single check while sweep services read the per-cell
// slice.
func RunSweep(cells []SweepCell, workers int) ([]SweepResult, error) {
	out := RunSweepWith(cells, workers, nil)
	var errs []error
	for i := range out {
		if out[i].Err != nil {
			errs = append(errs, out[i].Err)
		}
	}
	return out, errors.Join(errs...)
}

// RunSweepWith is RunSweep's progress-callback form: onCell, when
// non-nil, is invoked once per cell as it completes — malformed cells
// first (with Err set, before any execution starts), then finished
// cells in whatever order the workers complete them. onCell is called
// from worker goroutines and must be safe for concurrent use; the
// returned slice is always in cell order regardless.
func RunSweepWith(cells []SweepCell, workers int, onCell func(i int, r SweepResult)) []SweepResult {
	out := make([]SweepResult, len(cells))
	valid := make([]int, 0, len(cells))
	for i := range cells {
		out[i].Name = cells[i].Name
		if err := cells[i].Cfg.Validate(); err != nil {
			out[i].Err = fmt.Errorf("sweep cell %d (%s): %w", i, cells[i].Name, err)
			if onCell != nil {
				onCell(i, out[i])
			}
			continue
		}
		valid = append(valid, i)
	}
	forEachCell(len(valid), workers, func(j int, a *Arena) {
		i := valid[j]
		out[i] = SweepResult{
			Name:   cells[i].Name,
			Cfg:    cells[i].Cfg.WithDefaults(),
			Report: a.Run(cells[i].Cfg),
		}
		if onCell != nil {
			onCell(i, out[i])
		}
	})
	return out
}
