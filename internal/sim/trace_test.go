package sim

import "testing"

func TestTraceRecorderChronologicalOrder(t *testing.T) {
	tr := NewTraceRecorder(2, 4)
	for i := 0; i < 3; i++ {
		tr.Record(float64(i), []float64{float64(i), float64(i) + 10})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	for i := 0; i < 3; i++ {
		tm, vals := tr.Sample(i)
		if tm != float64(i) || vals[0] != float64(i) || vals[1] != float64(i)+10 {
			t.Fatalf("sample %d = (%v, %v)", i, tm, vals)
		}
	}
}

func TestTraceRecorderRingOverwritesOldest(t *testing.T) {
	tr := NewTraceRecorder(1, 3)
	for i := 0; i < 5; i++ {
		tr.Record(float64(i), []float64{float64(100 + i)})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", tr.Len())
	}
	// Samples 0..1 were overwritten; the window is 2, 3, 4.
	for i := 0; i < 3; i++ {
		tm, vals := tr.Sample(i)
		if tm != float64(2+i) || vals[0] != float64(102+i) {
			t.Fatalf("sample %d = (%v, %v), want (%d, [%d])", i, tm, vals, 2+i, 102+i)
		}
	}
}

func TestTraceRecorderSkew(t *testing.T) {
	tr := NewTraceRecorder(3, 2)
	tr.Record(1.5, []float64{5, 2, 9})
	tm, min, max := tr.Skew(0)
	if tm != 1.5 || min != 2 || max != 9 {
		t.Fatalf("skew sample = (%v, %v, %v), want (1.5, 2, 9)", tm, min, max)
	}
}

func TestTraceRecorderResetReusesBuffers(t *testing.T) {
	tr := NewTraceRecorder(8, 16)
	for i := 0; i < 20; i++ {
		tr.Record(float64(i), make([]float64, 8))
	}
	// Shrinking the node count must not allocate.
	allocs := testing.AllocsPerRun(10, func() {
		tr.Reset(4)
	})
	if allocs > 0 {
		t.Errorf("Reset to smaller node count allocated %v objects", allocs)
	}
	if tr.Len() != 0 || tr.Nodes() != 4 {
		t.Fatalf("reset state: len=%d nodes=%d", tr.Len(), tr.Nodes())
	}
	// Growing requires one reallocation, after which recording is free.
	tr.Reset(32)
	row := make([]float64, 32)
	allocs = testing.AllocsPerRun(100, func() {
		tr.Record(1, row)
	})
	if allocs > 0 {
		t.Errorf("Record allocated %v objects/op, want 0", allocs)
	}
}

func TestTraceRecorderRejectsWrongRowWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("recording a wrong-width row did not panic")
		}
	}()
	NewTraceRecorder(2, 2).Record(0, []float64{1})
}

// TestSimulationTraceMatchesReport cross-checks the wiring: the skew
// derived from the recorded trace must reproduce the report's
// MaxGlobalSkew when the ring is large enough to hold every sample.
func TestSimulationTraceMatchesReport(t *testing.T) {
	cfg := Config{
		N:        8,
		Seed:     3,
		Horizon:  5,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveBangBang, Interval: 0.5},
	}
	s := New(cfg)
	tr := NewTraceRecorder(1, 256) // wrong shape on purpose; AttachTrace resets
	s.AttachTrace(tr)
	rpt := s.Run()
	if tr.Nodes() != 8 {
		t.Fatalf("AttachTrace did not reshape the recorder: nodes=%d", tr.Nodes())
	}
	if tr.Len() != rpt.Samples {
		t.Fatalf("trace holds %d samples, report counted %d", tr.Len(), rpt.Samples)
	}
	maxSkew := 0.0
	for i := 0; i < tr.Len(); i++ {
		_, min, max := tr.Skew(i)
		if max-min > maxSkew {
			maxSkew = max - min
		}
	}
	if maxSkew != rpt.MaxGlobalSkew {
		t.Fatalf("trace max skew %v != report %v", maxSkew, rpt.MaxGlobalSkew)
	}
}
