package sim

import (
	"math"

	"gcs/internal/dyngraph"
)

// GradientChecker verifies the paper's Section 5 gradient property over
// a live execution: at every skew sample it buckets |L_u - L_v| over
// node pairs by their current hop distance and tracks the running
// maximum per bucket, so the result is the observed local skew as a
// function of distance — checked per sample across the whole run, not
// just at the single worst edge.
//
// The checker has two cost axes, both set from the Config:
//
//   - radius (Config.GradientRadius): 0 checks all pairs at exact
//     distances from a lazily revalidated DistanceMatrix (O(n²) memory,
//     n² pair reads per sample); r > 0 checks only pairs within r hops
//     from a radius-capped BoundedDistances (O(n·k) memory for ball
//     size k, n·k pair reads per sample). The gradient property is a
//     per-distance bound, so truncating at r verifies exactly the
//     buckets 1..r and simply leaves the rest empty.
//   - sources (Config.GradientSources): 0 checks every node as a pair
//     source; s > 0 checks only s evenly spaced source nodes — a
//     deterministic function of (n, s), so reports stay pure functions
//     of the Config.
//
// Either structure is revalidated lazily (one BFS sweep per
// topology-change epoch), and the per-sample path allocates nothing in
// steady state.
type GradientChecker struct {
	// Exactly one of dm/bd is non-nil: dm for exact all-distance
	// checking, bd for radius-capped checking.
	dm *dyngraph.DistanceMatrix
	bd *dyngraph.BoundedDistances
	// srcs lists the source nodes checked per sample; nil means all.
	srcs []int32
	n    int
	// maxByDist[d] is the largest |L_u - L_v| seen over any pair at
	// current distance d; index 0 is unused (a pair at distance 0 is the
	// same node).
	maxByDist []float64
	// maxDist is the largest bucket with data so far.
	maxDist int
	samples int
	// recomputeBase offsets the distance structure's cumulative BFS
	// count so Recomputes stays per-run when the checker is reused
	// across runs.
	recomputeBase int
}

// newGradientChecker sizes a checker for n nodes. radius 0 means exact
// all-distance checking; sources 0 means every node is a pair source.
func newGradientChecker(n, radius, sources int) *GradientChecker {
	gc := &GradientChecker{
		n:         n,
		maxByDist: make([]float64, n),
	}
	if radius > 0 {
		gc.bd = dyngraph.NewBoundedDistances(n, radius)
	} else {
		gc.dm = dyngraph.NewDistanceMatrix(n)
	}
	if sources > 0 && sources < n {
		gc.srcs = make([]int32, sources)
		for i := range gc.srcs {
			// Evenly spaced: deterministic in (n, sources) alone.
			gc.srcs[i] = int32(i * n / sources)
		}
	}
	return gc
}

// nodes returns the node count the checker was sized for.
func (gc *GradientChecker) nodes() int { return gc.n }

// shape reports the (radius, sources) pair the checker was built for,
// so wire() can decide whether a cached checker still fits the config.
func (gc *GradientChecker) shape() (radius, sources int) {
	if gc.bd != nil {
		radius = gc.bd.Radius()
	}
	return radius, len(gc.srcs)
}

// reset clears the buckets for a new run over the same shape, keeping
// the distance structure's storage warm (the graph's epoch only grows
// across arena resets, so stale cached distances revalidate on the
// first observe).
func (gc *GradientChecker) reset() {
	for i := range gc.maxByDist {
		gc.maxByDist[i] = 0
	}
	gc.maxDist = 0
	gc.samples = 0
	gc.recomputeBase = gc.structRecomputes()
}

func (gc *GradientChecker) structRecomputes() int {
	if gc.bd != nil {
		return gc.bd.Recomputes()
	}
	return gc.dm.Recomputes()
}

// bucket folds one pair observation at distance d.
//
//gcslint:zeroalloc
func (gc *GradientChecker) bucket(d int, diff float64) {
	if diff > gc.maxByDist[d] {
		gc.maxByDist[d] = diff
		if d > gc.maxDist {
			gc.maxDist = d
		}
	}
}

// observe folds one sample into the buckets: vals[i] is node i's logical
// clock at the sample instant, g supplies the current topology.
//
//gcslint:zeroalloc
func (gc *GradientChecker) observe(g *dyngraph.Dynamic, vals []float64) {
	gc.samples++
	if gc.bd != nil {
		gc.bd.Update(g)
		if gc.srcs != nil {
			for _, u := range gc.srcs {
				gc.observeBall(int(u), vals)
			}
		} else {
			for u := range vals {
				gc.observeBall(u, vals)
			}
		}
		return
	}
	gc.dm.Update(g)
	if gc.srcs != nil {
		for _, u := range gc.srcs {
			gc.observeRow(int(u), vals)
		}
		return
	}
	n := len(vals)
	for u := 0; u < n; u++ {
		row := gc.dm.Row(u)
		lu := vals[u]
		for v := u + 1; v < n; v++ {
			d := int(row[v])
			if d <= 0 {
				continue // disconnected pair this sample
			}
			gc.bucket(d, math.Abs(lu-vals[v]))
		}
	}
}

// observeBall buckets u against every node in its radius-capped ball.
// Pairs with both endpoints in the source set are folded twice; the
// buckets take a max, so the duplicate is harmless.
//
//gcslint:zeroalloc
func (gc *GradientChecker) observeBall(u int, vals []float64) {
	nodes, dists := gc.bd.Ball(u)
	lu := vals[u]
	for i, v := range nodes {
		gc.bucket(int(dists[i]), math.Abs(lu-vals[v]))
	}
}

// observeRow buckets u against every reachable node from its exact
// distance row.
//
//gcslint:zeroalloc
func (gc *GradientChecker) observeRow(u int, vals []float64) {
	row := gc.dm.Row(u)
	lu := vals[u]
	for v, d32 := range row {
		d := int(d32)
		if d <= 0 {
			continue
		}
		gc.bucket(d, math.Abs(lu-vals[v]))
	}
}

// MaxDist returns the largest distance bucket holding data.
func (gc *GradientChecker) MaxDist() int { return gc.maxDist }

// MaxSkewAt returns the largest |L_u - L_v| observed over any pair at
// current distance d, or 0 if no pair was ever at that distance.
func (gc *GradientChecker) MaxSkewAt(d int) float64 {
	if d < 1 || d >= len(gc.maxByDist) {
		return 0
	}
	return gc.maxByDist[d]
}

// Samples returns the number of samples folded in.
func (gc *GradientChecker) Samples() int { return gc.samples }

// Recomputes returns the number of distance BFS sweeps performed during
// the current run (one per distinct topology epoch observed).
func (gc *GradientChecker) Recomputes() int { return gc.structRecomputes() - gc.recomputeBase }

// PerDistance returns a fresh slice s with s[d] = MaxSkewAt(d) for d in
// [0, MaxDist]; s[0] is always 0. Empty (nil) when no samples had any
// connected pair.
func (gc *GradientChecker) PerDistance() []float64 {
	if gc.maxDist == 0 {
		return nil
	}
	return append([]float64(nil), gc.maxByDist[:gc.maxDist+1]...)
}

// Check compares every bucket against bound(d) and returns the first
// violating distance with its observed skew, or (0, 0, true) if every
// bucket is within its bound.
func (gc *GradientChecker) Check(bound func(d int) float64) (d int, skew float64, ok bool) {
	for d := 1; d <= gc.maxDist; d++ {
		if gc.maxByDist[d] > bound(d) {
			return d, gc.maxByDist[d], false
		}
	}
	return 0, 0, true
}
