package sim

import (
	"math"

	"gcs/internal/dyngraph"
)

// GradientChecker verifies the paper's Section 5 gradient property over
// a live execution: at every skew sample it buckets |L_u - L_v| over all
// node pairs by their current hop distance and tracks the running
// maximum per bucket, so the result is the observed local skew as a
// function of distance — checked per sample across the whole run, not
// just at the single worst edge. Distances come from a lazily
// revalidated DistanceMatrix (one BFS sweep per topology-change epoch),
// and the per-sample path allocates nothing in steady state.
type GradientChecker struct {
	dm *dyngraph.DistanceMatrix
	// maxByDist[d] is the largest |L_u - L_v| seen over any pair at
	// current distance d; index 0 is unused (a pair at distance 0 is the
	// same node).
	maxByDist []float64
	// maxDist is the largest bucket with data so far.
	maxDist int
	samples int
	// recomputeBase offsets the distance matrix's cumulative BFS count so
	// Recomputes stays per-run when the checker is reused across runs.
	recomputeBase int
}

// newGradientChecker sizes a checker for n nodes; distances are at most
// n-1, so the bucket table never reallocates.
func newGradientChecker(n int) *GradientChecker {
	return &GradientChecker{
		dm:        dyngraph.NewDistanceMatrix(n),
		maxByDist: make([]float64, n),
	}
}

// nodes returns the node count the checker was sized for.
func (gc *GradientChecker) nodes() int { return len(gc.maxByDist) }

// reset clears the buckets for a new run over the same node count,
// keeping the distance matrix's storage warm (the graph's epoch only
// grows across arena resets, so stale cached distances revalidate on the
// first observe).
func (gc *GradientChecker) reset() {
	for i := range gc.maxByDist {
		gc.maxByDist[i] = 0
	}
	gc.maxDist = 0
	gc.samples = 0
	gc.recomputeBase = gc.dm.Recomputes()
}

// observe folds one sample into the buckets: vals[i] is node i's logical
// clock at the sample instant, g supplies the current topology.
func (gc *GradientChecker) observe(g *dyngraph.Dynamic, vals []float64) {
	gc.dm.Update(g)
	n := len(vals)
	for u := 0; u < n; u++ {
		row := gc.dm.Row(u)
		lu := vals[u]
		for v := u + 1; v < n; v++ {
			d := int(row[v])
			if d <= 0 {
				continue // disconnected pair this sample
			}
			diff := math.Abs(lu - vals[v])
			if diff > gc.maxByDist[d] {
				gc.maxByDist[d] = diff
				if d > gc.maxDist {
					gc.maxDist = d
				}
			}
		}
	}
	gc.samples++
}

// MaxDist returns the largest distance bucket holding data.
func (gc *GradientChecker) MaxDist() int { return gc.maxDist }

// MaxSkewAt returns the largest |L_u - L_v| observed over any pair at
// current distance d, or 0 if no pair was ever at that distance.
func (gc *GradientChecker) MaxSkewAt(d int) float64 {
	if d < 1 || d >= len(gc.maxByDist) {
		return 0
	}
	return gc.maxByDist[d]
}

// Samples returns the number of samples folded in.
func (gc *GradientChecker) Samples() int { return gc.samples }

// Recomputes returns the number of distance-matrix BFS sweeps performed
// during the current run (one per distinct topology epoch observed).
func (gc *GradientChecker) Recomputes() int { return gc.dm.Recomputes() - gc.recomputeBase }

// PerDistance returns a fresh slice s with s[d] = MaxSkewAt(d) for d in
// [0, MaxDist]; s[0] is always 0. Empty (nil) when no samples had any
// connected pair.
func (gc *GradientChecker) PerDistance() []float64 {
	if gc.maxDist == 0 {
		return nil
	}
	return append([]float64(nil), gc.maxByDist[:gc.maxDist+1]...)
}

// Check compares every bucket against bound(d) and returns the first
// violating distance with its observed skew, or (0, 0, true) if every
// bucket is within its bound.
func (gc *GradientChecker) Check(bound func(d int) float64) (d int, skew float64, ok bool) {
	for d := 1; d <= gc.maxDist; d++ {
		if gc.maxByDist[d] > bound(d) {
			return d, gc.maxByDist[d], false
		}
	}
	return 0, 0, true
}
