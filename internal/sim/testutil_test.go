package sim

import "testing"

// mustRun executes cfg via the package-level Run, failing the test on a
// validation error. Tests that exercise deliberately malformed configs
// call Run directly and assert on the error instead.
func mustRun(t testing.TB, cfg Config) SkewReport {
	t.Helper()
	rpt, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return rpt
}

// mustSweep is mustRun's counterpart for RunSweep.
func mustSweep(t testing.TB, cells []SweepCell, workers int) []SweepResult {
	t.Helper()
	out, err := RunSweep(cells, workers)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	return out
}
