package sim

import (
	"fmt"
	"testing"

	"gcs/internal/dyngraph"
	"gcs/internal/simtest"
)

func parallelRingConfig(n, shards int) Config {
	return Config{
		N: n, Seed: 7, Horizon: 5, Rho: 0.01, MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
		Parallel: true,
		Shards:   shards,
	}
}

func parallelChurnConfig(n, shards int) Config {
	cfg := parallelRingConfig(n, shards)
	cfg.Churn = ChurnSpec{Kind: ChurnVolatile, Lifetime: 1, Absence: 0.5, ExtraEdges: 24}
	return cfg
}

// TestParallelSimWorkerInvariance is the parallel determinism contract:
// the report is a pure function of the Config, and the worker count is
// invisible — every worker count reproduces the workers=1 serial
// reference bit for bit, on static and churning topologies alike.
func TestParallelSimWorkerInvariance(t *testing.T) {
	star := parallelRingConfig(24, 4)
	star.Churn = ChurnSpec{Kind: ChurnRotatingStar, Period: 1, Overlap: 0.25}
	for name, base := range map[string]Config{
		"ring":  parallelRingConfig(96, 5),
		"churn": parallelChurnConfig(64, 4),
		// The rotating star is the maximally dynamic pattern: every edge
		// is hub-incident, so almost all traffic crosses shards and every
		// rotation runs a burst of global-phase discovery beacons.
		"star": star,
	} {
		t.Run(name, func(t *testing.T) {
			ref := base
			ref.Workers = 1
			want := mustRun(t, ref)
			if want.Transport.Delivered == 0 || want.Samples < 2 {
				t.Fatalf("degenerate reference run: %+v", want)
			}
			for _, workers := range []int{2, 4} {
				cfg := base
				cfg.Workers = workers
				got := mustRun(t, cfg)
				simtest.AssertSameReport(t, fmt.Sprintf("workers=%d vs serial reference", workers), got, want)
			}
		})
	}
}

// TestParallelSimSeedSensitivity pins same-seed reproducibility and that
// the seed (and the shard count — part of the physics) actually steers
// the execution.
func TestParallelSimSeedSensitivity(t *testing.T) {
	cfg := parallelRingConfig(64, 4)
	first := mustRun(t, cfg)
	simtest.AssertSameReport(t, "same-config rerun", mustRun(t, cfg), first)
	other := cfg
	other.Seed = 99
	if got := mustRun(t, other); got.MaxGlobalSkew == first.MaxGlobalSkew &&
		got.Transport.Sent == first.Transport.Sent {
		t.Fatal("different seeds produced an identical execution")
	}
}

// TestParallelSimArenaReuse pins arena-style reuse: re-running a config
// through one Arena — including across an intervening run of a different
// shard shape, which forces a full rebuild — reproduces the fresh run
// bit for bit.
func TestParallelSimArenaReuse(t *testing.T) {
	cfgA := parallelChurnConfig(64, 4)
	cfgB := parallelRingConfig(96, 6)
	want := mustRun(t, cfgA)
	a := NewArena()
	simtest.AssertSameReport(t, "arena first run vs fresh", a.Run(cfgA), want)
	simtest.AssertSameReport(t, "arena shape-change run vs fresh", a.Run(cfgB), mustRun(t, cfgB))
	simtest.AssertSameReport(t, "arena re-run after shape change vs fresh", a.Run(cfgA), want)
}

// TestParallelSimPhysics sanity-checks the parallel execution as a
// simulation: skew within the analytic bound, drift within [1-rho,
// 1+rho], value conservation (everything sent is delivered, dropped, or
// still in flight at the horizon), and genuine cross-shard pipelining
// (windows executed, traffic crossed shards).
func TestParallelSimPhysics(t *testing.T) {
	cfg := parallelChurnConfig(96, 6)
	ps := NewParallel(cfg)
	rpt := ps.Run()
	eff := cfg.WithDefaults()
	if rpt.MaxGlobalSkew > rpt.Bound {
		t.Errorf("global skew %v exceeds analytic bound %v", rpt.MaxGlobalSkew, rpt.Bound)
	}
	if rpt.MinRateSeen < 1-eff.Rho || rpt.MaxRateSeen > 1+eff.Rho {
		t.Errorf("rates [%v, %v] escape [%v, %v]",
			rpt.MinRateSeen, rpt.MaxRateSeen, 1-eff.Rho, 1+eff.Rho)
	}
	if rpt.Transport.Delivered+rpt.Transport.Dropped > rpt.Transport.Sent {
		t.Errorf("conservation violated: sent=%d delivered=%d dropped=%d",
			rpt.Transport.Sent, rpt.Transport.Delivered, rpt.Transport.Dropped)
	}
	if rpt.Transport.Delivered == 0 || rpt.TotalBeacons == 0 || rpt.EdgeAdds == 0 {
		t.Errorf("degenerate run: %+v", rpt)
	}
	if ps.P.Windows() == 0 {
		t.Error("no parallel windows executed")
	}
	// One sample per period plus t=0, plus possibly one extra when
	// accumulated float periods land just short of the horizon (the same
	// fencepost the serial sampler has).
	minSamples := int(eff.Horizon/eff.SampleEvery) + 1
	if rpt.Samples < minSamples || rpt.Samples > minSamples+1 {
		t.Errorf("samples = %d, want %d or %d", rpt.Samples, minSamples, minSamples+1)
	}
	// Block partitioning a ring leaves exactly one boundary edge per
	// shard pair; beacons over them must have crossed shards.
	crossed := false
	for s := 0; s < ps.P.NumShards(); s++ {
		if ps.P.Shard(s).Executed() == 0 {
			t.Errorf("shard %d executed no events", s)
		}
	}
	for i := 1; i < cfg.N; i++ {
		if ps.shardOf[i] != ps.shardOf[i-1] {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("partition degenerated to a single shard")
	}
}

// TestParallelSimGradientCheck runs the radius-capped gradient checker
// on the parallel harness: the global-phase barrier makes every sample a
// consistent cut, so buckets must populate and respect the bound shape.
func TestParallelSimGradientCheck(t *testing.T) {
	cfg := parallelRingConfig(64, 4)
	cfg.CheckGradient = true
	cfg.GradientRadius = 3
	rpt := mustRun(t, cfg)
	if len(rpt.PerDistanceSkew) == 0 || rpt.DistanceRecomputes == 0 {
		t.Fatalf("gradient checker recorded nothing: %+v", rpt.PerDistanceSkew)
	}
	if got := len(rpt.PerDistanceSkew) - 1; got > cfg.GradientRadius {
		t.Fatalf("bucket at distance %d beyond radius %d", got, cfg.GradientRadius)
	}
	for d := 1; d < len(rpt.PerDistanceSkew); d++ {
		if rpt.PerDistanceSkew[d] <= 0 {
			t.Fatalf("empty bucket at distance %d on a static ring", d)
		}
	}
}

// TestTopologyDiameterClosedForm pins the closed-form diameters used by
// the analytic bound against the generic all-source BFS, across the
// generator topologies and sizes (the closed forms exist so Ring100k
// does not pay an O(n²) sweep per bound evaluation).
func TestTopologyDiameterClosedForm(t *testing.T) {
	for _, tc := range []struct {
		spec TopologySpec
		minN int
	}{
		{TopologySpec{Kind: TopoLine}, 1},
		{TopologySpec{Kind: TopoRing}, 3}, // dyngraph.Ring needs n >= 3
		{TopologySpec{Kind: TopoStar}, 1},
		{TopologySpec{Kind: TopoComplete}, 1},
	} {
		for n := tc.minN; n <= 33; n++ {
			want := dyngraph.Diameter(n, tc.spec.Edges(n))
			if got := tc.spec.diameter(n); got != want {
				t.Errorf("%v n=%d: closed form %d, BFS %d", tc.spec.Kind, n, got, want)
			}
		}
	}
	for _, wh := range [][2]int{{1, 1}, {1, 7}, {4, 4}, {3, 8}, {6, 5}} {
		spec := TopologySpec{Kind: TopoGrid, W: wh[0], H: wh[1]}
		n := wh[0] * wh[1]
		want := dyngraph.Diameter(n, spec.Edges(n))
		if got := spec.diameter(n); got != want {
			t.Errorf("grid %dx%d: closed form %d, BFS %d", wh[0], wh[1], got, want)
		}
	}
}
