package sim

import (
	"math"
	"testing"
)

// FuzzConfigValidate fuzzes the harness-boundary contract: Validate
// must classify every input without panicking, and any config it
// accepts must survive the full derived-value surface — WithDefaults,
// both analytic bounds, and a defaulted re-validation — with sane
// results. This is the boundary a long-running sweep service trusts
// to reject arbitrary job payloads.
func FuzzConfigValidate(f *testing.F) {
	f.Add(16, uint64(1), 10.0, 0.01, 0.01, 0.0, int(TopoRing), 4, 4, int(DriveBangBang), 1.0, int(ChurnNone), 2.0, 0.5, false, 0, 0)
	f.Add(12, uint64(7), 8.0, 0.02, 0.05, 0.01, int(TopoGrid), 3, 4, int(DriveRandomWalk), 0.5, int(ChurnRotatingStar), 1.0, 0.25, true, 4, 2)
	f.Add(0, uint64(0), -1.0, 1.5, -0.5, 0.2, 99, 0, 0, 99, 0.0, 99, 0.0, 0.0, false, -3, -1)
	f.Add(5, uint64(3), 6.0, 0.1, 0.02, 0.0, int(TopoComplete), 0, 0, int(DriveConstant), 0.0, int(ChurnVolatile), 1.5, 1.0, false, 0, 8)
	f.Fuzz(func(t *testing.T, n int, seed uint64, horizon, rho, maxDelay, minDelay float64,
		topo, w, h, driver int, interval float64, churn int, period, overlap float64,
		parallel bool, shards, extra int) {
		cfg := Config{
			N:        n,
			Seed:     seed,
			Horizon:  horizon,
			Rho:      rho,
			MaxDelay: maxDelay,
			MinDelay: minDelay,
			Topology: TopologySpec{Kind: TopologyKind(topo), W: w, H: h},
			Driver:   DriverSpec{Kind: DriverKind(driver), Interval: interval},
			Churn: ChurnSpec{
				Kind: ChurnKind(churn), Period: period, Overlap: overlap,
				Lifetime: period, Absence: overlap, ExtraEdges: extra,
			},
			Parallel: parallel,
			Shards:   shards,
		}
		err := cfg.Validate()
		if err != nil {
			return
		}
		// Accepted configs must be fully usable without panics.
		d := cfg.WithDefaults()
		if again := d.Validate(); again != nil {
			t.Fatalf("defaulted form of an accepted config rejected: %v\ncfg: %+v", again, cfg)
		}
		if b := cfg.GlobalSkewBound(); math.IsNaN(b) || b < 0 {
			t.Fatalf("GlobalSkewBound = %v for accepted config %+v", b, cfg)
		}
		if g := cfg.GradientBound(1); math.IsNaN(g) || g < 0 {
			t.Fatalf("GradientBound(1) = %v for accepted config %+v", g, cfg)
		}
		if cfg.GradientBound(0) != 0 || cfg.GradientBound(-1) != 0 {
			t.Fatal("GradientBound must be 0 at nonpositive distance")
		}
		// The gradient bound is monotone in distance.
		if cfg.GradientBound(2) < cfg.GradientBound(1) {
			t.Fatalf("gradient bound not monotone: d1=%v d2=%v", cfg.GradientBound(1), cfg.GradientBound(2))
		}
	})
}
