package sim

import (
	"encoding/binary"
	"math"
)

// canonicalVersion is the format tag AppendCanonical prefixes its
// output with. Bump it whenever a field is added to Config (or to any
// struct it embeds) or the encoding order changes: the canonical bytes
// are the basis of the result store's content addresses, and a silent
// layout change would alias old cached results onto new physics.
const canonicalVersion = 1

// AppendCanonical appends a canonical binary encoding of the config to
// dst and returns the extended slice. The encoding is the identity of a
// sweep cell for content-addressed result caching: two configs encode
// identically exactly when they describe the same simulated physics, so
// a durable store may serve a cached SkewReport for one in place of
// running the other.
//
// Properties the store relies on:
//
//   - The encoding is over the *defaulted* config, so an unset field
//     and its explicit default are the same cell.
//   - Workers is excluded: it is pure execution (the worker-invariance
//     suites pin that it never changes a report), so runs of the same
//     cell at different worker counts dedupe.
//   - Floats are encoded as IEEE-754 bits, making the map total (Inf
//     and NaN included) and exact — no formatting round-trip.
//
// Every remaining field is physics (Seed, delay law, topology, driver,
// churn, node parameters, fault plan, gradient-check shape, coalescing)
// and is encoded in declared order behind a version byte.
func (c Config) AppendCanonical(dst []byte) []byte {
	d := c.WithDefaults()
	dst = append(dst, canonicalVersion)
	dst = appendU64(dst, uint64(d.N))
	dst = appendU64(dst, d.Seed)
	dst = appendF64(dst, d.Horizon)
	dst = appendF64(dst, d.Rho)
	dst = appendF64(dst, d.MaxDelay)

	dst = appendU64(dst, uint64(d.Topology.Kind))
	dst = appendU64(dst, uint64(d.Topology.W))
	dst = appendU64(dst, uint64(d.Topology.H))

	dst = appendU64(dst, uint64(d.Driver.Kind))
	dst = appendF64(dst, d.Driver.Interval)

	dst = appendU64(dst, uint64(d.Churn.Kind))
	dst = appendF64(dst, d.Churn.Period)
	dst = appendF64(dst, d.Churn.Overlap)
	dst = appendF64(dst, d.Churn.Lifetime)
	dst = appendF64(dst, d.Churn.Absence)
	dst = appendU64(dst, uint64(d.Churn.ExtraEdges))

	dst = appendF64(dst, d.Node.Rho)
	dst = appendF64(dst, d.Node.MaxDelay)
	dst = appendF64(dst, d.Node.BeaconEvery)
	dst = appendF64(dst, d.Node.Kappa)
	dst = appendF64(dst, d.Node.Mu)
	dst = appendF64(dst, d.Node.JumpThreshold)

	dst = appendF64(dst, d.SampleEvery)
	dst = appendBool(dst, d.CheckGradient)
	dst = appendU64(dst, uint64(d.GradientRadius))
	dst = appendU64(dst, uint64(d.GradientSources))

	dst = appendBool(dst, d.Parallel)
	dst = appendU64(dst, uint64(d.Shards))
	dst = appendF64(dst, d.MinDelay)

	dst = appendF64(dst, d.Faults.Drop)
	dst = appendF64(dst, d.Faults.Dup)
	dst = appendF64(dst, d.Faults.DelaySpike)
	dst = appendF64(dst, d.Faults.SpikeFactor)
	dst = appendF64(dst, d.Faults.CrashEvery)
	dst = appendF64(dst, d.Faults.CrashDowntime)
	dst = appendBool(dst, d.Faults.CrashStop)
	dst = appendF64(dst, d.Faults.RateExcursionEvery)
	dst = appendF64(dst, d.Faults.RateExcursionFactor)
	dst = appendF64(dst, d.Faults.RateExcursionFor)
	dst = appendF64(dst, d.Faults.Until)

	dst = appendBool(dst, d.NoCoalesce)
	return dst
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}
