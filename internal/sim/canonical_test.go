package sim

import (
	"bytes"
	"testing"
)

// TestCanonicalDefaultInsensitive: an unset field and its explicit
// default are the same cell — the store must serve one for the other.
func TestCanonicalDefaultInsensitive(t *testing.T) {
	sparse := Config{N: 16, Seed: 3}
	full := sparse.WithDefaults()
	if !bytes.Equal(sparse.AppendCanonical(nil), full.AppendCanonical(nil)) {
		t.Fatal("sparse config and its defaulted form encode differently")
	}
}

// TestCanonicalWorkersExcluded: Workers is pure execution (reports are
// worker-invariant), so runs of one cell at different worker counts
// must content-address identically and dedupe in the store.
func TestCanonicalWorkersExcluded(t *testing.T) {
	a := Config{N: 64, Seed: 9, Parallel: true, Shards: 4, Workers: 1}
	b := a
	b.Workers = 8
	if !bytes.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil)) {
		t.Fatal("worker count leaked into the canonical encoding")
	}
}

// TestCanonicalDistinguishesPhysics: every field that changes the
// simulated execution must change the encoding — aliasing two physics
// onto one content address would serve wrong cached results.
func TestCanonicalDistinguishesPhysics(t *testing.T) {
	base := Config{N: 64, Seed: 9}
	ref := base.AppendCanonical(nil)
	for name, mut := range map[string]func(*Config){
		"n":        func(c *Config) { c.N = 65 },
		"seed":     func(c *Config) { c.Seed = 10 },
		"horizon":  func(c *Config) { c.Horizon = 20 },
		"rho":      func(c *Config) { c.Rho = 0.02 },
		"delay":    func(c *Config) { c.MaxDelay = 0.02 },
		"topology": func(c *Config) { c.Topology.Kind = TopoRing },
		"driver":   func(c *Config) { c.Driver.Kind = DriveBangBang },
		"churn": func(c *Config) {
			c.Churn = ChurnSpec{Kind: ChurnVolatile, Lifetime: 1, Absence: 1, ExtraEdges: 4}
		},
		"beacon":   func(c *Config) { c.Node.BeaconEvery = 0.2 },
		"sample":   func(c *Config) { c.SampleEvery = 0.25 },
		"gradient": func(c *Config) { c.CheckGradient = true },
		"parallel": func(c *Config) { c.Parallel = true },
		"shards":   func(c *Config) { c.Parallel = true; c.Shards = 5 },
		"minDelay": func(c *Config) { c.Parallel = true; c.MinDelay = 0.004 },
		"faults":   func(c *Config) { c.Faults.Drop = 0.1 },
		"coalesce": func(c *Config) { c.NoCoalesce = true },
	} {
		cfg := base
		mut(&cfg)
		if bytes.Equal(ref, cfg.AppendCanonical(nil)) {
			t.Errorf("%s: physics change did not change the canonical encoding", name)
		}
	}
}

// TestCanonicalStable: the encoding of one config is identical across
// calls and grows dst in place.
func TestCanonicalStable(t *testing.T) {
	cfg := churnyConfig(7)
	a := cfg.AppendCanonical(nil)
	b := cfg.AppendCanonical(make([]byte, 0, 512))
	if !bytes.Equal(a, b) {
		t.Fatal("canonical encoding differs across calls")
	}
	if a[0] != canonicalVersion {
		t.Fatalf("encoding does not lead with the version byte: %d", a[0])
	}
	withPrefix := cfg.AppendCanonical([]byte("xx"))
	if !bytes.Equal(withPrefix[2:], a) {
		t.Fatal("AppendCanonical does not append to dst")
	}
}
