package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"gcs/internal/simtest"
)

// faultedChurnConfig layers every fault kind on top of the maximally
// stochastic serial scenario.
func faultedChurnConfig(seed uint64) Config {
	cfg := churnyConfig(seed)
	cfg.Faults = FaultSpec{
		Drop: 0.1, Dup: 0.05, DelaySpike: 0.1,
		CrashEvery: 5, CrashDowntime: 0.5,
		RateExcursionEvery: 5,
	}
	return cfg
}

// faultedParallelConfig is the parallel counterpart.
func faultedParallelConfig(n, shards int) Config {
	cfg := parallelChurnConfig(n, shards)
	cfg.Faults = FaultSpec{
		Drop: 0.1, Dup: 0.05, DelaySpike: 0.1,
		CrashEvery: 2, CrashDowntime: 0.3,
		RateExcursionEvery: 2,
	}
	return cfg
}

// TestRunReturnsErrorsNotPanics is the harness-boundary contract: every
// malformed config comes back from sim.Run as a descriptive error, and
// never as a panic.
func TestRunReturnsErrorsNotPanics(t *testing.T) {
	valid := churnyConfig(1)
	for name, mut := range map[string]func(*Config){
		"zeroN":           func(c *Config) { c.N = 0 },
		"negativeN":       func(c *Config) { c.N = -3 },
		"nanHorizon":      func(c *Config) { c.Horizon = math.NaN() },
		"rhoTooBig":       func(c *Config) { c.Rho = 1 },
		"rhoNaN":          func(c *Config) { c.Rho = math.NaN() },
		"negativeDelay":   func(c *Config) { c.MaxDelay = -0.1 },
		"gridMismatch":    func(c *Config) { c.Topology = TopologySpec{Kind: TopoGrid, W: 5, H: 5} },
		"ringTooSmall":    func(c *Config) { c.N = 2; c.Topology.Kind = TopoRing; c.Churn = ChurnSpec{} },
		"chainsTooSmall":  func(c *Config) { c.N = 3; c.Topology.Kind = TopoTwoChains; c.Churn = ChurnSpec{} },
		"unknownTopo":     func(c *Config) { c.Topology.Kind = TopologyKind(99) },
		"unknownDriver":   func(c *Config) { c.Driver.Kind = DriverKind(99) },
		"driverInterval":  func(c *Config) { c.Driver = DriverSpec{Kind: DriveRandomWalk, Interval: -1} },
		"unknownChurn":    func(c *Config) { c.Churn.Kind = ChurnKind(99) },
		"churnLifetime":   func(c *Config) { c.Churn = ChurnSpec{Kind: ChurnVolatile, Lifetime: -1, Absence: 1} },
		"negativeShards":  func(c *Config) { c.Shards = -2 },
		"minDelayTooBig":  func(c *Config) { c.Parallel = true; c.MinDelay = c.MaxDelay * 2 },
		"beaconNegative":  func(c *Config) { c.Node.BeaconEvery = -1 },
		"faultDropRange":  func(c *Config) { c.Faults.Drop = 1.5 },
		"faultUntilRange": func(c *Config) { c.Faults = FaultSpec{Drop: 0.1, Until: c.Horizon * 2} },
	} {
		cfg := valid
		mut(&cfg)
		rpt, err := Run(cfg) // must not panic
		if err == nil {
			t.Errorf("%s: Run accepted a malformed config", name)
		}
		if !reflect.DeepEqual(rpt, SkewReport{}) {
			t.Errorf("%s: non-zero report alongside error", name)
		}
	}
}

// TestRunSweepSurfacesPerCellErrors: a malformed cell fails only
// itself — the error is surfaced on that cell (and joined into the
// aggregate error) while every valid sibling still runs and reports
// identically to a solo run. One bad cell must not discard its
// siblings; a sweep service depends on this seam.
func TestRunSweepSurfacesPerCellErrors(t *testing.T) {
	bad := churnyConfig(2)
	bad.Rho = 2
	cells := []SweepCell{
		{Name: "good", Cfg: churnyConfig(1)},
		{Name: "bad", Cfg: bad},
	}
	out, err := RunSweep(cells, 2)
	if err == nil {
		t.Fatal("RunSweep returned nil aggregate error despite a malformed cell")
	}
	if len(out) != 2 {
		t.Fatalf("got %d results, want 2", len(out))
	}
	if out[0].Err != nil {
		t.Fatalf("valid sibling failed: %v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Fatal("malformed cell carries no error")
	}
	if !reflect.DeepEqual(out[1].Report, SkewReport{}) {
		t.Fatalf("malformed cell has a non-zero report: %+v", out[1].Report)
	}
	solo := mustRun(t, churnyConfig(1))
	simtest.AssertSameReport(t, "sibling vs solo run", out[0].Report, solo)
}

// TestFaultedRunDeterministic: a fully faulted serial run is
// bit-identical across reruns, actually injects every fault kind, and
// re-converges.
func TestFaultedRunDeterministic(t *testing.T) {
	a := mustRun(t, faultedChurnConfig(42))
	b := mustRun(t, faultedChurnConfig(42))
	simtest.AssertSameReport(t, "same-seed faulted rerun", b, a)
	fs := a.Faults
	if fs.Drops == 0 || fs.Dups == 0 || fs.DelaySpikes == 0 ||
		fs.Crashes == 0 || fs.Recoveries == 0 || fs.RateExcursions == 0 {
		t.Fatalf("some fault kind never fired: %+v", fs)
	}
	if math.IsInf(a.ReconvergenceTime, 1) {
		t.Fatal("faulted run never re-converged")
	}
	simtest.AssertReportsDiffer(t, "faulted seed 42 vs 43", a, mustRun(t, faultedChurnConfig(43)))
	// The plan steers the execution: the same seed without faults must
	// differ, and must report zero fault stats.
	plain := mustRun(t, churnyConfig(42))
	if plain.Faults.Total() != 0 || plain.ReconvergenceTime != 0 {
		t.Fatalf("unfaulted run reported faults: %+v", plain.Faults)
	}
	if plain.Transport.Sent == a.Transport.Sent && plain.MaxGlobalSkew == a.MaxGlobalSkew {
		t.Fatal("fault plan left no trace on the execution")
	}
}

// TestFaultSpecUntilOnlyIsInert pins the faults-are-physics wiring: a
// Spec that arms the subsystem but injects nothing (only Until set)
// must reproduce the unfaulted run bit for bit — forking the fault
// streams never perturbs any other stream.
func TestFaultSpecUntilOnlyIsInert(t *testing.T) {
	want := mustRun(t, churnyConfig(7))
	armed := churnyConfig(7)
	armed.Faults = FaultSpec{Until: 1}
	simtest.AssertSameReport(t, "armed-but-empty plan vs unfaulted", mustRun(t, armed), want)
}

// TestFaultedParallelWorkerInvariance extends the parallel determinism
// contract to faulted runs: drops, crashes, and excursions land
// identically for every worker count.
func TestFaultedParallelWorkerInvariance(t *testing.T) {
	base := faultedParallelConfig(64, 4)
	ref := base
	ref.Workers = 1
	want := mustRun(t, ref)
	if want.Faults.Total() == 0 || want.Faults.Crashes == 0 {
		t.Fatalf("degenerate faulted reference: %+v", want.Faults)
	}
	if math.IsInf(want.ReconvergenceTime, 1) {
		t.Fatal("faulted parallel run never re-converged")
	}
	for _, workers := range []int{2, 4} {
		cfg := base
		cfg.Workers = workers
		got := mustRun(t, cfg)
		simtest.AssertSameReport(t, fmt.Sprintf("faulted workers=%d vs serial reference", workers), got, want)
	}
}

// TestParallelRecoverMidWindowWorkerInvariance pins the parallel
// engine's handling of a crash/recover cycle landing entirely inside one
// conservative window: the downtime is shorter than the MinDelay
// lookahead, so a node crashes, recovers, and emits its rejoin beacon
// within a single window, and the report must still be worker-invariant
// with the full cycle accounted.
func TestParallelRecoverMidWindowWorkerInvariance(t *testing.T) {
	base := parallelRingConfig(64, 4)
	base.Faults = FaultSpec{CrashEvery: 1.5, CrashDowntime: 0.001}
	if eff := base.WithDefaults(); base.Faults.CrashDowntime >= eff.MinDelay {
		t.Fatalf("premise broken: downtime %v not inside the %v lookahead window",
			base.Faults.CrashDowntime, eff.MinDelay)
	}
	ref := base
	ref.Workers = 1
	want := mustRun(t, ref)
	if want.Faults.Crashes == 0 || want.Faults.Recoveries == 0 {
		t.Fatalf("no crash/recover cycle fired: %+v", want.Faults)
	}
	if want.Faults.Crashes != want.Faults.Recoveries {
		t.Fatalf("sub-window downtimes must all recover before the horizon: %+v", want.Faults)
	}
	for _, workers := range []int{2, 4} {
		cfg := base
		cfg.Workers = workers
		got := mustRun(t, cfg)
		simtest.AssertSameReport(t, fmt.Sprintf("mid-window recovery workers=%d vs serial", workers), got, want)
	}
}

// TestFaultedArenaReuse: arena-reused faulted runs — including across
// an intervening unfaulted run, which must leave the grown fault pools
// disarmed — reproduce fresh runs bit for bit.
func TestFaultedArenaReuse(t *testing.T) {
	faulted := faultedChurnConfig(11)
	plain := churnyConfig(11)
	wantF := mustRun(t, faulted)
	wantP := mustRun(t, plain)
	a := NewArena()
	for i := 0; i < 2; i++ {
		simtest.AssertSameReport(t, fmt.Sprintf("arena faulted run %d vs fresh", i), a.Run(faulted), wantF)
		simtest.AssertSameReport(t, fmt.Sprintf("arena unfaulted run %d vs fresh (fault pools must not leak)", i),
			a.Run(plain), wantP)
	}
}

// TestReconvergenceAfterCrashRecovery forces a real bound violation: a
// tiny line with huge drift and a long crash produces a recovered node
// whose hardware clock lags the network far beyond the bound, and the
// jump rule pulls it back — ReconvergenceTime must be finite and
// strictly positive.
func TestReconvergenceAfterCrashRecovery(t *testing.T) {
	cfg := Config{
		N:           3,
		Seed:        5,
		Horizon:     12,
		Rho:         0.3,
		MaxDelay:    0.02,
		SampleEvery: 0.01,
		Topology:    TopologySpec{Kind: TopoLine},
		Driver:      DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		Faults: FaultSpec{
			CrashEvery:    2,
			CrashDowntime: 4,
			Until:         3,
		},
	}
	rpt := mustRun(t, cfg)
	if rpt.Faults.Crashes == 0 || rpt.Faults.Recoveries == 0 {
		t.Fatalf("crash schedule never fired: %+v", rpt.Faults)
	}
	if rpt.MaxGlobalSkew <= rpt.Bound {
		t.Fatalf("no transient violation: max skew %v within bound %v (re-tune the scenario)",
			rpt.MaxGlobalSkew, rpt.Bound)
	}
	if math.IsInf(rpt.ReconvergenceTime, 1) {
		t.Fatal("never re-converged after the last fault")
	}
	if rpt.ReconvergenceTime <= 0 {
		t.Fatalf("reconvergence time %v, want strictly positive (violation was observed)",
			rpt.ReconvergenceTime)
	}
}

// TestParallelStickyStopWithPendingFaults: stopping a faulted parallel
// run mid-flight leaves crash/recovery events pending; resuming Run
// consumes the sticky stop and finishes the run with fault accounting
// intact. The resumed run executes one extra observe and the stop event
// itself, so the comparison pins the deterministic subset.
func TestParallelStickyStopWithPendingFaults(t *testing.T) {
	cfg := faultedParallelConfig(64, 4)
	cfg.Workers = 2
	ref := mustRun(t, cfg)

	ps := NewParallel(cfg)
	ps.P.Global().Schedule(2.05, "test.stop", func() { ps.P.Stop() })
	interrupted := ps.Run()
	if got := ps.P.Global().Now(); got >= cfg.Horizon {
		t.Fatalf("stop ignored: global clock at %v", got)
	}
	if interrupted.Samples >= ref.Samples {
		t.Fatalf("interrupted run sampled %d >= full run's %d", interrupted.Samples, ref.Samples)
	}
	if _, ok := ps.P.Global().NextEventTime(); !ok {
		t.Fatal("no pending global events at the stop point — fault schedule drained early")
	}

	resumed := ps.Run()
	if resumed.Faults != ref.Faults {
		t.Fatalf("resumed fault stats diverged:\n got %+v\nwant %+v", resumed.Faults, ref.Faults)
	}
	if resumed.Transport != ref.Transport {
		t.Fatalf("resumed transport stats diverged:\n got %+v\nwant %+v", resumed.Transport, ref.Transport)
	}
	if resumed.TotalBeacons != ref.TotalBeacons ||
		resumed.FinalGlobalSkew != ref.FinalGlobalSkew ||
		resumed.MaxGlobalSkew != ref.MaxGlobalSkew {
		t.Fatalf("resumed physics diverged from uninterrupted run:\n got %+v\nwant %+v", resumed, ref)
	}
	if resumed.Samples != ref.Samples+1 {
		t.Fatalf("resumed samples = %d, want %d (one duplicate at the stop cut)",
			resumed.Samples, ref.Samples+1)
	}
}
