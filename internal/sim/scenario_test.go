package sim

import (
	"fmt"
	"testing"
)

// assertSkewInvariants checks the properties every legal execution must
// satisfy: the observed global skew stays below the analytic bound and
// every hardware clock ran within the drift envelope.
func assertSkewInvariants(t *testing.T, cfg Config, rpt SkewReport) {
	t.Helper()
	cfg = cfg.WithDefaults()
	if rpt.MaxGlobalSkew > rpt.Bound {
		t.Errorf("max global skew %v exceeds analytic bound %v", rpt.MaxGlobalSkew, rpt.Bound)
	}
	if rpt.MaxGlobalSkew <= 0 && cfg.Rho > 0 {
		t.Error("zero skew with drifting clocks: simulation degenerate")
	}
	if rpt.MaxAdjacentSkew > rpt.MaxGlobalSkew+1e-12 {
		t.Errorf("adjacent skew %v exceeds global skew %v", rpt.MaxAdjacentSkew, rpt.MaxGlobalSkew)
	}
	const eps = 1e-12
	if rpt.MinRateSeen < 1-cfg.Rho-eps || rpt.MaxRateSeen > 1+cfg.Rho+eps {
		t.Errorf("hardware rates [%v, %v] escaped [1-rho, 1+rho] = [%v, %v]",
			rpt.MinRateSeen, rpt.MaxRateSeen, 1-cfg.Rho, 1+cfg.Rho)
	}
	if rpt.Transport.Delivered == 0 {
		t.Error("no messages delivered: nodes never communicated")
	}
	if rpt.TotalBeacons == 0 {
		t.Error("no beacons emitted")
	}
}

// TestSkewInvariantMatrix sweeps topology x driver scenarios and asserts
// the skew invariants for each. This is the test-archetype core: the
// bound must hold regardless of which legal adversary drives the drift.
func TestSkewInvariantMatrix(t *testing.T) {
	topologies := []struct {
		name string
		n    int
		spec TopologySpec
		ch   ChurnSpec
	}{
		{"Line", 16, TopologySpec{Kind: TopoLine}, ChurnSpec{}},
		{"Ring", 16, TopologySpec{Kind: TopoRing}, ChurnSpec{}},
		{"Grid", 16, TopologySpec{Kind: TopoGrid, W: 4, H: 4}, ChurnSpec{}},
		{"RotatingStar", 16, TopologySpec{}, ChurnSpec{
			Kind: ChurnRotatingStar, Period: 1, Overlap: 0.25,
		}},
	}
	drivers := []struct {
		name string
		spec DriverSpec
	}{
		{"BangBang", DriverSpec{Kind: DriveBangBang, Interval: 0.7}},
		{"RandomWalk", DriverSpec{Kind: DriveRandomWalk, Interval: 0.5}},
	}
	for _, topo := range topologies {
		for _, drv := range drivers {
			t.Run(fmt.Sprintf("%s/%s", topo.name, drv.name), func(t *testing.T) {
				cfg := Config{
					N:        topo.n,
					Seed:     7,
					Horizon:  30,
					Rho:      0.01,
					MaxDelay: 0.01,
					Topology: topo.spec,
					Driver:   drv.spec,
					Churn:    topo.ch,
				}
				rpt := mustRun(t, cfg)
				assertSkewInvariants(t, cfg, rpt)
			})
		}
	}
}

// TestRotatingStar64 is the acceptance scenario: 64 nodes, horizon 100s,
// maximally dynamic topology, finite skew below the analytic bound.
func TestRotatingStar64(t *testing.T) {
	cfg := Config{
		N:        64,
		Seed:     2009,
		Horizon:  100,
		Rho:      0.01,
		MaxDelay: 0.01,
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
		Churn:    ChurnSpec{Kind: ChurnRotatingStar, Period: 2, Overlap: 0.5},
	}
	rpt := mustRun(t, cfg)
	assertSkewInvariants(t, cfg, rpt)
	if rpt.EdgeAdds == 0 || rpt.EdgeRemoves == 0 {
		t.Fatalf("star never rotated: %+v", rpt)
	}
	// The rotating star drops beacons in flight at every teardown; the
	// transport must have recorded real losses without breaking the bound.
	if rpt.Transport.Dropped == 0 {
		t.Errorf("expected in-flight drops under star churn, got none (sent=%d)", rpt.Transport.Sent)
	}
	t.Logf("64-node rotating star: maxGlobal=%.4f maxAdjacent=%.4f bound=%.4f sent=%d dropped=%d",
		rpt.MaxGlobalSkew, rpt.MaxAdjacentSkew, rpt.Bound, rpt.Transport.Sent, rpt.Transport.Dropped)
}

// TestVolatileChurnStaysIntervalConnected cross-checks the harness
// against the dyngraph verifier: a volatile-edges execution with a static
// backbone is T-interval connected for any T.
func TestVolatileChurnStaysIntervalConnected(t *testing.T) {
	cfg := churnyConfig(11)
	s := New(cfg)
	rpt := s.Run()
	assertSkewInvariants(t, cfg, rpt)
	if at, ok := s.Graph.VerifyIntervalConnectivity(1, cfg.Horizon); !ok {
		t.Fatalf("interval connectivity violated at window start %v", at)
	}
}

// TestGradientRegimeLine runs the line with jumps disabled above a high
// threshold so catch-up flows through the fast rate, exercising the
// gradient machinery end to end.
func TestGradientRegimeLine(t *testing.T) {
	cfg := Config{
		N:        8,
		Seed:     5,
		Horizon:  30,
		Rho:      0.02,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoLine},
		Driver:   DriverSpec{Kind: DriveBangBang, Interval: 2},
	}
	cfg.Node.Kappa = 0.05
	cfg.Node.Mu = 1
	cfg.Node.JumpThreshold = 0.2
	rpt := mustRun(t, cfg)
	assertSkewInvariants(t, cfg, rpt)
}
