package sim

// Arena owns one reusable Simulation and re-runs configs through it.
// Each run of a config produces a report bit-identical to a freshly
// wired Run(cfg) — the arena reseeds every PRNG stream and resets every
// component in place — but the O(n) per-run wiring (engine event pool,
// graph adjacency and history storage, transport flight arena, clocks,
// nodes, trace and sample buffers, the analytic bound's topology BFS) is
// paid once per shape and then reused: re-running a same-shape
// churn-free config allocates nothing, which TestArenaSecondRunZeroAlloc
// pins. Churn configs come close but not to zero: the volatile candidate
// set is cached, but each run still re-arms O(ExtraEdges) per-candidate
// timer closures (rotating stars, a handful of rotation closures).
// Growing to a larger N reuses the smaller prefix and allocates only the
// delta, so ascending sweeps (the lower-bound n-sweep) stay cheap.
//
// An Arena is single-threaded, like the Simulation it owns; parallel
// sweeps give each worker its own Arena (see RunSweep).
type Arena struct {
	s  *Simulation
	ps *ParallelSim
	tr *TraceRecorder
}

// NewArena returns an empty arena; the first Sim or Run call wires it.
func NewArena() *Arena { return &Arena{} }

// Sim returns the arena's simulation wired for cfg, creating it on first
// use and resetting it in place afterwards.
func (a *Arena) Sim(cfg Config) *Simulation {
	if a.s == nil {
		a.s = New(cfg)
	} else {
		a.s.Reset(cfg)
	}
	return a.s
}

// Parallel returns the arena's sharded-parallel simulation wired for
// cfg (which must have Config.Parallel set), creating it on first use
// and resetting it in place afterwards. The serial and parallel
// simulations coexist in one arena; each is wired lazily.
func (a *Arena) Parallel(cfg Config) *ParallelSim {
	if a.ps == nil {
		a.ps = NewParallel(cfg)
	} else {
		a.ps.Reset(cfg)
	}
	return a.ps
}

// Run wires the arena for cfg and executes the scenario to its horizon,
// dispatching on Config.Parallel.
func (a *Arena) Run(cfg Config) SkewReport {
	if cfg.Parallel {
		return a.Parallel(cfg).Run()
	}
	return a.Sim(cfg).Run()
}

// RunSliced is Run with a cooperative-preemption seam for long cells:
// a long-running sweep service needs per-cell deadlines and graceful
// drain, but a simulation cannot be interrupted mid-event. Serial
// configs therefore advance in slices of slice simulated seconds,
// calling cont between slices; when cont returns false the run is
// abandoned — ok is false, the report is zero-valued, and the arena is
// left ready for the next cell (the next Run rewires it in place).
// A completed run's report is bit-identical to Run(cfg): slicing only
// changes where the engine pauses, never what it executes, which
// TestArenaRunSlicedBitIdentical pins.
//
// Parallel configs have no mid-run seam (the sharded engine owns its
// window loop), so they consult cont once up front and then execute in
// one piece; a nil cont or nonpositive slice degrades to Run.
func (a *Arena) RunSliced(cfg Config, slice float64, cont func() bool) (report SkewReport, ok bool) {
	if cont == nil {
		return a.Run(cfg), true
	}
	if !cont() {
		return SkewReport{}, false
	}
	if cfg.Parallel || slice <= 0 {
		return a.Run(cfg), true
	}
	s := a.Sim(cfg)
	for t := slice; t < s.Cfg.Horizon; t += slice {
		s.Advance(t)
		if !cont() {
			return SkewReport{}, false
		}
	}
	return s.Run(), true
}

// Trace returns the arena's reusable trace recorder reshaped for n
// nodes and capacity samples, creating it on first use. Like the
// simulation it accompanies, the recorder's buffers are reused across
// runs; its previous contents are dropped by the reshape.
func (a *Arena) Trace(n, capacity int) *TraceRecorder {
	if a.tr == nil {
		a.tr = NewTraceRecorder(n, capacity)
	} else {
		a.tr.ResetSize(n, capacity)
	}
	return a.tr
}
