package sim

import (
	"reflect"
	"testing"
)

func sweepGrid() []SweepCell {
	var cells []SweepCell
	topos := []struct {
		name string
		spec TopologySpec
		ch   ChurnSpec
	}{
		{"Ring", TopologySpec{Kind: TopoRing}, ChurnSpec{}},
		{"Line", TopologySpec{Kind: TopoLine}, ChurnSpec{}},
		{"Ring+Volatile", TopologySpec{Kind: TopoRing}, ChurnSpec{
			Kind: ChurnVolatile, Lifetime: 1.5, Absence: 1.0, ExtraEdges: 8,
		}},
		{"RotatingStar", TopologySpec{}, ChurnSpec{
			Kind: ChurnRotatingStar, Period: 2, Overlap: 0.5,
		}},
	}
	drivers := []DriverSpec{
		{Kind: DriveRandomWalk, Interval: 0.5},
		{Kind: DriveBangBang, Interval: 0.7},
	}
	for _, n := range []int{12, 20} {
		for _, topo := range topos {
			for _, drv := range drivers {
				cells = append(cells, SweepCell{
					Name: topo.name,
					Cfg: Config{
						N: n, Seed: CellSeed(1, len(cells)), Horizon: 8,
						Rho: 0.01, MaxDelay: 0.01,
						Topology: topo.spec, Driver: drv, Churn: topo.ch,
					},
				})
			}
		}
	}
	return cells
}

// TestSweepParallelBitIdentical is the parallel-sweep acceptance pin:
// fanning the grid across workers must produce results bit-identical to
// the serial (workers = 1) order, for several worker counts including
// more workers than cells.
func TestSweepParallelBitIdentical(t *testing.T) {
	cells := sweepGrid()
	serial := mustSweep(t, cells, 1)
	for _, workers := range []int{2, 4, len(cells) + 7} {
		par := mustSweep(t, cells, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: parallel sweep diverged from serial order", workers)
		}
	}
}

// TestSweepMatchesDirectRuns anchors the sweep runner to the plain Run
// path: each cell's report must equal an independently wired Run of the
// same config.
func TestSweepMatchesDirectRuns(t *testing.T) {
	cells := sweepGrid()[:6]
	results := mustSweep(t, cells, 3)
	for i, res := range results {
		want := mustRun(t, cells[i].Cfg)
		if !reflect.DeepEqual(res.Report, want) {
			t.Fatalf("cell %d (%s): sweep report diverged from direct run:\n  sweep = %+v\n  direct = %+v",
				i, res.Name, res.Report, want)
		}
		if res.Cfg != cells[i].Cfg.WithDefaults() {
			t.Fatalf("cell %d: result config not defaulted", i)
		}
	}
}

// TestSweepEmptyAndSingle covers the degenerate grids.
func TestSweepEmptyAndSingle(t *testing.T) {
	if got := mustSweep(t, nil, 4); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
	cells := sweepGrid()[:1]
	got := mustSweep(t, cells, 8)
	if len(got) != 1 || got[0].Report.EventsExecuted == 0 {
		t.Fatalf("single-cell sweep degenerate: %+v", got)
	}
}

// TestCellSeedDistinct guards the per-cell seed derivation: distinct
// indices must get distinct seeds (a collision would silently correlate
// two grid cells).
func TestCellSeedDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 4096; i++ {
		s := CellSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("CellSeed collision: indices %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
}
