package sim

import (
	"testing"

	"gcs/internal/simtest"
)

// TestCoalescingEquivalence pins the semantic-preservation half of
// beacon coalescing: on executions where no two same-tick sends share a
// directed edge — static Ring and Star topologies under both driver
// families — the coalesced run (the default) must produce a SkewReport
// bit-identical to the uncoalesced one, delay draws included (a
// singleton batch draws its delay exactly where an uncoalesced send
// would).
func TestCoalescingEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"Ring/RandomWalk", Config{
			N: 32, Seed: 4, Horizon: 12, Rho: 0.01, MaxDelay: 0.01,
			Topology: TopologySpec{Kind: TopoRing},
			Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		}},
		{"Ring/BangBang", Config{
			N: 32, Seed: 4, Horizon: 12, Rho: 0.01, MaxDelay: 0.01,
			Topology: TopologySpec{Kind: TopoRing},
			Driver:   DriverSpec{Kind: DriveBangBang, Interval: 0.7},
		}},
		{"Star/RandomWalk", Config{
			N: 24, Seed: 8, Horizon: 12, Rho: 0.01, MaxDelay: 0.01,
			Topology: TopologySpec{Kind: TopoStar},
			Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coalesced := mustRun(t, tc.cfg)
			plain := tc.cfg
			plain.NoCoalesce = true
			uncoalesced := mustRun(t, plain)
			simtest.AssertSameReport(t, "coalesced vs uncoalesced", coalesced, uncoalesced)
			if coalesced.Transport.Coalesced != 0 {
				t.Fatalf("static %s run formed %d multi-value batches; equivalence case must be all singletons",
					tc.name, coalesced.Transport.Coalesced)
			}
			if coalesced.Transport.Delivered == 0 {
				t.Fatalf("degenerate execution: %+v", coalesced)
			}
		})
	}
}

// TestCoalescingSkewInvariantsUnderChurn runs the hub-heavy and
// churn-heavy scenarios — where multi-value batches can actually form —
// in both modes and asserts each execution independently satisfies the
// skew invariants and conserves traffic accounting (every sent value is
// delivered or dropped; batching must not lose or duplicate values).
func TestCoalescingSkewInvariantsUnderChurn(t *testing.T) {
	base := []Config{
		{
			N: 24, Seed: 6, Horizon: 20, Rho: 0.01, MaxDelay: 0.01,
			Driver: DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
			Churn:  ChurnSpec{Kind: ChurnRotatingStar, Period: 1, Overlap: 0.25},
		},
		churnyConfig(21),
	}
	for _, cfg := range base {
		for _, noCoalesce := range []bool{false, true} {
			cfg.NoCoalesce = noCoalesce
			s := New(cfg)
			rpt := s.Run()
			assertSkewInvariants(t, cfg, rpt)
			// Values still in flight at the horizon are neither delivered
			// nor dropped; they live on currently present edges only.
			inFlight := uint64(0)
			for _, e := range s.Graph.CurrentEdges() {
				inFlight += uint64(s.Net.InFlight(e))
			}
			ts := rpt.Transport
			if ts.Sent != ts.Delivered+ts.Dropped+inFlight {
				t.Fatalf("traffic not conserved (noCoalesce=%v): %+v with %d in flight",
					noCoalesce, ts, inFlight)
			}
		}
	}
}
