package sim

import (
	"reflect"
	"testing"
)

// TestLowerBoundOmegaGrowth is the Theorem 4.1 acceptance test: under
// the layered adversary the observed max global skew grows linearly in
// n. The observation in fact lands exactly on MaxDelay*maxDist — the
// charged chain-A delay cancels each hop's banked clock offset, so the
// fast nodes' beacons look on-time and no jump rule can fire (the
// paper's indistinguishability argument, executed rather than argued).
func TestLowerBoundOmegaGrowth(t *testing.T) {
	results := LowerBoundSweep(LowerBoundConfig{Seed: 1}, []int{32, 64, 128, 256})
	for _, res := range results {
		if res.MaxGlobalSkew < res.OmegaSkew {
			t.Errorf("n=%d: observed skew %v below analytic lower bound %v",
				res.N, res.MaxGlobalSkew, res.OmegaSkew)
		}
		if res.MaxGlobalSkew > res.UpperBound {
			t.Errorf("n=%d: observed skew %v above analytic upper bound %v",
				res.N, res.MaxGlobalSkew, res.UpperBound)
		}
		// The adversary banks exactly MaxDelay per flexible hop; allow
		// float slack.
		want := 0.01 * float64(res.MaxDist)
		if diff := res.MaxGlobalSkew - want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("n=%d: observed skew %v, want MaxDelay*maxDist = %v",
				res.N, res.MaxGlobalSkew, want)
		}
	}
	first, last := results[0], results[len(results)-1]
	if ratio := last.MaxGlobalSkew / first.MaxGlobalSkew; ratio < 4 {
		t.Fatalf("skew(n=%d)/skew(n=%d) = %v, want >= 4 (Omega(n) growth)",
			last.N, first.N, ratio)
	}
}

// TestLowerBoundSweepMatchesIndividualRuns pins the sweep's arena reuse:
// sharing one simulation across the n-sweep must not change any result
// relative to independently wired runs.
func TestLowerBoundSweepMatchesIndividualRuns(t *testing.T) {
	base := LowerBoundConfig{Seed: 3}
	ns := []int{32, 48, 64}
	swept := LowerBoundSweep(base, ns)
	for i, n := range ns {
		cfg := base
		cfg.N = n
		want := RunLowerBound(cfg, nil)
		if !reflect.DeepEqual(swept[i], want) {
			t.Fatalf("n=%d: sweep result diverged from individual run:\n  sweep = %+v\n  fresh = %+v",
				n, swept[i], want)
		}
	}
}

// TestLowerBoundSkewPersists pins the "forever" half of the argument:
// the banked skew does not decay after every schedule has switched back
// to rate 1 — the executions stay indistinguishable, so the final skew
// equals the maximum.
func TestLowerBoundSkewPersists(t *testing.T) {
	res := RunLowerBound(LowerBoundConfig{N: 64, Seed: 1}, nil)
	if res.FinalGlobalSkew != res.MaxGlobalSkew {
		t.Fatalf("skew decayed: final %v < max %v", res.FinalGlobalSkew, res.MaxGlobalSkew)
	}
}

func TestLowerBoundDeterminism(t *testing.T) {
	cfg := LowerBoundConfig{N: 48, Seed: 7}
	trA := NewTraceRecorder(48, 2048)
	trB := NewTraceRecorder(48, 2048)
	a := RunLowerBound(cfg, trA)
	b := RunLowerBound(cfg, trB)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n  a = %+v\n  b = %+v", a, b)
	}
	if a.EventsExecuted == 0 || a.Transport.Delivered == 0 {
		t.Fatalf("degenerate execution: %+v", a)
	}
	if trA.Len() != trB.Len() {
		t.Fatalf("trace lengths diverged: %d vs %d", trA.Len(), trB.Len())
	}
	for i := 0; i < trA.Len(); i++ {
		ta, va := trA.Sample(i)
		tb, vb := trB.Sample(i)
		if ta != tb || !reflect.DeepEqual(va, vb) {
			t.Fatalf("trace sample %d diverged", i)
		}
	}
}

// TestLowerBoundSteadyStateDoesNotAllocate pins the acceptance
// criterion that the adversarial run — mask lookups, layered schedules,
// trace recording included — stays allocation-free once warm.
func TestLowerBoundSteadyStateDoesNotAllocate(t *testing.T) {
	cfg := LowerBoundConfig{N: 32, Seed: 1}.WithDefaults()
	s := NewLowerBound(cfg)
	tr := NewTraceRecorder(cfg.N, 64)
	s.AttachTrace(tr)
	// Warm up: arenas, event pool, estimate maps, and the trace ring all
	// reach steady state within a few beacon intervals.
	s.Advance(2)
	cursor := 2.0
	allocs := testing.AllocsPerRun(100, func() {
		cursor += 0.25
		s.Advance(cursor)
	})
	if allocs > 0 {
		t.Errorf("steady-state lower-bound run allocated %v objects per 0.25s window, want 0", allocs)
	}
}

func TestLowerBoundConfigValidation(t *testing.T) {
	for name, cfg := range map[string]LowerBoundConfig{
		"tiny n":      {N: 3},
		"eps too big": {N: 8, Epsilon: 0.5, MaxDelay: 0.01},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: WithDefaults did not panic", name)
				}
			}()
			cfg.WithDefaults()
		}()
	}
}
