package sim

import "testing"

// The benchmark suite tracks the per-run cost of full scenarios — wiring,
// beacon traffic, churn, and skew sampling included — across the workload
// shapes the paper's evaluation sweeps: plain rings and grids at two
// scales, the hub-heavy maximally-dynamic rotating star, and a
// churn-heavy volatile overlay. `gcsim bench` runs the suite and emits
// BENCH_<rev>.json for cross-PR tracking.

func benchScenario(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	for b.Loop() {
		rpt := Run(cfg)
		if rpt.MaxGlobalSkew > rpt.Bound {
			b.Fatalf("skew %v exceeded bound %v", rpt.MaxGlobalSkew, rpt.Bound)
		}
	}
}

// BenchmarkRing256 seeds the performance trajectory: one full 256-node
// ring simulation per iteration. PR-1 baseline: ~72.5ms/op, ~544k
// allocs/op; the zero-allocation hot path PR took it to ~26ms/op, ~7k
// allocs/op.
func BenchmarkRing256(b *testing.B) {
	benchScenario(b, Config{
		N:        256,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
	})
}

// BenchmarkRing1024 scales the ring 4x to expose superlinear costs
// (diameter-dependent bound computation, heap depth).
func BenchmarkRing1024(b *testing.B) {
	benchScenario(b, Config{
		N:        1024,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
	})
}

// BenchmarkGrid1024 runs a 32x32 torus-free grid: 4x the ring's edge
// density per node, a much smaller diameter, and heavier broadcast
// fan-out per beacon.
func BenchmarkGrid1024(b *testing.B) {
	benchScenario(b, Config{
		N:        1024,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoGrid, W: 32, H: 32},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
	})
}

// BenchmarkRotatingStar256 is the hub-heavy, maximally dynamic workload:
// every rotation tears down and rebuilds n-1 edges, dropping beacons in
// flight, and the hub's broadcast fans out to all other nodes.
func BenchmarkRotatingStar256(b *testing.B) {
	benchScenario(b, Config{
		N:        256,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
		Churn:    ChurnSpec{Kind: ChurnRotatingStar, Period: 2, Overlap: 0.5},
	})
}

// BenchmarkVolatileChurn512 is the churn-heavy workload: a 512-node ring
// backbone with 256 volatile overlay edges flapping on exponential
// timers, exercising the in-flight drop path and slot reuse.
func BenchmarkVolatileChurn512(b *testing.B) {
	benchScenario(b, Config{
		N:        512,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
		Churn: ChurnSpec{
			Kind:       ChurnVolatile,
			Lifetime:   1.5,
			Absence:    1.0,
			ExtraEdges: 256,
		},
	})
}
