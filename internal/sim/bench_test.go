package sim

import "testing"

// BenchmarkRing256 seeds the performance trajectory: one full 256-node
// ring simulation per iteration, including wiring, beacon traffic, and
// skew sampling. Future PRs optimize against this number.
func BenchmarkRing256(b *testing.B) {
	cfg := Config{
		N:        256,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
	}
	b.ReportAllocs()
	for b.Loop() {
		rpt := Run(cfg)
		if rpt.MaxGlobalSkew > rpt.Bound {
			b.Fatalf("skew %v exceeded bound %v", rpt.MaxGlobalSkew, rpt.Bound)
		}
	}
}
