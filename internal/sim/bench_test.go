package sim

import (
	"math"
	"os"
	"testing"
)

// The benchmark suite tracks the per-run cost of full scenarios — beacon
// traffic, churn, and skew sampling included — across the workload
// shapes the paper's evaluation sweeps: plain rings and grids at three
// scales (up to the 10k-node smoke scenario), the hub-heavy
// maximally-dynamic rotating star, and a churn-heavy volatile overlay.
// Every benchmark runs through a reused Arena with one warm-up run
// before the measured loop, so the numbers report the steady-state
// per-run cost a sweep actually pays — wiring is amortized away, and
// same-shape re-runs are allocation-free (TestArenaSecondRunZeroAlloc).
// `gcsim bench` runs the suite and emits BENCH_<rev>.json for cross-PR
// tracking.

func benchScenario(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	a := NewArena()
	// Warm the arena outside the measured loop (b.Loop resets the timer
	// and allocation counters on its first call).
	if rpt := a.Run(cfg); rpt.MaxGlobalSkew > rpt.Bound {
		b.Fatalf("skew %v exceeded bound %v", rpt.MaxGlobalSkew, rpt.Bound)
	}
	for b.Loop() {
		rpt := a.Run(cfg)
		if rpt.MaxGlobalSkew > rpt.Bound {
			b.Fatalf("skew %v exceeded bound %v", rpt.MaxGlobalSkew, rpt.Bound)
		}
	}
}

func ringConfig(n int) Config {
	return Config{
		N:        n,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
	}
}

func gridConfig(w, h int) Config {
	cfg := ringConfig(w * h)
	cfg.Topology = TopologySpec{Kind: TopoGrid, W: w, H: h}
	return cfg
}

// BenchmarkRing256 seeds the performance trajectory: one full 256-node
// ring simulation per iteration. PR-1 baseline: ~72.5ms/op, ~544k
// allocs/op; the zero-allocation hot path PR took it to ~26ms/op, ~7k
// allocs/op; arena reuse removes the remaining per-run wiring.
func BenchmarkRing256(b *testing.B) {
	benchScenario(b, ringConfig(256))
}

// BenchmarkRing1024 scales the ring 4x to expose superlinear costs
// (diameter-dependent bound computation, heap depth).
func BenchmarkRing1024(b *testing.B) {
	benchScenario(b, ringConfig(1024))
}

// BenchmarkRing4096 is the first past-4k scale point of the sweep
// grids: steady-state cost must stay linear in n.
func BenchmarkRing4096(b *testing.B) {
	benchScenario(b, ringConfig(4096))
}

// BenchmarkRing1024Faults is BenchmarkRing1024 under a combined fault
// plan (drops, dups, delay spikes, crash-recover, rate excursions).
// Compare against BenchmarkRing1024 for the injection overhead; the
// unfaulted benchmarks double as the zero-valued-FaultSpec cost pin,
// since their configs never arm the fault subsystem. A faulted run may
// legitimately breach the analytic bound, so the check is the fault
// gate — faults injected, re-convergence reached — not the bound.
func BenchmarkRing1024Faults(b *testing.B) {
	cfg := ringConfig(1024)
	cfg.Faults = FaultSpec{
		Drop: 0.05, Dup: 0.02, DelaySpike: 0.05,
		CrashEvery: 20, RateExcursionEvery: 20,
	}
	b.ReportAllocs()
	a := NewArena()
	check := func(rpt SkewReport) {
		if rpt.Faults.Total() == 0 {
			b.Fatal("fault plan injected nothing")
		}
		if math.IsInf(rpt.ReconvergenceTime, 1) {
			b.Fatalf("no finite re-convergence: %v", rpt.ReconvergenceTime)
		}
	}
	check(a.Run(cfg))
	for b.Loop() {
		check(a.Run(cfg))
	}
}

// BenchmarkRing10k is the 10k-node smoke scenario: the scale target the
// arena/sweep/coalescing work exists for. It must complete comfortably
// within the CI budget (tens of seconds for warm-up plus one iteration).
func BenchmarkRing10k(b *testing.B) {
	benchScenario(b, ringConfig(10000))
}

// parallelBenchConfig shards a ring config for the parallel engine.
// Workers is left 0 (GOMAXPROCS): the report is worker-invariant, so
// the numbers are comparable across machines while the wall clock
// reflects the host's parallelism.
func parallelBenchConfig(n, shards int) Config {
	cfg := ringConfig(n)
	cfg.Parallel = true
	cfg.Shards = shards
	return cfg
}

// BenchmarkRing10kParallel is BenchmarkRing10k on the sharded parallel
// engine (8 shards, GOMAXPROCS workers). Compare against BenchmarkRing10k
// for the speedup; on a single-core host it instead measures the
// sharding overhead (windowing, cross-shard merge) at zero parallelism.
func BenchmarkRing10kParallel(b *testing.B) {
	benchScenario(b, parallelBenchConfig(10000, 8))
}

// BenchmarkRing100k is the 100k-node scale target, gated behind
// GCS_BENCH_LARGE=1 because one run costs tens of seconds: the horizon
// and sampling rate are reduced so an iteration stays within a CI job
// step. Serial reference for BenchmarkRing100kParallel.
func BenchmarkRing100k(b *testing.B) {
	if os.Getenv("GCS_BENCH_LARGE") == "" {
		b.Skip("set GCS_BENCH_LARGE=1 to run the 100k-node benchmarks")
	}
	cfg := ringConfig(100000)
	cfg.Horizon = 5
	cfg.SampleEvery = 0.5
	benchScenario(b, cfg)
}

// BenchmarkRing100kParallel is the tentpole scale point: Ring100k on the
// sharded engine (16 shards). Gated with its serial twin.
func BenchmarkRing100kParallel(b *testing.B) {
	if os.Getenv("GCS_BENCH_LARGE") == "" {
		b.Skip("set GCS_BENCH_LARGE=1 to run the 100k-node benchmarks")
	}
	cfg := parallelBenchConfig(100000, 16)
	cfg.Horizon = 5
	cfg.SampleEvery = 0.5
	benchScenario(b, cfg)
}

// BenchmarkGrid1024 runs a 32x32 torus-free grid: 4x the ring's edge
// density per node, a much smaller diameter, and heavier broadcast
// fan-out per beacon.
func BenchmarkGrid1024(b *testing.B) {
	benchScenario(b, gridConfig(32, 32))
}

// BenchmarkGrid4096 is the 64x64 grid scale point.
func BenchmarkGrid4096(b *testing.B) {
	benchScenario(b, gridConfig(64, 64))
}

// BenchmarkRotatingStar256 is the hub-heavy, maximally dynamic workload:
// every rotation tears down and rebuilds n-1 edges, dropping beacons in
// flight, and the hub's broadcast fans out to all other nodes.
func BenchmarkRotatingStar256(b *testing.B) {
	benchScenario(b, Config{
		N:        256,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
		Churn:    ChurnSpec{Kind: ChurnRotatingStar, Period: 2, Overlap: 0.5},
	})
}

// BenchmarkVolatileChurn512 is the churn-heavy workload: a 512-node ring
// backbone with 256 volatile overlay edges flapping on exponential
// timers, exercising the in-flight drop path and slot reuse.
func BenchmarkVolatileChurn512(b *testing.B) {
	benchScenario(b, Config{
		N:        512,
		Seed:     1,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 1},
		Churn: ChurnSpec{
			Kind:       ChurnVolatile,
			Lifetime:   1.5,
			Absence:    1.0,
			ExtraEdges: 256,
		},
	})
}

// BenchmarkSweepGradientGrid measures the parallel sweep runner over the
// gradient verification grid shape (small n so CI stays fast): the
// wall-clock ratio between this and its Serial twin is the speedup the
// `gcsim sweep`/`gcsim gradient` -workers flag buys.
func BenchmarkSweepGradientGrid(b *testing.B) {
	cells := benchSweepCells()
	b.ReportAllocs()
	for b.Loop() {
		RunSweep(cells, 0)
	}
}

// BenchmarkSweepGradientGridSerial is the workers=1 baseline for
// BenchmarkSweepGradientGrid.
func BenchmarkSweepGradientGridSerial(b *testing.B) {
	cells := benchSweepCells()
	b.ReportAllocs()
	for b.Loop() {
		RunSweep(cells, 1)
	}
}

func benchSweepCells() []SweepCell {
	var cells []SweepCell
	for _, n := range []int{64, 128} {
		for _, drv := range []DriverSpec{
			{Kind: DriveRandomWalk, Interval: 0.5},
			{Kind: DriveBangBang, Interval: 0.7},
		} {
			for _, topo := range []TopologySpec{
				{Kind: TopoRing},
				{Kind: TopoLine},
			} {
				cells = append(cells, SweepCell{
					Name: topo.Kind.String(),
					Cfg: Config{
						N: n, Seed: CellSeed(1, len(cells)), Horizon: 10,
						Rho: 0.01, MaxDelay: 0.01, Topology: topo, Driver: drv,
					},
				})
			}
		}
	}
	return cells
}
