package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gcs/internal/clock"
	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/fault"
	"gcs/internal/gcs"
	"gcs/internal/transport"
)

// ParallelSim runs one scenario on the sharded conservative-parallel
// engine (des.ParallelEngine). Nodes are block-partitioned into
// Config.Shards shards, each owning a serial DES engine that carries the
// shard's clocks, drivers, beacon timers, and intra-shard message
// deliveries; skew sampling, gradient checking, and topology churn run
// on the coordinator's global engine, which observes every shard
// barriered at a single consistent instant.
//
// Parallel mode is its own physics, not a reimplementation of the
// serial Simulation's:
//
//   - message delays are drawn from per-node PRNG streams (the sender's
//     stream, in the sender's local send order) and lie in (MinDelay,
//     MaxDelay] — the positive floor is the engine's lookahead, the
//     amount of simulated time shard windows may run ahead of each
//     other;
//   - messages are not coalesced, and a message crossing a removed edge
//     is dropped at delivery time by an edge-history check
//     (dyngraph.ExistsThroughout) instead of by an eager cancel, so the
//     drop semantics — lost iff the edge was absent at any point of the
//     flight — match the paper's model exactly.
//
// Because every delay draw, event order, and cross-shard merge is a
// pure function of the Config (Shards included, Workers excluded), the
// report is bit-identical for every worker count; workers=1 is the
// serial reference the determinism suite compares against.
//
// A ParallelSim is reusable like Simulation: Reset rewires it in place,
// recycling engines, graph storage, flight arenas, and per-node objects
// when the (N, Shards, MinDelay) shape is unchanged.
type ParallelSim struct {
	Cfg    Config
	P      *des.ParallelEngine
	Graph  *dyngraph.Dynamic
	Clocks []*clock.HardwareClock
	Nodes  []*gcs.Node

	// shardOf maps node -> shard (block partition); shards holds the
	// per-shard transport state.
	shardOf []int32
	shards  []*pshard

	// Reseedable PRNG streams. delayRands[i] is node i's private delay
	// stream, forked per run from the delay root, so draw order depends
	// only on the node's own send sequence — never on how shard windows
	// interleave.
	root       *des.Rand
	delayRoot  *des.Rand
	driveRand  *des.Rand
	phaseRand  *des.Rand
	delayRands []des.Rand

	drivers []*pdriver

	// shape keys the rebuild decision: engines and per-node objects are
	// reconstructed only when it changes.
	shape        pshape
	subscribed   bool
	initialEdges []dyngraph.Edge

	vals        []float64
	edgeFn      func(dyngraph.Edge)
	sampleFn    func()
	gradient    *GradientChecker
	report      SkewReport
	lastSampleT float64
	started     bool

	// Shard-local sample reduction. shardStart[s]..shardStart[s+1] is
	// shard s's contiguous node block (the same block partition as
	// shardOf); sampleLo/sampleHi hold per-shard partial extrema, merged
	// in fixed shard order so the result is bit-identical to the serial
	// left-to-right scan. runWorkers is the worker count Run resolved;
	// like Workers itself it is execution, not physics.
	shardStart   []int32
	sampleLo     []float64
	sampleHi     []float64
	sampleNext   atomic.Int64
	sampleWG     sync.WaitGroup
	sampleWorker func()
	runWorkers   int

	// Fault-injection state, mirroring the serial harness. msgFaults is
	// non-nil only while the active plan has message faults (msgFaultsPool
	// keeps the grown stream table across rewires); message verdicts are
	// drawn per sender inside shard events, crash/recover and rate
	// excursions run on the global engine with every shard barriered.
	faultOn       bool
	msgFaults     *fault.Messages
	msgFaultsPool *fault.Messages
	injector      *fault.Injector
	faultHooks    fault.Hooks
	faultRoot     des.Rand
	downMask      []bool
	faultBound    float64
	goodSince     float64
}

// pshape is the allocation shape of a wired ParallelSim: changing any
// field forces a rebuild (clocks bind to their shard's engine at
// construction, and the engine set is fixed by shards and lookahead).
type pshape struct {
	n        int
	shards   int
	minDelay float64
}

// pflight is one in-flight message on a shard: enough state to deliver
// and to decide, at delivery time, whether the edge survived the flight.
type pflight struct {
	from, to int32
	value    float64
	sentAt   float64
}

// pshard is one shard's transport state: a pooled flight arena plus the
// delivery callback and scratch buffers. A shard's state is touched only
// by its own engine's events, by the cross-merge/global phases (which
// run with shards stopped), or at wiring time — never concurrently.
type pshard struct {
	ps        *ParallelSim
	idx       int
	en        *des.Engine
	flights   []pflight
	free      []uint32
	deliverFn des.ArgHandler
	nbuf      []int
	stats     transport.Stats
	// fstats accumulates this shard's message-fault verdicts; merging
	// per-shard stats is order-independent (counter sums, max time), so
	// the merged report stays worker-invariant.
	fstats fault.Stats
}

func (sh *pshard) alloc() uint32 {
	if k := len(sh.free); k > 0 {
		fi := sh.free[k-1]
		sh.free = sh.free[:k-1]
		return fi
	}
	sh.flights = append(sh.flights, pflight{})
	return uint32(len(sh.flights) - 1)
}

// send accepts a value from node `from` (owned by this shard) toward
// `to`, applying the fault plan (if any) before the normal path. Fault
// verdicts come from the sender's private stream in the sender's local
// send order — the same discipline as delay draws — so faulted runs
// stay worker-invariant.
func (sh *pshard) send(from, to int, value float64) {
	if ps := sh.ps; ps.msgFaults != nil {
		v := ps.msgFaults.Draw(from, sh.en.Now(), &sh.fstats)
		if v.Drop {
			// The sender paid for the message; the fault plan ate it.
			sh.stats.Sent++
			return
		}
		sh.sendOne(from, to, value, v.Delay)
		if v.Dup {
			sh.sendOne(from, to, value, 0)
		}
		return
	}
	sh.sendOne(from, to, value, 0)
}

// sendOne draws the delay from the sender's stream and routes the
// delivery to the destination's shard: an engine event here when `to`
// is local, a cross-shard outbox message otherwise. spikedDelay, when
// positive, is a fault-injected delay beyond MaxDelay (it still clears
// the lookahead floor, so spiked cross-shard deliveries stay safe); 0
// draws from the nominal law.
func (sh *pshard) sendOne(from, to int, value float64, spikedDelay float64) {
	ps := sh.ps
	now := sh.en.Now()
	d := spikedDelay
	if d == 0 {
		r := &ps.delayRands[from]
		// Delay in (MinDelay, MaxDelay]: the floor is the engine lookahead,
		// so every cross-shard delivery lands beyond the current safe window.
		d = ps.Cfg.MinDelay + (ps.Cfg.MaxDelay-ps.Cfg.MinDelay)*(1-r.Float64())
	}
	deliverAt := now + d
	sh.stats.Sent++
	dst := int(ps.shardOf[to])
	if dst == sh.idx {
		fi := sh.alloc()
		sh.flights[fi] = pflight{from: int32(from), to: int32(to), value: value, sentAt: now}
		sh.en.ScheduleArg(deliverAt, "psim.deliver", sh.deliverFn, uint64(fi))
		return
	}
	ps.P.SendCross(sh.idx, dst, des.CrossMsg{
		DeliverAt: deliverAt,
		W0:        uint64(uint32(from))<<32 | uint64(uint32(to)),
		W1:        math.Float64bits(now),
		W2:        math.Float64bits(value),
	})
}

// deliver hands flight fi to its destination node unless the edge was
// absent at any point of the flight (the paper's drop rule, checked
// against the graph's recorded history — an edge removed and re-added
// mid-flight still loses the message).
func (sh *pshard) deliver(fi uint32) {
	f := sh.flights[fi]
	sh.free = append(sh.free, fi)
	ps := sh.ps
	e := dyngraph.E(int(f.from), int(f.to))
	if !ps.Graph.ExistsThroughout(e, f.sentAt, sh.en.Now()) {
		sh.stats.Dropped++
		return
	}
	sh.stats.Delivered++
	ps.Nodes[f.to].OnMessage(int(f.from), f.value)
}

// broadcast sends value from `from` to every current neighbor, in
// ascending order (the deterministic fan-out order fixes the sender's
// delay draw order).
func (sh *pshard) broadcast(from int, value float64) int {
	sh.nbuf = sh.ps.Graph.AppendNeighbors(from, sh.nbuf[:0])
	for _, v := range sh.nbuf {
		sh.send(from, v, value)
	}
	return len(sh.nbuf)
}

// unicast sends value over one present edge (neighbor discovery's
// immediate beacon); a send over an absent edge is refused.
func (sh *pshard) unicast(from, to int, value float64) bool {
	if !sh.ps.Graph.Present(dyngraph.E(from, to)) {
		sh.stats.Refused++
		return false
	}
	sh.send(from, to, value)
	return true
}

// psender and ptopo are the parallel engine's seam implementations:
// sends route to the sending node's shard (each node only ever sends
// from its own shard's window, so shard-local state stays single-
// threaded), and neighbor scans read the shared graph — which global
// phases alone mutate, so window-time reads are race-free. Both
// indirect through the ParallelSim because build() wires nodes before
// the Graph exists (wire() resets it afterwards).
type psender struct{ ps *ParallelSim }

func (p psender) Broadcast(from int, value float64) int {
	return p.ps.shardFor(from).broadcast(from, value)
}

func (p psender) Send(from, to int, value float64) bool {
	return p.ps.shardFor(from).unicast(from, to, value)
}

type ptopo struct{ ps *ParallelSim }

func (p ptopo) AppendNeighbors(u int, buf []int) []int {
	return p.ps.Graph.AppendNeighbors(u, buf)
}

func (sh *pshard) reset() {
	sh.flights = sh.flights[:0]
	sh.free = sh.free[:0]
	sh.stats = transport.Stats{}
	sh.fstats = fault.Stats{}
}

// pdriver is one node's rate driver on its shard engine, mirroring the
// serial harness's driverState semantics (same per-node PRNG forks, same
// labels and scheduling pattern).
type pdriver struct {
	ps     *ParallelSim
	node   int
	hw     *clock.HardwareClock
	rand   des.Rand
	high   bool
	stepFn func()
	flipFn func()
}

func newPDriver(ps *ParallelSim, node int, hw *clock.HardwareClock) *pdriver {
	pd := &pdriver{ps: ps, node: node, hw: hw}
	pd.stepFn = func() {
		cfg := &pd.ps.Cfg
		pd.hw.SetRate(pd.rand.Range(1-cfg.Rho, 1+cfg.Rho))
		pd.en().ScheduleAfter(cfg.Driver.Interval*(0.5+pd.rand.Float64()), "clock.walk", pd.stepFn)
	}
	pd.flipFn = func() {
		pd.flip()
		pd.en().ScheduleAfter(pd.ps.Cfg.Driver.Interval, "clock.bang", pd.flipFn)
	}
	return pd
}

func (pd *pdriver) en() *des.Engine { return pd.ps.shardFor(pd.node).en }

func (pd *pdriver) flip() {
	if pd.high {
		pd.hw.SetRate(1 + pd.ps.Cfg.Rho)
	} else {
		pd.hw.SetRate(1 - pd.ps.Cfg.Rho)
	}
	pd.high = !pd.high
}

func (pd *pdriver) install(driveRand *des.Rand) {
	cfg := &pd.ps.Cfg
	switch cfg.Driver.Kind {
	case DriveConstant:
		pd.hw.SetRate(1)
	case DriveRandomWalk:
		if cfg.Driver.Interval <= 0 {
			panic("sim: RandomWalk interval must be positive")
		}
		driveRand.ForkInto(uint64(pd.node), &pd.rand)
		pd.hw.SetRate(pd.rand.Range(1-cfg.Rho, 1+cfg.Rho))
		pd.en().ScheduleAfter(cfg.Driver.Interval*(0.5+pd.rand.Float64()), "clock.walk", pd.stepFn)
	case DriveBangBang:
		if cfg.Driver.Interval <= 0 {
			panic("sim: BangBang interval must be positive")
		}
		pd.high = pd.node%2 == 0
		pd.flip()
		pd.en().ScheduleAfter(cfg.Driver.Interval, "clock.bang", pd.flipFn)
	default:
		panic("sim: unknown driver kind")
	}
}

// NewParallel wires a parallel simulation from the config without
// running it. The config must have Parallel set.
func NewParallel(cfg Config) *ParallelSim {
	ps := &ParallelSim{
		root:      des.NewRand(0),
		delayRoot: des.NewRand(0),
		driveRand: des.NewRand(0),
		phaseRand: des.NewRand(0),
	}
	ps.edgeFn = func(e dyngraph.Edge) {
		if d := math.Abs(ps.vals[e.U] - ps.vals[e.V]); d > ps.report.MaxAdjacentSkew {
			ps.report.MaxAdjacentSkew = d
		}
	}
	ps.sampleFn = func() {
		ps.observe()
		ps.P.Global().ScheduleAfter(ps.Cfg.SampleEvery, "sim.sample", ps.sampleFn)
	}
	ps.wire(cfg)
	return ps
}

// Reset rewires the simulation in place for cfg, reusing engines, graph
// storage, flight arenas, and per-node objects when the (N, Shards,
// MinDelay) shape is unchanged. After Reset the simulation behaves
// exactly like NewParallel(cfg): executions are bit-identical.
func (ps *ParallelSim) Reset(cfg Config) { ps.wire(cfg) }

func (ps *ParallelSim) shardFor(i int) *pshard { return ps.shards[ps.shardOf[i]] }

func (ps *ParallelSim) wire(cfg Config) {
	// Same contract as the serial harness: NewParallel/Reset panic on
	// programmer error, sim.Run/RunSweep return Validate's error.
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg = cfg.WithDefaults()
	if !cfg.Parallel {
		panic("sim: NewParallel requires Config.Parallel")
	}
	ps.Cfg = cfg

	if shape := (pshape{n: cfg.N, shards: cfg.Shards, minDelay: cfg.MinDelay}); ps.P == nil || shape != ps.shape {
		ps.build(cfg)
		ps.shape = shape
	} else {
		ps.P.Reset()
		for _, sh := range ps.shards {
			sh.reset()
		}
	}

	ps.root.Reseed(cfg.Seed)

	if cfg.Churn.Kind == ChurnRotatingStar {
		ps.initialEdges = nil
	} else {
		ps.initialEdges = cfg.Topology.Edges(cfg.N)
	}
	if ps.Graph == nil {
		ps.Graph = dyngraph.NewDynamic(cfg.N, ps.initialEdges)
	} else {
		ps.Graph.Reset(cfg.N, ps.initialEdges)
	}

	ps.root.ForkInto(0xde1a9, ps.delayRoot)
	for i := 0; i < cfg.N; i++ {
		ps.delayRoot.ForkInto(uint64(i), &ps.delayRands[i])
	}

	ps.root.ForkInto(0xd81fe, ps.driveRand)
	for i := 0; i < cfg.N; i++ {
		ps.Clocks[i].Reset(1)
		ps.Nodes[i].Reset(cfg.Node)
		ps.drivers[i].install(ps.driveRand)
	}

	// Neighbor discovery, subscribed once: churn events run in the global
	// phase, so the resulting immediate beacons are attributed to the
	// sending node's shard serially.
	if !ps.subscribed {
		ps.Graph.Subscribe(pdiscovery{ps})
		ps.subscribed = true
	}

	if ch := ps.churner(); ch != nil {
		ch.Install(ps.P.Global(), ps.Graph)
	}

	ps.root.ForkInto(0x9a5e, ps.phaseRand)
	for i := 0; i < cfg.N; i++ {
		ps.Nodes[i].Start(ps.phaseRand.Range(0, cfg.Node.BeaconEvery))
	}

	ps.wireFaults(cfg)

	ps.gradient = wireGradient(ps.gradient, cfg)

	if cap(ps.vals) < cfg.N {
		ps.vals = make([]float64, cfg.N)
	} else {
		ps.vals = ps.vals[:cfg.N]
	}
	ps.report = SkewReport{}
	ps.lastSampleT = 0
	ps.started = false
}

// wireFaults arms fault injection for one parallel run. Message faults
// draw inside shard events from per-sender streams; crash/recover and
// rate excursions are global-engine events, which run with every shard
// barriered at the event time, so touching a node or clock on another
// shard's engine is safe and deterministic.
func (ps *ParallelSim) wireFaults(cfg Config) {
	ps.faultOn = cfg.Faults.Enabled()
	ps.msgFaults = nil
	ps.downMask = nil
	ps.goodSince = -1
	if !ps.faultOn {
		return
	}
	ps.root.ForkInto(0xfa07, &ps.faultRoot)
	if cfg.Faults.MessageFaults() {
		if ps.msgFaultsPool == nil {
			ps.msgFaultsPool = fault.NewMessages()
		}
		ps.msgFaultsPool.Wire(cfg.Faults, cfg.MaxDelay, cfg.N, &ps.faultRoot)
		ps.msgFaults = ps.msgFaultsPool
	}
	if ps.injector == nil {
		ps.injector = fault.NewInjector()
		ps.faultHooks = fault.Hooks{
			Crash:   func(i int) { ps.Nodes[i].Crash() },
			Recover: func(i int) { ps.Nodes[i].Recover() },
			SetRate: func(i int, rate float64) { ps.Clocks[i].SetRate(rate) },
		}
	}
	ps.injector.Wire(cfg.Faults, cfg.N, cfg.Rho, &ps.faultRoot, ps.faultHooks)
	ps.injector.Install(ps.P.Global())
	ps.downMask = ps.injector.Down()
	ps.faultBound = cfg.GlobalSkewBound()
}

// build constructs the engine set and every per-node object for a new
// shape. Clocks bind to their shard's engine at construction, so a
// shape change cannot reuse them.
func (ps *ParallelSim) build(cfg Config) {
	ps.P = des.NewParallelEngine(cfg.Shards, cfg.MinDelay)
	ps.shardOf = make([]int32, cfg.N)
	ps.shards = make([]*pshard, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		sh := &pshard{ps: ps, idx: s, en: ps.P.Shard(s)}
		sh.deliverFn = func(arg uint64) { sh.deliver(uint32(arg)) }
		ps.shards[s] = sh
	}
	for i := 0; i < cfg.N; i++ {
		// Block partition: contiguous node ranges, so ring/grid topologies
		// keep almost all edges shard-internal.
		ps.shardOf[i] = int32(i * cfg.Shards / cfg.N)
	}
	// Shard block boundaries for the sample scan: first node of each
	// shard, with a backward min-pass so an empty shard (Shards > N)
	// collapses to a zero-width range.
	ps.shardStart = make([]int32, cfg.Shards+1)
	for s := 0; s <= cfg.Shards; s++ {
		ps.shardStart[s] = int32(cfg.N)
	}
	for i := cfg.N - 1; i >= 0; i-- {
		ps.shardStart[ps.shardOf[i]] = int32(i)
	}
	for s := cfg.Shards - 1; s >= 0; s-- {
		if ps.shardStart[s] > ps.shardStart[s+1] {
			ps.shardStart[s] = ps.shardStart[s+1]
		}
	}
	ps.sampleLo = make([]float64, cfg.Shards)
	ps.sampleHi = make([]float64, cfg.Shards)
	ps.sampleWorker = func() {
		defer ps.sampleWG.Done()
		for {
			s := int(ps.sampleNext.Add(1) - 1)
			if s >= len(ps.shards) {
				return
			}
			ps.observeShard(s)
		}
	}
	ps.P.SetCrossHandler(func(dst int, m des.CrossMsg) {
		sh := ps.shards[dst]
		fi := sh.alloc()
		sh.flights[fi] = pflight{
			from:   int32(m.W0 >> 32),
			to:     int32(uint32(m.W0)),
			value:  math.Float64frombits(m.W2),
			sentAt: math.Float64frombits(m.W1),
		}
		sh.en.ScheduleArg(m.DeliverAt, "psim.deliver", sh.deliverFn, uint64(fi))
	})

	ps.Clocks = make([]*clock.HardwareClock, cfg.N)
	ps.Nodes = make([]*gcs.Node, cfg.N)
	ps.drivers = make([]*pdriver, cfg.N)
	ps.delayRands = make([]des.Rand, cfg.N)
	for i := 0; i < cfg.N; i++ {
		hw := clock.New(ps.P.Shard(int(ps.shardOf[i])), 1)
		nd := gcs.New(i, hw, cfg.Node, psender{ps}, ptopo{ps})
		ps.Clocks[i] = hw
		ps.Nodes[i] = nd
		ps.drivers[i] = newPDriver(ps, i, hw)
	}
}

// pdiscovery relays topology events to the algorithm layer, like the
// serial harness's discovery: both endpoints of a fresh edge beacon
// immediately over it. Churn mutates the graph only from global-phase
// events, so the handlers run serially with every shard barriered.
type pdiscovery struct{ ps *ParallelSim }

func (d pdiscovery) EdgeAdded(t float64, e dyngraph.Edge) {
	d.ps.Nodes[e.U].OnEdgeAdded(e.V)
	d.ps.Nodes[e.V].OnEdgeAdded(e.U)
}

func (d pdiscovery) EdgeRemoved(t float64, e dyngraph.Edge) {}

func (ps *ParallelSim) churner() dyngraph.Churner {
	cfg := ps.Cfg
	switch cfg.Churn.Kind {
	case ChurnNone:
		return nil
	case ChurnVolatile:
		return dyngraph.VolatileEdges{
			Candidates: volatileCandidates(cfg.N, cfg.Churn.ExtraEdges, ps.initialEdges, ps.root.Fork(0xca9d)),
			Lifetime:   cfg.Churn.Lifetime,
			Absence:    cfg.Churn.Absence,
			Rand:       ps.root.Fork(0xc400),
		}
	case ChurnRotatingStar:
		return dyngraph.RotatingStar{
			Period:  cfg.Churn.Period,
			Overlap: cfg.Churn.Overlap,
		}
	}
	panic("sim: unknown churn kind")
}

// parallelSampleMinNodes gates the concurrent sample scan: below this
// node count the serial scan wins (and the tight allocs/op pins of the
// small-N benches stay intact — spawning sample workers costs a few
// allocations per sample). Tests lower it to force the concurrent path.
var parallelSampleMinNodes = 4096

// observeShard scans shard s's node block, filling the shared value
// slice (disjoint index ranges per shard) and the shard's partial
// extrema. Safe to run concurrently across shards: at the sample
// instant every shard is barriered, so clock reads are consistent and
// nothing else touches vals.
func (ps *ParallelSim) observeShard(s int) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := int(ps.shardStart[s]); i < int(ps.shardStart[s+1]); i++ {
		if ps.downMask != nil && ps.downMask[i] {
			// Crashed nodes are NaN-poisoned out of every consumer, exactly
			// as in the serial harness's observe.
			ps.vals[i] = math.NaN()
			continue
		}
		l := ps.Nodes[i].Logical()
		ps.vals[i] = l
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	ps.sampleLo[s], ps.sampleHi[s] = lo, hi
}

// observeScan computes the sample's global extrema and fills vals.
// Large runs with multiple workers scan shard blocks concurrently and
// merge the per-shard partials in fixed shard order — float min/max is
// exact and the blocks tile the index range, so the result is
// bit-identical to the serial left-to-right scan it replaces (which was
// the last O(n) serial stretch on the sampling path).
func (ps *ParallelSim) observeScan() (lo, hi float64) {
	n := len(ps.Nodes)
	if ps.runWorkers > 1 && n >= parallelSampleMinNodes {
		w := ps.runWorkers
		if w > len(ps.shards) {
			w = len(ps.shards)
		}
		ps.sampleNext.Store(0)
		ps.sampleWG.Add(w)
		for k := 0; k < w; k++ {
			go ps.sampleWorker()
		}
		ps.sampleWG.Wait()
		lo, hi = math.Inf(1), math.Inf(-1)
		for s := range ps.shards {
			if ps.sampleLo[s] < lo {
				lo = ps.sampleLo[s]
			}
			if ps.sampleHi[s] > hi {
				hi = ps.sampleHi[s]
			}
		}
		return lo, hi
	}
	for s := range ps.shards {
		ps.observeShard(s)
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for s := range ps.shards {
		if ps.sampleLo[s] < lo {
			lo = ps.sampleLo[s]
		}
		if ps.sampleHi[s] > hi {
			hi = ps.sampleHi[s]
		}
	}
	return lo, hi
}

// observe records one skew sample. It runs on the global engine, with
// every shard barriered at the sample instant, so every clock read is
// consistent.
func (ps *ParallelSim) observe() {
	lo, hi := ps.observeScan()
	spread := hi - lo
	if hi < lo {
		spread = 0 // every node down: no live pair to skew
	}
	if spread > ps.report.MaxGlobalSkew {
		ps.report.MaxGlobalSkew = spread
	}
	if ps.gradient != nil {
		ps.gradient.observe(ps.Graph, ps.vals)
	}
	ps.Graph.RangeCurrentEdges(ps.edgeFn)
	ps.report.FinalGlobalSkew = spread
	if ps.faultOn {
		if spread > ps.faultBound {
			ps.goodSince = -1
		} else if ps.goodSince < 0 {
			ps.goodSince = ps.P.Global().Now()
		}
	}
	ps.report.Samples++
	ps.lastSampleT = ps.P.Global().Now()
}

// Gradient returns the simulation's gradient checker, or nil when
// Config.CheckGradient is off.
func (ps *ParallelSim) Gradient() *GradientChecker { return ps.gradient }

// Run executes the scenario to its horizon and returns the report. Like
// the serial Run it is idempotent; the report is a pure function of the
// Config — Workers only decides how many goroutines execute the shard
// windows.
func (ps *ParallelSim) Run() SkewReport {
	cfg := ps.Cfg
	if !ps.started {
		ps.started = true
		ps.P.Global().Schedule(ps.P.Global().Now(), "sim.sample", ps.sampleFn)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ps.runWorkers = workers
	ps.P.Run(cfg.Horizon, workers)
	if ps.report.Samples == 0 || ps.lastSampleT < cfg.Horizon {
		ps.observe()
	}

	ps.report.Bound = cfg.GlobalSkewBound()
	ps.report.Transport = transport.Stats{}
	for _, sh := range ps.shards {
		ps.report.Transport.Sent += sh.stats.Sent
		ps.report.Transport.Delivered += sh.stats.Delivered
		ps.report.Transport.Dropped += sh.stats.Dropped
		ps.report.Transport.Refused += sh.stats.Refused
	}
	ps.report.EventsExecuted = ps.P.Executed()
	ps.report.EdgeAdds, ps.report.EdgeRemoves = ps.Graph.Stats()
	if ps.gradient != nil {
		ps.report.PerDistanceSkew = ps.gradient.PerDistance()
		ps.report.DistanceRecomputes = ps.gradient.Recomputes()
	}

	ps.report.MinRateSeen, ps.report.MaxRateSeen = math.Inf(1), math.Inf(-1)
	ps.report.TotalJumps, ps.report.TotalMessages = 0, 0
	ps.report.TotalBeacons, ps.report.TotalDiscoveries = 0, 0
	for i, hw := range ps.Clocks {
		mn, mx := hw.RateBoundsSeen()
		if mn < ps.report.MinRateSeen {
			ps.report.MinRateSeen = mn
		}
		if mx > ps.report.MaxRateSeen {
			ps.report.MaxRateSeen = mx
		}
		snap := ps.Nodes[i].Snap()
		ps.report.TotalJumps += snap.Jumps
		ps.report.TotalMessages += snap.Messages
		ps.report.TotalBeacons += snap.Beacons
		ps.report.TotalDiscoveries += snap.Discoveries
	}

	if ps.faultOn {
		// Per-shard fold in fixed shard order; Merge is order-independent
		// anyway (sums and maxes), so the result is worker-invariant.
		var fs fault.Stats
		for _, sh := range ps.shards {
			fs.Merge(sh.fstats)
		}
		fs.Merge(ps.injector.Stats())
		ps.report.Faults = fs
		ps.report.ReconvergenceTime = reconvergenceTime(fs, ps.goodSince)
	}
	return ps.report
}
