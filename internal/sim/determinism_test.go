package sim

import (
	"testing"

	"gcs/internal/simtest"
)

// churnyConfig exercises every stochastic subsystem at once: seeded
// RandomWalk clock drivers, VolatileEdges churn, and uniform random
// message delays.
func churnyConfig(seed uint64) Config {
	return Config{
		N:        12,
		Seed:     seed,
		Horizon:  15,
		Rho:      0.02,
		MaxDelay: 0.02,
		Topology: TopologySpec{Kind: TopoRing},
		Driver:   DriverSpec{Kind: DriveRandomWalk, Interval: 0.5},
		Churn: ChurnSpec{
			Kind:       ChurnVolatile,
			Lifetime:   1.5,
			Absence:    1.0,
			ExtraEdges: 10,
		},
	}
}

func TestSameSeedSameExecution(t *testing.T) {
	a := mustRun(t, churnyConfig(42))
	b := mustRun(t, churnyConfig(42))
	simtest.AssertSameReport(t, "same-seed rerun", b, a)
	if a.EventsExecuted == 0 || a.Transport.Delivered == 0 {
		t.Fatalf("degenerate execution: %+v", a)
	}
	if a.EdgeAdds == 0 || a.EdgeRemoves == 0 {
		t.Fatalf("churn never fired: %+v", a)
	}
}

func TestDifferentSeedDifferentExecution(t *testing.T) {
	a := mustRun(t, churnyConfig(1))
	b := mustRun(t, churnyConfig(2))
	// Seeds drive delays, churn, drift, and beacon phases; two executions
	// agreeing on every counter would mean the seed is ignored.
	simtest.AssertReportsDiffer(t, "seed 1 vs seed 2", a, b)
}
