package sim

import (
	"fmt"
	"math"
	"testing"

	"gcs/internal/simtest"
)

// TestParallelSampleScanInvariance pins the shard-local sample
// reduction: forcing the concurrent scan (threshold below N, multiple
// workers) must reproduce, bit for bit, the serial left-to-right scan
// (threshold above N, workers=1) on static and churning topologies.
// The concurrent path is otherwise reachable only at N >=
// parallelSampleMinNodes, far above what a unit test wants to run.
func TestParallelSampleScanInvariance(t *testing.T) {
	defer func(old int) { parallelSampleMinNodes = old }(parallelSampleMinNodes)

	for name, base := range map[string]Config{
		"ring":  parallelRingConfig(96, 5),
		"churn": parallelChurnConfig(64, 4),
	} {
		t.Run(name, func(t *testing.T) {
			parallelSampleMinNodes = 1 << 30 // serial scan, regardless of workers
			ref := base
			ref.Workers = 1
			want := mustRun(t, ref)
			if want.Samples < 2 || want.MaxGlobalSkew <= 0 {
				t.Fatalf("degenerate reference run: %+v", want)
			}
			parallelSampleMinNodes = 1 // concurrent scan from the first sample
			for _, workers := range []int{2, 4} {
				cfg := base
				cfg.Workers = workers
				got := mustRun(t, cfg)
				simtest.AssertSameReport(t, fmt.Sprintf("concurrent scan workers=%d vs serial scan", workers), got, want)
			}
		})
	}
}

// TestObserveShardBlocks pins the block decomposition itself: the
// shard ranges tile [0, N) exactly, in index order. (Shards > N is
// clamped to N by WithDefaults before build sees it, so {3,5} exercises
// the clamp rather than empty blocks.)
func TestObserveShardBlocks(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{96, 5}, {7, 3}, {4, 4}, {3, 5},
	} {
		cfg := parallelRingConfig(tc.n, tc.shards)
		ps := NewParallel(cfg)
		shards := len(ps.shards)
		if got := len(ps.shardStart); got != shards+1 {
			t.Fatalf("n=%d shards=%d: len(shardStart) = %d, want %d", tc.n, tc.shards, got, shards+1)
		}
		if ps.shardStart[0] != 0 || int(ps.shardStart[shards]) != tc.n {
			t.Fatalf("n=%d shards=%d: blocks do not tile [0,n): %v", tc.n, tc.shards, ps.shardStart)
		}
		for s := 0; s < shards; s++ {
			if ps.shardStart[s] > ps.shardStart[s+1] {
				t.Fatalf("n=%d shards=%d: non-monotone blocks: %v", tc.n, tc.shards, ps.shardStart)
			}
			for i := ps.shardStart[s]; i < ps.shardStart[s+1]; i++ {
				if ps.shardOf[i] != int32(s) {
					t.Fatalf("n=%d shards=%d: node %d in block %d but shardOf=%d", tc.n, tc.shards, i, s, ps.shardOf[i])
				}
			}
		}
	}
}

// TestObserveScanAllDown pins the every-node-down corner under the
// concurrent scan: all blocks return +Inf/-Inf partials and the merged
// spread clamps to zero, exactly as the serial scan does.
func TestObserveScanAllDown(t *testing.T) {
	defer func(old int) { parallelSampleMinNodes = old }(parallelSampleMinNodes)
	parallelSampleMinNodes = 1

	cfg := parallelRingConfig(12, 3)
	ps := NewParallel(cfg)
	ps.runWorkers = 2
	ps.downMask = make([]bool, cfg.N)
	for i := range ps.downMask {
		ps.downMask[i] = true
	}
	lo, hi := ps.observeScan()
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Fatalf("all-down scan: lo=%v hi=%v, want +Inf/-Inf", lo, hi)
	}
	for i, v := range ps.vals {
		if !math.IsNaN(v) {
			t.Fatalf("node %d not NaN-poisoned: %v", i, v)
		}
	}
}
