package rt

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gcs/internal/fault"
	"gcs/internal/seam"
	"gcs/internal/transport"
)

// Router is the real-time runtime's in-process transport and live
// topology: the seam.Sender and seam.Topology every node is wired to.
// Sends draw a bounded random delay from the sender's own PRNG stream
// (so delay sequences are per-sender deterministic, like the parallel
// DES engine's) and deliver through a time.AfterFunc into the
// receiver's event queue. Edge presence is re-checked at delivery time:
// a message whose edge disappeared mid-flight is lost, the runtime's
// rendering of the model's edge-removal losses.
//
// Adjacency is guarded by an RWMutex — node goroutines read it on
// every broadcast and fast-mode scan, the churner writes it. Lock
// order: a host lock may be held while taking the router lock, never
// the reverse (the sampler snapshots edges before touching hosts, the
// churner enqueues discovery only after releasing the write lock).
type Router struct {
	r                  *Runtime
	minDelay, maxDelay float64
	// faults, when non-nil, draws per-send fault verdicts (drop, dup,
	// delay spike) from per-sender streams, the same fault.Messages
	// engine the DES transport uses.
	faults *fault.Messages

	mu  sync.RWMutex
	adj [][]int // sorted neighbor slices, symmetric
	// edgeAdds/edgeRemoves count distinct edge insertions/removals (an
	// add of a present edge or remove of an absent one is a no-op).
	edgeAdds, edgeRemoves int

	sent, delivered, dropped, refused atomic.Uint64
}

var (
	_ seam.Sender   = (*Router)(nil)
	_ seam.Topology = (*Router)(nil)
)

func newRouter(r *Runtime, n int, minDelay, maxDelay float64) *Router {
	return &Router{r: r, minDelay: minDelay, maxDelay: maxDelay, adj: make([][]int, n)}
}

// drawDelay returns a nominal delay in (minDelay, maxDelay], the
// transport.UniformDelayIn law over the sender's own stream.
func (rt *Router) drawDelay(h *host) float64 {
	return rt.minDelay + (rt.maxDelay-rt.minDelay)*(1-h.delayRand.Float64())
}

// installEdge inserts an initial-topology edge without counting it as a
// churn add, mirroring dyngraph.NewDynamic's silent initial edge set.
func (rt *Router) installEdge(u, v int) {
	rt.adj[u], _ = insertSorted(rt.adj[u], v)
	rt.adj[v], _ = insertSorted(rt.adj[v], u)
}

// insertSorted/removeSorted maintain one endpoint's sorted neighbor
// slice, reporting whether the set changed.
func insertSorted(s []int, v int) ([]int, bool) {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

func removeSorted(s []int, v int) ([]int, bool) {
	i := sort.SearchInts(s, v)
	if i >= len(s) || s[i] != v {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

// addEdge inserts {u, v}, reporting whether it was absent before.
func (rt *Router) addEdge(u, v int) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var added bool
	rt.adj[u], added = insertSorted(rt.adj[u], v)
	if !added {
		return false
	}
	rt.adj[v], _ = insertSorted(rt.adj[v], u)
	rt.edgeAdds++
	return true
}

// removeEdge deletes {u, v}, reporting whether it was present.
func (rt *Router) removeEdge(u, v int) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var removed bool
	rt.adj[u], removed = removeSorted(rt.adj[u], v)
	if !removed {
		return false
	}
	rt.adj[v], _ = removeSorted(rt.adj[v], u)
	rt.edgeRemoves++
	return true
}

// present reports edge presence; callers hold rt.mu (either mode).
func (rt *Router) present(u, v int) bool {
	s := rt.adj[u]
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// AppendNeighbors implements seam.Topology.
func (rt *Router) AppendNeighbors(u int, buf []int) []int {
	rt.mu.RLock()
	buf = append(buf, rt.adj[u]...)
	rt.mu.RUnlock()
	return buf
}

// Broadcast implements seam.Sender: one send per current neighbor, in
// ascending order (fixing the sender's delay-draw order, like the DES
// transports). Runs on the sending node's goroutine.
func (rt *Router) Broadcast(from int, value float64) int {
	h := rt.r.hosts[from]
	rt.mu.RLock()
	h.sendBuf = append(h.sendBuf[:0], rt.adj[from]...)
	rt.mu.RUnlock()
	for _, to := range h.sendBuf {
		rt.send(from, to, value)
	}
	return len(h.sendBuf)
}

// Send implements seam.Sender's unicast (neighbor discovery's immediate
// beacon); a send over an absent edge is refused.
func (rt *Router) Send(from, to int, value float64) bool {
	rt.mu.RLock()
	ok := rt.present(from, to)
	rt.mu.RUnlock()
	if !ok {
		rt.refused.Add(1)
		return false
	}
	rt.send(from, to, value)
	return true
}

// send accepts a value over an edge known to be present, applying the
// fault plan first. Accounting mirrors the DES transport: a
// fault-dropped message counts Sent (the sender paid for it), a dup's
// copy counts as its own send with its own delay draw.
func (rt *Router) send(from, to int, value float64) {
	h := rt.r.hosts[from]
	var v fault.Verdict
	if rt.faults != nil {
		v = rt.faults.Draw(from, rt.r.simNow(), &h.fstats)
	}
	if v.Drop {
		rt.sent.Add(1)
		return
	}
	delay := v.Delay
	if delay == 0 {
		delay = rt.drawDelay(h)
	}
	rt.deliverAfter(from, to, value, delay)
	if v.Dup {
		rt.deliverAfter(from, to, value, rt.drawDelay(h))
	}
}

// deliverAfter schedules one delivery. The presence re-check and the
// node callback run in the receiver's event context.
func (rt *Router) deliverAfter(from, to int, value float64, delay float64) {
	rt.sent.Add(1)
	dst := rt.r.hosts[to]
	time.AfterFunc(durOf(delay), func() {
		dst.enqueue(func() {
			rt.mu.RLock()
			ok := rt.present(from, to)
			rt.mu.RUnlock()
			if !ok {
				rt.dropped.Add(1)
				return
			}
			rt.delivered.Add(1)
			dst.node.OnMessage(from, value)
		})
	})
}

// Stats returns the traffic counters in the shared report shape.
// Coalesced is always 0: the runtime sends every value as its own
// datagram.
func (rt *Router) Stats() transport.Stats {
	return transport.Stats{
		Sent:      rt.sent.Load(),
		Delivered: rt.delivered.Load(),
		Dropped:   rt.dropped.Load(),
		Refused:   rt.refused.Load(),
	}
}

// churnStats returns the distinct edge add/remove counts (initial
// edges excluded, like dyngraph.Dynamic.Stats).
func (rt *Router) churnStats() (adds, removes int) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.edgeAdds, rt.edgeRemoves
}

// snapshotEdges appends every current edge as an (u, v) pair with u < v
// to buf and returns it. The sampler copies under the read lock and
// releases before touching host locks (lock-order discipline).
func (rt *Router) snapshotEdges(buf [][2]int) [][2]int {
	rt.mu.RLock()
	for u, nbrs := range rt.adj {
		for _, v := range nbrs {
			if u < v {
				buf = append(buf, [2]int{u, v})
			}
		}
	}
	rt.mu.RUnlock()
	return buf
}
