// Package rt is the real-time runtime: the same GCS node logic the DES
// harness runs (internal/gcs against the internal/seam interfaces), but
// executed as one goroutine per node over in-process channels, with
// per-node drifting wall clocks and genuinely concurrent bounded-delay
// message passing. Where the DES proves properties of the algorithm
// under a perfectly controlled event order, rt checks that those
// properties survive a real scheduler: the cross-harness validation
// suite runs the same scenarios through both and asserts both satisfy
// the same analytic skew bounds.
//
// One simulated time unit is one wall second. Under testing/synctest
// (GOEXPERIMENT=synctest) the wall clock is the bubble's fake clock, so
// a 10-unit horizon completes in milliseconds, timers fire in exact
// deadline order, and runs are deterministic; outside a bubble the same
// code runs against real time (the `gcsim realtime` subcommand).
//
// Concurrency structure:
//
//   - host: one per node. A mutex serializes the node's event
//     executions; a buffered channel feeds them to the node's
//     goroutine. Everything that touches gcs.Node state — timer
//     firings, deliveries, fault injections — is enqueued and runs
//     under the host lock on the host's goroutine.
//   - DriftClock (clock.go): the node's hardware clock, a
//     piecewise-linear function of wall time with rate in
//     [1-rho, 1+rho] (or outside it, under rate-excursion faults).
//   - Router (router.go): shared topology + transport; adjacency under
//     an RWMutex, deliveries via time.AfterFunc into the receiver's
//     queue. Lock order is host -> router, never the reverse.
//   - The sampler runs on the Run caller's goroutine, sleeping between
//     skew observations; its sampling instants are offset by an
//     irrational-ish phase (0.382 of a period) so they never coincide
//     with driver flips or churn rotations.
package rt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gcs/internal/des"
	"gcs/internal/fault"
	"gcs/internal/gcs"
	"gcs/internal/sim"
)

// samplePhase offsets sampling instants to (k+samplePhase)*SampleEvery,
// dodging exact coincidence with periodic drivers and churn (which fire
// at integer multiples of their intervals).
const samplePhase = 0.382

// host owns one node's execution context: a goroutine draining an event
// queue, with a mutex held around each event so the sampler can take
// consistent off-goroutine readings between events.
type host struct {
	r  *Runtime
	id int

	mu     sync.Mutex
	events chan func()

	clk  *DriftClock
	node *gcs.Node

	// Per-node PRNG streams, forked like the parallel DES harness's so
	// every draw sequence depends only on this node's own event order.
	delayRand des.Rand // message delays (router, sender-side)
	driveRand des.Rand // rate-driver draws
	crashRand des.Rand // crash/recover schedule
	rateRand  des.Rand // rate-excursion schedule
	fstats    fault.Stats

	sendBuf []int // reusable broadcast fan-out buffer

	high      bool // BangBang driver phase
	excursion bool // rate-excursion chain phase (inside an excursion)

	// Reusable chain timers: each drives a self-rescheduling event chain
	// (driver steps; crash/recover; excursion start/end), so the callback
	// is fixed and the timer is re-armed in place.
	driverT, crashT, rateT *time.Timer
}

// enqueue hands fn to the host's goroutine, giving up at shutdown.
// Never called while holding any host lock (timer and churn goroutines
// only), so a full queue blocks the producer without deadlock risk.
func (h *host) enqueue(fn func()) {
	select {
	case h.events <- fn:
	case <-h.r.done:
	}
}

// loop is the node goroutine: one event at a time, under the host lock.
func (h *host) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case fn := <-h.events:
			h.mu.Lock()
			fn()
			h.mu.Unlock()
			h.r.events.Add(1)
		case <-h.r.done:
			return
		}
	}
}

// arm (re)schedules a chain timer d simulated seconds out. fn is bound
// on first use only — subsequent calls must pass the same chain step,
// which then re-runs on the host's goroutine per firing.
func (h *host) arm(tp **time.Timer, d float64, fn func()) {
	dur := durOf(d)
	if *tp == nil {
		*tp = time.AfterFunc(dur, func() { h.enqueue(fn) })
		return
	}
	(*tp).Stop()
	(*tp).Reset(dur)
}

// walkStep is the RandomWalk driver chain: redraw an in-band rate, then
// re-arm at a jittered interval.
func (h *host) walkStep() {
	cfg := &h.r.cfg
	h.clk.SetRate(h.driveRand.Range(1-cfg.Rho, 1+cfg.Rho))
	h.arm(&h.driverT, cfg.Driver.Interval*(0.5+h.driveRand.Float64()), h.walkStep)
}

// flip applies one BangBang half-period: pin the rate to the band edge
// and alternate.
func (h *host) flip() {
	if h.high {
		h.clk.SetRate(1 + h.r.cfg.Rho)
	} else {
		h.clk.SetRate(1 - h.r.cfg.Rho)
	}
	h.high = !h.high
}

// flipStep is the BangBang driver chain.
func (h *host) flipStep() {
	h.flip()
	h.arm(&h.driverT, h.r.cfg.Driver.Interval, h.flipStep)
}

func noteFault(st *fault.Stats, t float64) {
	if t > st.LastFaultT {
		st.LastFaultT = t
	}
}

// crashStep is the crash/recover chain, alternating on the node's down
// state, with the same draw order as fault.Injector: crash, then a
// downtime draw schedules the recovery; recovery draws the next onset
// and schedules it only inside the injection window.
func (h *host) crashStep() {
	spec := &h.r.cfg.Faults
	now := h.r.simNow()
	if !h.node.Down() {
		h.node.Crash()
		h.fstats.Crashes++
		noteFault(&h.fstats, now)
		if spec.CrashStop {
			return
		}
		h.arm(&h.crashT, h.crashRand.Exp(spec.CrashDowntime), h.crashStep)
		return
	}
	h.node.Recover()
	h.fstats.Recoveries++
	noteFault(&h.fstats, now)
	if t := now + h.crashRand.Exp(spec.CrashEvery); t <= spec.Until {
		h.arm(&h.crashT, t-now, h.crashStep)
	}
}

// rateStep is the rate-excursion chain: force the hardware rate outside
// the [1-rho, 1+rho] band for an exponential duration, then restore 1
// and schedule the next onset inside the injection window. Draw order
// matches fault.Injector (magnitude, then direction, then duration).
func (h *host) rateStep() {
	spec := &h.r.cfg.Faults
	now := h.r.simNow()
	if !h.excursion {
		h.fstats.RateExcursions++
		noteFault(&h.fstats, now)
		r := &h.rateRand
		mag := 1 + (spec.RateExcursionFactor-1)*(1-r.Float64())
		rate := 1 + mag*h.r.cfg.Rho
		if r.Bool(0.5) {
			rate = 1 - mag*h.r.cfg.Rho
			if rate < 0.05 {
				rate = 0.05 // hardware clocks must keep running forward
			}
		}
		h.clk.SetRate(rate)
		h.excursion = true
		h.arm(&h.rateT, r.Exp(spec.RateExcursionFor), h.rateStep)
		return
	}
	h.clk.SetRate(1)
	noteFault(&h.fstats, now)
	h.excursion = false
	if t := now + h.rateRand.Exp(spec.RateExcursionEvery); t <= spec.Until {
		h.arm(&h.rateT, t-now, h.rateStep)
	}
}

// Runtime is one real-time execution of a scenario Config. Build with
// New, execute once with Run. Unlike sim.Simulation it is not reusable:
// a run's goroutines, timers, and channels are built fresh inside Run so
// the whole lifecycle fits in one synctest bubble.
type Runtime struct {
	cfg    sim.Config
	hosts  []*host
	router *Router
	start  time.Time
	done   chan struct{}
	events atomic.Uint64

	// Sampler-owned observation state.
	vals       []float64
	edges      [][2]int
	report     sim.SkewReport
	faultBound float64
	goodSince  float64

	// churnMu guards the churn chain's timers: the rotate chain re-arms
	// them from its own goroutine while shutdown stops them from Run's.
	churnMu             sync.Mutex
	churnT, starRemoveT *time.Timer
}

// Supports reports whether the real-time runtime can execute cfg,
// returning a descriptive error for the features only the DES harness
// provides.
func Supports(cfg sim.Config) error {
	switch {
	case cfg.Parallel:
		return fmt.Errorf("rt: Parallel selects the sharded DES engine; the real-time runtime is inherently concurrent")
	case cfg.CheckGradient:
		return fmt.Errorf("rt: CheckGradient requires the DES harness's consistent-cut distance tracking")
	case cfg.Churn.Kind == sim.ChurnVolatile:
		return fmt.Errorf("rt: volatile churn is not implemented in the real-time runtime (use the DES harness)")
	}
	return nil
}

// New validates cfg and prepares a runtime. The config semantics are
// sim's: same defaulting, same analytic bounds, same fault plan.
func New(cfg sim.Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := Supports(cfg); err != nil {
		return nil, err
	}
	return &Runtime{cfg: cfg.WithDefaults()}, nil
}

// simNow is the simulated time: wall seconds since the run started.
func (r *Runtime) simNow() float64 { return time.Since(r.start).Seconds() } //gcslint:allow nondeterminism — rt's simulated time IS wall time by definition

// closed reports whether the run is shutting down; detached goroutines
// (churn) check it so late timer firings cannot mutate a finished run.
func (r *Runtime) closed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// discover relays a fresh edge to both endpoint nodes (the immediate
// beacon exchange the DES harness's discovery subscriber performs).
// inline runs the callbacks directly — only legal during single-threaded
// setup, before the node goroutines launch.
func (r *Runtime) discover(u, v int, inline bool) {
	hu, hv := r.hosts[u], r.hosts[v]
	if inline {
		hu.node.OnEdgeAdded(v)
		hv.node.OnEdgeAdded(u)
		return
	}
	hu.enqueue(func() { hu.node.OnEdgeAdded(v) })
	hv.enqueue(func() { hv.node.OnEdgeAdded(u) })
}

// addStar inserts the complete star around hub, firing discovery for
// every edge actually added.
func (r *Runtime) addStar(hub int, inline bool) {
	for v := 0; v < r.cfg.N; v++ {
		if v != hub && r.router.addEdge(hub, v) {
			r.discover(hub, v, inline)
		}
	}
}

// removeStar tears down hub's star, keeping edges shared with keepHub's
// (dyngraph.RotatingStar's keep rule).
func (r *Runtime) removeStar(hub, keepHub int) {
	for v := 0; v < r.cfg.N; v++ {
		if v == hub || v == keepHub || hub == keepHub {
			continue
		}
		r.router.removeEdge(hub, v)
	}
}

// installDriver mirrors the DES driverState.install sequence for node i.
func (r *Runtime) installDriver(i int, h *host, driveRand *des.Rand) {
	cfg := &r.cfg
	switch cfg.Driver.Kind {
	case sim.DriveConstant:
		h.clk.SetRate(1)
	case sim.DriveRandomWalk:
		driveRand.ForkInto(uint64(i), &h.driveRand)
		h.clk.SetRate(h.driveRand.Range(1-cfg.Rho, 1+cfg.Rho))
		h.arm(&h.driverT, cfg.Driver.Interval*(0.5+h.driveRand.Float64()), h.walkStep)
	case sim.DriveBangBang:
		h.high = i%2 == 0
		h.flip()
		h.arm(&h.driverT, cfg.Driver.Interval, h.flipStep)
	default:
		panic("rt: unknown driver kind")
	}
}

// sample takes one skew observation: snapshot the edge set (router lock
// only), then read each node under its host lock. Under synctest the
// sampler only wakes once every event at earlier instants has been fully
// processed and every goroutine is durably blocked, so the observation
// is a consistent cut; in real time it is a best-effort cut, which the
// non-bubble smoke tests account for with slack.
func (r *Runtime) sample() {
	r.edges = r.router.snapshotEdges(r.edges[:0])
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, h := range r.hosts {
		h.mu.Lock()
		if h.node.Down() {
			// NaN-poison crashed nodes, like the DES sampler: NaN fails every
			// comparison below, so down nodes drop out of both skew folds.
			r.vals[i] = math.NaN()
		} else {
			l := h.node.Logical()
			r.vals[i] = l
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		h.mu.Unlock()
	}
	spread := hi - lo
	if hi < lo {
		spread = 0 // every node down: no live pair to skew
	}
	if spread > r.report.MaxGlobalSkew {
		r.report.MaxGlobalSkew = spread
	}
	for _, e := range r.edges {
		if d := math.Abs(r.vals[e[0]] - r.vals[e[1]]); d > r.report.MaxAdjacentSkew {
			r.report.MaxAdjacentSkew = d
		}
	}
	r.report.FinalGlobalSkew = spread
	if r.cfg.Faults.Enabled() {
		if spread > r.faultBound {
			r.goodSince = -1
		} else if r.goodSince < 0 {
			r.goodSince = r.simNow()
		}
	}
	r.report.Samples++
}

// sleepUntil blocks until simulated time t (wall-clock sleep; fake-clock
// advance inside a synctest bubble).
func (r *Runtime) sleepUntil(t float64) {
	if d := t - r.simNow(); d > 0 {
		time.Sleep(durOf(d))
	}
}

// reconvergence replicates the DES report metric (sim.reconvergenceTime)
// from the merged fault stats and the last bound re-entry time.
func reconvergence(fs fault.Stats, goodSince float64) float64 {
	if fs.Total() == 0 {
		return 0
	}
	if goodSince < 0 {
		return math.Inf(1)
	}
	if d := goodSince - fs.LastFaultT; d > 0 {
		return d
	}
	return 0
}

func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// Run executes the scenario to its horizon and returns the report in
// the shared sim.SkewReport shape. Everything — hosts, timers, channels,
// goroutines — is built inside Run, so a synctest test simply calls Run
// inside the bubble; Run returns only after every node goroutine has
// exited. Call once per Runtime.
func (r *Runtime) Run() sim.SkewReport {
	cfg := r.cfg
	n := cfg.N
	r.start = time.Now() //gcslint:allow nondeterminism — run epoch; all rt timestamps are offsets from it
	r.done = make(chan struct{})
	r.report = sim.SkewReport{}
	r.goodSince = -1
	r.vals = make([]float64, n)

	// PRNG streams, forked with the same subsystem ids as the DES harness
	// (structural mirroring; cross-harness comparisons are bound-based,
	// not bit-based, since the executions schedule differently).
	root := des.NewRand(cfg.Seed)
	var delayRoot, driveRand, phaseRand, faultRoot des.Rand
	root.ForkInto(0xde1a9, &delayRoot)
	root.ForkInto(0xd81fe, &driveRand)
	root.ForkInto(0x9a5e, &phaseRand)

	r.router = newRouter(r, n, cfg.MinDelay, cfg.MaxDelay)
	r.hosts = make([]*host, n)
	for i := 0; i < n; i++ {
		h := &host{r: r, id: i, events: make(chan func(), 128)}
		h.clk = newDriftClock(h, r.start)
		h.node = gcs.New(i, h.clk, cfg.Node, r.router, r.router)
		delayRoot.ForkInto(uint64(i), &h.delayRand)
		r.hosts[i] = h
	}

	// Initial topology. The rotating star ignores the backbone spec and
	// adds its first star through the counting/discovering path at t=0,
	// exactly like dyngraph.RotatingStar.Install against an empty graph.
	star := cfg.Churn.Kind == sim.ChurnRotatingStar
	if star {
		r.addStar(0, true)
	} else {
		for _, e := range cfg.Topology.Edges(n) {
			r.router.installEdge(e.U, e.V)
		}
	}

	for i, h := range r.hosts {
		r.installDriver(i, h, &driveRand)
	}

	// Fault plan: per-node streams forked with the fault package's ids
	// (message verdicts fork 1 inside Messages.Wire; crash fork 2; rate
	// fork 3), first onsets clamped to the injection window.
	spec := cfg.Faults
	if spec.Enabled() {
		root.ForkInto(0xfa07, &faultRoot)
		if spec.MessageFaults() {
			m := fault.NewMessages()
			m.Wire(spec, cfg.MaxDelay, n, &faultRoot)
			r.router.faults = m
		}
		var crashRoot, rateRoot des.Rand
		faultRoot.ForkInto(2, &crashRoot)
		faultRoot.ForkInto(3, &rateRoot)
		for i, h := range r.hosts {
			crashRoot.ForkInto(uint64(i), &h.crashRand)
			rateRoot.ForkInto(uint64(i), &h.rateRand)
		}
		if spec.CrashEvery > 0 {
			for _, h := range r.hosts {
				if t := h.crashRand.Exp(spec.CrashEvery); t <= spec.Until {
					h.arm(&h.crashT, t, h.crashStep)
				}
			}
		}
		if spec.RateExcursionEvery > 0 {
			for _, h := range r.hosts {
				if t := h.rateRand.Exp(spec.RateExcursionEvery); t <= spec.Until {
					h.arm(&h.rateT, t, h.rateStep)
				}
			}
		}
		r.faultBound = cfg.GlobalSkewBound()
	}

	// Rotating-star churn chain, on its own goroutine timeline. k, old,
	// and next are owned by the chain (each firing schedules the next, so
	// accesses are ordered through the timers).
	if star {
		k := 0
		var rotate func()
		rotate = func() {
			if r.closed() {
				return
			}
			old := k % n
			k++
			next := k % n
			r.addStar(next, false)
			r.churnMu.Lock()
			r.starRemoveT = time.AfterFunc(durOf(cfg.Churn.Overlap), func() {
				if !r.closed() {
					r.removeStar(old, next)
				}
			})
			r.churnT.Reset(durOf(cfg.Churn.Period))
			r.churnMu.Unlock()
		}
		r.churnT = time.AfterFunc(durOf(cfg.Churn.Period), rotate)
	}

	// Start every node at its drawn beacon phase, then launch the node
	// goroutines. Setup so far ran single-threaded at t=0.
	for _, h := range r.hosts {
		h.node.Start(phaseRand.Range(0, cfg.Node.BeaconEvery))
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for _, h := range r.hosts {
		go h.loop(&wg)
	}

	// Sampler: t=0, then phase-offset periodic instants, then the horizon.
	r.sample()
	for k := 0; ; k++ {
		next := (float64(k) + samplePhase) * cfg.SampleEvery
		if next >= cfg.Horizon {
			break
		}
		r.sleepUntil(next)
		r.sample()
	}
	r.sleepUntil(cfg.Horizon)
	r.sample()

	// Quiesce before shutdown: periodic drivers and churn land on exact
	// integer instants, so a wave of events can fire at precisely the
	// horizon and race the done signal through the loop select (which
	// picks pseudorandomly between ready cases, bubble or not), making
	// EventsExecuted schedule-dependent. A grace sleep lets that wave
	// drain first — under synctest it is an exact barrier, since the fake
	// clock only advances once every goroutine is durably blocked again.
	time.Sleep(time.Millisecond)

	// Shutdown: release the node goroutines, then silence every
	// long-lived timer chain. In-flight delivery callbacks only ever
	// enqueue, and enqueue gives up once done is closed.
	close(r.done)
	wg.Wait()
	for _, h := range r.hosts {
		stopTimer(h.driverT)
		stopTimer(h.crashT)
		stopTimer(h.rateT)
		h.mu.Lock()
		for _, tm := range h.clk.timers {
			tm.Stop()
		}
		h.mu.Unlock()
	}
	r.churnMu.Lock()
	stopTimer(r.churnT)
	stopTimer(r.starRemoveT)
	r.churnMu.Unlock()

	rep := &r.report
	rep.Bound = cfg.GlobalSkewBound()
	rep.Transport = r.router.Stats()
	rep.EventsExecuted = r.events.Load()
	rep.EdgeAdds, rep.EdgeRemoves = r.router.churnStats()
	rep.MinRateSeen, rep.MaxRateSeen = math.Inf(1), math.Inf(-1)
	for _, h := range r.hosts {
		mn, mx := h.clk.RateBoundsSeen()
		if mn < rep.MinRateSeen {
			rep.MinRateSeen = mn
		}
		if mx > rep.MaxRateSeen {
			rep.MaxRateSeen = mx
		}
		snap := h.node.Snap()
		rep.TotalJumps += snap.Jumps
		rep.TotalMessages += snap.Messages
		rep.TotalBeacons += snap.Beacons
		rep.TotalDiscoveries += snap.Discoveries
	}
	if spec.Enabled() {
		var fs fault.Stats
		for _, h := range r.hosts {
			fs.Merge(h.fstats)
		}
		rep.Faults = fs
		rep.ReconvergenceTime = reconvergence(fs, r.goodSince)
	}
	return *rep
}

// Run wires and executes cfg in one call — the rt analog of sim.Run.
func Run(cfg sim.Config) (sim.SkewReport, error) {
	r, err := New(cfg)
	if err != nil {
		return sim.SkewReport{}, err
	}
	return r.Run(), nil
}
