package rt

import (
	"math"
	"testing"

	"gcs/internal/sim"
)

// TestRealTimeSmoke runs a small ring against the real wall clock (no
// synctest bubble): half a second of wall time, loose assertions. The
// tight bound checks live in the synctest suite, where the clock is
// fake and the schedule deterministic; here we only require that the
// runtime actually runs — nodes beacon, messages flow, the report is
// internally consistent — under a real scheduler.
func TestRealTimeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time smoke test sleeps wall-clock time")
	}
	cfg := sim.Config{
		N:        8,
		Seed:     1,
		Horizon:  0.5,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: sim.TopologySpec{Kind: sim.TopoRing},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples < 3 {
		t.Fatalf("samples = %d, want at least t=0, one periodic, horizon", rep.Samples)
	}
	if rep.TotalBeacons == 0 || rep.Transport.Sent == 0 || rep.Transport.Delivered == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.TotalMessages == 0 {
		t.Fatalf("nodes ingested nothing: %+v", rep)
	}
	if math.IsNaN(rep.MaxGlobalSkew) || rep.MaxGlobalSkew < 0 {
		t.Fatalf("degenerate skew %v", rep.MaxGlobalSkew)
	}
	// Real-time scheduling is fuzzy, so only a generous sanity bound.
	if rep.MaxGlobalSkew > 10*rep.Bound+1 {
		t.Fatalf("global skew %v wildly above bound %v", rep.MaxGlobalSkew, rep.Bound)
	}
	if rep.MinRateSeen < 1-cfg.Rho-1e-12 || rep.MaxRateSeen > 1+cfg.Rho+1e-12 {
		t.Fatalf("rates [%v, %v] outside the drift band", rep.MinRateSeen, rep.MaxRateSeen)
	}
	if rep.EventsExecuted == 0 {
		t.Fatal("no events executed")
	}
}

// TestSupportsRejectsDESOnlyFeatures pins the feature boundary between
// the harnesses, through both Supports and the New error path.
func TestSupportsRejectsDESOnlyFeatures(t *testing.T) {
	base := sim.Config{N: 4, Horizon: 1, Topology: sim.TopologySpec{Kind: sim.TopoRing}}
	for name, mut := range map[string]func(*sim.Config){
		"parallel":      func(c *sim.Config) { c.Parallel = true },
		"gradient":      func(c *sim.Config) { c.CheckGradient = true },
		"volatileChurn": func(c *sim.Config) { c.Churn = sim.ChurnSpec{Kind: sim.ChurnVolatile, Lifetime: 1, Absence: 1} },
	} {
		cfg := base
		mut(&cfg)
		if err := Supports(cfg); err == nil {
			t.Errorf("%s: Supports accepted a DES-only config", name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted a DES-only config", name)
		}
	}
	if err := Supports(base); err != nil {
		t.Errorf("Supports rejected a plain ring: %v", err)
	}
}

// TestNewRejectsInvalidConfig pins that rt.New shares sim's validation
// boundary: malformed configs error, they do not panic.
func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(sim.Config{N: 0}); err == nil {
		t.Fatal("New accepted N=0")
	}
	if _, err := New(sim.Config{N: 8, Rho: 2}); err == nil {
		t.Fatal("New accepted Rho=2")
	}
}
