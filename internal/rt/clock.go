package rt

import (
	"math"
	"time"

	"gcs/internal/seam"
)

// durOf converts simulated/hardware seconds to a wall duration, rounding
// up to a whole nanosecond. Rounding up matters twice: a delay never
// becomes zero (the transport law is (0, MaxDelay]), and a re-armed
// subjective timer always advances wall time by at least 1ns per firing,
// so the fire-early-then-re-arm loop in driftTimer.check cannot spin at
// one instant under synctest's fake clock.
func durOf(sec float64) time.Duration {
	if sec <= 0 {
		return 0
	}
	d := time.Duration(math.Ceil(sec * float64(time.Second)))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

// hwEps is the hardware-reading tolerance for timer firing: one
// nanosecond of wall time at any in-band rate. A timer whose target is
// within hwEps of the current reading fires now instead of re-arming
// for a sub-nanosecond remainder (which wall clocks cannot express).
const hwEps = 2e-9

// DriftClock is one node's hardware clock in the real-time runtime: a
// piecewise-linear function of the wall clock,
//
//	H(wall) = lastH + rate * (wall - lastW),
//
// rebased at every rate change, exactly like the DES HardwareClock is a
// piecewise-linear function of engine time. It implements seam.Clock,
// so the gcs node reads it like any other hardware clock; the runtime
// keeps the concrete handle for the drift driver (SetRate).
//
// All methods require the owning host's lock (they run in the node's
// event context or in the sampler, both of which hold it); the struct
// has no locking of its own.
type DriftClock struct {
	h     *host
	lastW time.Time
	lastH float64
	rate  float64
	// minRate/maxRate aggregate every rate this clock ran at, for the
	// report's drift-band validation.
	minRate, maxRate float64
	// timers holds every timer ever created on this clock (the gcs node
	// makes exactly two) so a rate change can re-arm pending firings:
	// subjective targets are fixed in hardware time, and the wall time
	// they correspond to moves when the rate does.
	timers []*driftTimer
}

func newDriftClock(h *host, start time.Time) *DriftClock {
	return &DriftClock{h: h, lastW: start, rate: 1, minRate: 1, maxRate: 1}
}

// Now returns the clock's current hardware reading.
func (c *DriftClock) Now() float64 {
	//gcslint:allow nondeterminism — rt IS the wall-clock harness; this anchor is its by-design time source
	return c.lastH + c.rate*time.Since(c.lastW).Seconds()
}

// Rate returns the current hardware rate.
func (c *DriftClock) Rate() float64 { return c.rate }

// RateBoundsSeen returns the smallest and largest rates the clock has
// run at, for validating the [1-rho, 1+rho] drift bound.
func (c *DriftClock) RateBoundsSeen() (min, max float64) { return c.minRate, c.maxRate }

// SetRate rebases the clock at the current instant and changes its
// rate; armed timers are re-armed so their hardware-time targets keep
// the right wall-time translation.
func (c *DriftClock) SetRate(rate float64) {
	if rate <= 0 || math.IsNaN(rate) {
		panic("rt: hardware rate must be positive")
	}
	now := time.Now() //gcslint:allow nondeterminism — re-anchors the piecewise-linear segment at the rate change
	c.lastH += c.rate * now.Sub(c.lastW).Seconds()
	c.lastW = now
	c.rate = rate
	if rate < c.minRate {
		c.minRate = rate
	}
	if rate > c.maxRate {
		c.maxRate = rate
	}
	for _, tm := range c.timers {
		if tm.armed {
			tm.rearm()
		}
	}
}

// NewTimer implements seam.Clock. The timer delivers its firings into
// the owning host's event queue, so fn always runs in the node's
// serialized execution context.
func (c *DriftClock) NewTimer(label string, fn func()) seam.Timer {
	tm := &driftTimer{c: c, label: label, fn: fn}
	c.timers = append(c.timers, tm)
	return tm
}

// driftTimer is a resettable subjective timer over a DriftClock, backed
// by one reusable time.Timer. The wall deadline is the current best
// translation of the hardware target; because the rate can change while
// armed, the firing path re-checks the hardware reading and re-arms for
// the remainder if it ran early (SetRate also re-arms eagerly, so this
// is a second line of defense against rounding).
//
// armed/targetH are guarded by the host lock like everything else; the
// AfterFunc callback itself only forwards into the host's event queue
// and reads no mutable state.
type driftTimer struct {
	c       *DriftClock
	label   string
	fn      func()
	targetH float64
	armed   bool
	t       *time.Timer
}

func (tm *driftTimer) Reset(dH float64) {
	if dH < 0 {
		panic("rt: negative timer offset")
	}
	tm.targetH = tm.c.Now() + dH
	tm.armed = true
	tm.rearm()
}

func (tm *driftTimer) Stop() {
	tm.armed = false
	if tm.t != nil {
		tm.t.Stop()
	}
}

func (tm *driftTimer) Pending() bool { return tm.armed }

// rearm (re)schedules the wall-time firing for the current hardware
// target at the current rate. Requires the host lock.
func (tm *driftTimer) rearm() {
	d := durOf((tm.targetH - tm.c.Now()) / tm.c.rate)
	if tm.t == nil {
		h := tm.c.h
		tm.t = time.AfterFunc(d, func() { h.enqueue(tm.check) })
	} else {
		tm.t.Stop()
		tm.t.Reset(d)
	}
}

// check runs in the node's event context: fire if the hardware target
// has been reached (within hwEps), otherwise re-arm for the remainder.
func (tm *driftTimer) check() {
	if !tm.armed {
		return // Stop raced the in-flight firing; stale, ignore
	}
	if tm.c.Now() >= tm.targetH-hwEps {
		tm.armed = false
		tm.fn()
		return
	}
	tm.rearm()
}
