//go:build goexperiment.synctest

package rt

import (
	"math"
	"testing"

	"gcs/internal/sim"
)

// TestCrossHarnessValidation is the acceptance gate for the real-time
// runtime: the same scenario configs run through both harnesses — the
// discrete-event simulation and the goroutine-per-node real-time
// runtime — and both executions must satisfy the same analytic
// guarantees (GlobalSkewBound, GradientBound(1), drift-band containment,
// fault re-convergence). The harnesses schedule differently, so reports
// are not compared field by field; the paper's bounds are the common
// contract both must honor.
func TestCrossHarnessValidation(t *testing.T) {
	scenarios := []struct {
		name    string
		cfg     sim.Config
		faulted bool
	}{
		{
			name: "Ring16BangBang",
			cfg: sim.Config{
				N: 16, Seed: 41, Horizon: 10, Rho: 0.01, MaxDelay: 0.01,
				Topology: sim.TopologySpec{Kind: sim.TopoRing},
				Driver:   sim.DriverSpec{Kind: sim.DriveBangBang, Interval: 1},
			},
		},
		{
			name: "Grid4x4RandomWalk",
			cfg: sim.Config{
				N: 16, Seed: 42, Horizon: 10, Rho: 0.02, MaxDelay: 0.02,
				Topology: sim.TopologySpec{Kind: sim.TopoGrid, W: 4, H: 4},
				Driver:   sim.DriverSpec{Kind: sim.DriveRandomWalk, Interval: 1},
			},
		},
		{
			name: "RotatingStar12",
			cfg: sim.Config{
				N: 12, Seed: 43, Horizon: 8, Rho: 0.01, MaxDelay: 0.01,
				Churn: sim.ChurnSpec{Kind: sim.ChurnRotatingStar, Period: 1, Overlap: 0.25},
			},
		},
		{
			name: "FaultedRing12",
			cfg: sim.Config{
				N: 12, Seed: 44, Horizon: 12, Rho: 0.01, MaxDelay: 0.01,
				Topology: sim.TopologySpec{Kind: sim.TopoRing},
				Driver:   sim.DriverSpec{Kind: sim.DriveBangBang, Interval: 1},
				Faults:   sim.FaultSpec{Drop: 0.05, CrashEvery: 4, CrashDowntime: 0.5},
			},
			faulted: true,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			desRep, err := sim.Run(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			rtRep := runBubble(t, sc.cfg)

			for _, h := range []struct {
				name string
				rep  sim.SkewReport
			}{{"des", desRep}, {"rt", rtRep}} {
				if h.rep.TotalBeacons == 0 || h.rep.Transport.Delivered == 0 {
					t.Fatalf("%s: degenerate execution: %+v", h.name, h.rep)
				}
				if sc.faulted {
					// Faults may push the skew past the bound mid-run; the
					// contract is graceful degradation: finite re-convergence.
					if h.rep.Faults.Total() == 0 {
						t.Errorf("%s: fault plan injected nothing", h.name)
					}
					if math.IsInf(h.rep.ReconvergenceTime, 1) {
						t.Errorf("%s: never re-converged (final skew %v, bound %v)",
							h.name, h.rep.FinalGlobalSkew, h.rep.Bound)
					}
					continue
				}
				if h.rep.MaxGlobalSkew > h.rep.Bound {
					t.Errorf("%s: global skew %v above bound %v", h.name, h.rep.MaxGlobalSkew, h.rep.Bound)
				}
				if g1 := sc.cfg.GradientBound(1); h.rep.MaxAdjacentSkew > g1 {
					t.Errorf("%s: adjacent skew %v above gradient bound %v", h.name, h.rep.MaxAdjacentSkew, g1)
				}
				if h.rep.MinRateSeen < 1-sc.cfg.Rho-1e-12 || h.rep.MaxRateSeen > 1+sc.cfg.Rho+1e-12 {
					t.Errorf("%s: rates [%v, %v] escaped the drift band", h.name, h.rep.MinRateSeen, h.rep.MaxRateSeen)
				}
			}

			// Emit the comparison table (visible under -v; the PAPER.md
			// cross-validation table is refreshed from this output).
			t.Logf("des: maxSkew=%.4f adjSkew=%.4f bound=%.3f delivered=%d reconv=%.2f",
				desRep.MaxGlobalSkew, desRep.MaxAdjacentSkew, desRep.Bound,
				desRep.Transport.Delivered, desRep.ReconvergenceTime)
			t.Logf("rt:  maxSkew=%.4f adjSkew=%.4f bound=%.3f delivered=%d reconv=%.2f",
				rtRep.MaxGlobalSkew, rtRep.MaxAdjacentSkew, rtRep.Bound,
				rtRep.Transport.Delivered, rtRep.ReconvergenceTime)

			// The two harnesses implement the same physics, so coarse
			// magnitudes must agree: skews within a small factor of each
			// other (they share the algorithm, parameters, and time span).
			if desRep.MaxGlobalSkew > 0 && rtRep.MaxGlobalSkew > 0 {
				ratio := rtRep.MaxGlobalSkew / desRep.MaxGlobalSkew
				if ratio < 0.1 || ratio > 10 {
					t.Errorf("harness skews disagree by %vx: des %v, rt %v",
						ratio, desRep.MaxGlobalSkew, rtRep.MaxGlobalSkew)
				}
			}
		})
	}
}
