//go:build goexperiment.synctest

// The deterministic concurrency suite: every test runs the real-time
// runtime inside a testing/synctest bubble, where the wall clock is
// fake, time only advances when every goroutine is durably blocked, and
// timers fire in exact deadline order. A 10-second scenario finishes in
// milliseconds, the schedule is reproducible run to run, and the race
// detector still sees every real interleaving of the runtime's
// goroutines — so these tests are both fast and strict. Gated behind
// GOEXPERIMENT=synctest (go1.24); CI runs them with -race -count=3.

package rt

import (
	"math"
	"testing"
	"testing/synctest"

	"gcs/internal/sim"
	"gcs/internal/simtest"
)

// runBubble executes cfg to completion inside a synctest bubble and
// returns the report. synctest.Run itself only returns once every
// goroutine the run spawned has exited, so it doubles as the shutdown
// cleanliness check: a leaked node goroutine hangs the test.
func runBubble(t *testing.T, cfg sim.Config) sim.SkewReport {
	t.Helper()
	var rep sim.SkewReport
	var err error
	synctest.Run(func() {
		rep, err = Run(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func ringCfg(n int, seed uint64) sim.Config {
	return sim.Config{
		N:        n,
		Seed:     seed,
		Horizon:  10,
		Rho:      0.01,
		MaxDelay: 0.01,
		Topology: sim.TopologySpec{Kind: sim.TopoRing},
		Driver:   sim.DriverSpec{Kind: sim.DriveBangBang, Interval: 1},
	}
}

// TestBubbleRingSatisfiesBounds is the core property check: a drifting
// ring run by real goroutines stays within the same analytic global and
// gradient bounds the DES harness verifies.
func TestBubbleRingSatisfiesBounds(t *testing.T) {
	cfg := ringCfg(16, 7)
	rep := runBubble(t, cfg)
	if rep.MaxGlobalSkew <= 0 || rep.MaxGlobalSkew > rep.Bound {
		t.Fatalf("global skew %v outside (0, bound %v]", rep.MaxGlobalSkew, rep.Bound)
	}
	if g1 := cfg.GradientBound(1); rep.MaxAdjacentSkew > g1 {
		t.Fatalf("adjacent skew %v above gradient bound %v", rep.MaxAdjacentSkew, g1)
	}
	if rep.MinRateSeen < 1-cfg.Rho-1e-12 || rep.MaxRateSeen > 1+cfg.Rho+1e-12 {
		t.Fatalf("rates [%v, %v] escaped the drift band", rep.MinRateSeen, rep.MaxRateSeen)
	}
	// BangBang pins both band edges, so the fold must reach them exactly.
	if rep.MinRateSeen != 1-cfg.Rho || rep.MaxRateSeen != 1+cfg.Rho {
		t.Fatalf("BangBang driver never reached the band edges: [%v, %v]", rep.MinRateSeen, rep.MaxRateSeen)
	}
	// Every node beacons roughly Horizon/BeaconEvery times; require half.
	if want := 16 * 10 / 0.1 / 2; float64(rep.TotalBeacons) < want {
		t.Fatalf("beacons %d below floor %v", rep.TotalBeacons, want)
	}
	if rep.Transport.Delivered == 0 || rep.TotalMessages == 0 {
		t.Fatalf("no traffic: %+v", rep.Transport)
	}
}

// TestBubbleDeterminism pins that the fake clock makes the concurrent
// runtime a pure function of its config: two bubbles, bit-identical
// reports (every field, including traffic counters and event counts).
func TestBubbleDeterminism(t *testing.T) {
	cfg := ringCfg(12, 3)
	cfg.Driver = sim.DriverSpec{Kind: sim.DriveRandomWalk, Interval: 0.5}
	a := runBubble(t, cfg)
	b := runBubble(t, cfg)
	simtest.AssertSameReport(t, "same-config bubble rerun", b, a)
	// And a different seed genuinely changes the execution.
	cfg.Seed++
	simtest.AssertReportsDiffer(t, "seed change", runBubble(t, cfg), a)
}

// TestBubbleRotatingStarChurn drives the maximally dynamic topology:
// edges churn constantly, discovery beacons fire over fresh edges, and
// the skew still respects the churn-slack-adjusted bound.
func TestBubbleRotatingStarChurn(t *testing.T) {
	cfg := sim.Config{
		N:        12,
		Seed:     11,
		Horizon:  8,
		Rho:      0.01,
		MaxDelay: 0.01,
		Churn:    sim.ChurnSpec{Kind: sim.ChurnRotatingStar, Period: 1, Overlap: 0.25},
	}
	rep := runBubble(t, cfg)
	if rep.EdgeAdds == 0 || rep.EdgeRemoves == 0 {
		t.Fatalf("star never rotated: adds=%d removes=%d", rep.EdgeAdds, rep.EdgeRemoves)
	}
	if rep.TotalDiscoveries == 0 {
		t.Fatal("no discovery beacons over fresh edges")
	}
	if rep.MaxGlobalSkew > rep.Bound {
		t.Fatalf("global skew %v above churn bound %v", rep.MaxGlobalSkew, rep.Bound)
	}
	// Mid-flight messages over torn-down star edges are lost at delivery.
	if rep.Transport.Delivered >= rep.Transport.Sent {
		t.Fatalf("churn lost no messages: %+v", rep.Transport)
	}
}

// TestBubbleFaultedRingReconverges is the rt chaos gate: inject message
// loss, crash/recover cycles, and rate excursions for the first half of
// the run, then require the skew to re-enter the analytic bound.
func TestBubbleFaultedRingReconverges(t *testing.T) {
	cfg := ringCfg(12, 5)
	cfg.Horizon = 12
	cfg.Faults = sim.FaultSpec{
		Drop:               0.05,
		CrashEvery:         3,
		CrashDowntime:      0.5,
		RateExcursionEvery: 4,
	}
	rep := runBubble(t, cfg)
	if rep.Faults.Total() == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if rep.Faults.Crashes == 0 || rep.Faults.Recoveries == 0 {
		t.Fatalf("no crash/recover cycle: %+v", rep.Faults)
	}
	if rep.Faults.Drops == 0 {
		t.Fatalf("no message drops: %+v", rep.Faults)
	}
	if math.IsInf(rep.ReconvergenceTime, 1) {
		t.Fatalf("skew still outside bound %v at the horizon: final %v", rep.Bound, rep.FinalGlobalSkew)
	}
	if rep.FinalGlobalSkew > rep.Bound {
		t.Fatalf("final skew %v above bound %v after re-convergence window", rep.FinalGlobalSkew, rep.Bound)
	}
}

// TestBubbleFaultedDeterminism extends the determinism guarantee to the
// full fault machinery (per-sender verdict streams, crash chains, rate
// excursions): faulted runs are reproducible too.
func TestBubbleFaultedDeterminism(t *testing.T) {
	cfg := ringCfg(10, 9)
	cfg.Faults = sim.FaultSpec{Drop: 0.1, Dup: 0.05, DelaySpike: 0.05, CrashEvery: 4}
	a := runBubble(t, cfg)
	b := runBubble(t, cfg)
	simtest.AssertSameReport(t, "faulted bubble rerun", b, a)
	if a.Faults.Total() == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

// TestBubbleGridBounds covers a second static topology shape (4x4 grid)
// with the default constant driver.
func TestBubbleGridBounds(t *testing.T) {
	cfg := sim.Config{
		N:        16,
		Seed:     2,
		Horizon:  10,
		Rho:      0.02,
		MaxDelay: 0.02,
		Topology: sim.TopologySpec{Kind: sim.TopoGrid, W: 4, H: 4},
		Driver:   sim.DriverSpec{Kind: sim.DriveRandomWalk, Interval: 1},
	}
	rep := runBubble(t, cfg)
	if rep.MaxGlobalSkew > rep.Bound {
		t.Fatalf("global skew %v above bound %v", rep.MaxGlobalSkew, rep.Bound)
	}
	if g1 := cfg.GradientBound(1); rep.MaxAdjacentSkew > g1 {
		t.Fatalf("adjacent skew %v above gradient bound %v", rep.MaxAdjacentSkew, g1)
	}
}
