package jobd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gcs/internal/sim"
	"gcs/internal/store"
)

func postSpec(t *testing.T, url string, spec SweepSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPJobLifecycle drives the full API: submit (202), idempotent
// resubmit (200), status, and results with reports attached.
func TestHTTPJobLifecycle(t *testing.T) {
	d, err := New(Config{Repo: store.NewMemory(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(0)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	spec := tinySpec()
	resp := postSpec(t, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.ID == "" || view.Cells != 1 {
		t.Fatalf("submit view %+v", view)
	}
	waitDone(t, d, view.ID)

	resp = postSpec(t, srv.URL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobView
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Status != store.StatusDone || got.Done != 1 {
		t.Fatalf("status view %+v", got)
	}

	resp, err = http.Get(srv.URL + "/jobs/" + view.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var res resultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Cells) != 1 || !res.Cells[0].Done || res.Cells[0].Result == nil {
		t.Fatalf("results %+v", res)
	}
	if res.Cells[0].Result.Report.EventsExecuted == 0 {
		t.Fatal("returned report looks empty")
	}

	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobView
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != view.ID {
		t.Fatalf("job list %+v", list)
	}
}

// TestHTTPErrors: bad specs 400, unknown jobs 404, a full queue 429
// with Retry-After, and a draining daemon 503.
func TestHTTPErrors(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{
		Repo:     store.NewMemory(),
		Workers:  1,
		QueueCap: 1,
		RunCell: func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			<-gate
			return a.RunSliced(cfg, slice, cont)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader([]byte(`{"ns":`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postSpec(t, srv.URL, tinySpec())
	resp.Body.Close()
	over := tinySpec()
	over.Seed = 2
	resp = postSpec(t, srv.URL, over)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	resp.Body.Close()

	close(gate)
	if err := d.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	resp = postSpec(t, srv.URL, over)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || !health.Draining {
		t.Fatalf("health %+v", health)
	}
}
