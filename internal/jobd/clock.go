package jobd

import "time"

// Clock is the daemon's only window onto wall time — cell deadlines,
// backoff waits, and drain grace periods all go through it. Injecting
// it keeps the scheduling logic deterministic under test (the repo's
// nondeterminism lint bans direct time.Now in this package) while the
// production daemon runs on RealClock.
type Clock interface {
	// Now returns the current wall time.
	Now() time.Time
	// After fires once after d elapses.
	After(d time.Duration) <-chan time.Time
}

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

type realClock struct{}

// Now implements Clock. This is the one sanctioned wall-time read in
// the package: everything downstream consumes it through the seam.
func (realClock) Now() time.Time {
	//gcslint:allow nondeterminism — the Clock seam's production edge.
	return time.Now()
}

// After implements Clock.
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
