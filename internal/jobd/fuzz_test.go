package jobd

import (
	"bytes"
	"testing"
)

// FuzzJobSpecDecode hammers the HTTP admission path's decoder with
// arbitrary bytes: decoding must never panic, an accepted spec must
// expand and validate without panicking, and everything that survives
// validation must have a stable identity across the canonical round
// trip — the property Resume depends on.
func FuzzJobSpecDecode(f *testing.F) {
	f.Add([]byte(`{"ns":[8],"topos":["ring"],"drivers":["constant"],"churns":["none"],"seed":7,"horizon":2}`))
	f.Add([]byte(`{"ns":[8,12],"topos":["ring","grid"],"drivers":["randomwalk","bangbang"],` +
		`"churns":["none","rotatingstar"],"seed":1,"horizon":10,"faults":{"Drop":0.1}}`))
	f.Add([]byte(`{"ns":[-3],"topos":[""],"drivers":["warp"],"churns":["none"]}`))
	f.Add([]byte(`{"ns":[8],"topoz":["ring"]}`))
	f.Add([]byte(`{"ns":[8]} trailing`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"ns":[8],"topos":["ring"],"drivers":["constant"],"churns":["none"],"rho":-1}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			return
		}
		// A validated spec must expand (Validate already did) and carry
		// a deterministic identity that survives its canonical JSON.
		cells, err := spec.Cells()
		if err != nil {
			t.Fatalf("validated spec failed to expand: %v", err)
		}
		if len(cells) == 0 || len(cells) > MaxCells {
			t.Fatalf("validated spec expanded to %d cells", len(cells))
		}
		id1, err := spec.ID()
		if err != nil {
			t.Fatalf("validated spec has no ID: %v", err)
		}
		canon, err := spec.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSpec(canon)
		if err != nil {
			t.Fatalf("canonical JSON does not decode: %v", err)
		}
		id2, err := back.ID()
		if err != nil || id1 != id2 {
			t.Fatalf("identity unstable across canonical round trip: %q vs %q (%v)", id1, id2, err)
		}
		canon2, err := back.CanonicalJSON()
		if err != nil || !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical JSON is not a fixed point (%v)", err)
		}
	})
}
