package jobd

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gcs/internal/sim"
	"gcs/internal/store"
)

// ErrDraining rejects submissions once Drain has started: the daemon
// is finishing its in-flight cells and will not admit new work.
var ErrDraining = errors.New("jobd: daemon is draining")

// OverloadError rejects a submission that would push the queue past
// its cap; RetryAfter is the daemon's estimate of when capacity frees.
type OverloadError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("jobd: queue is full; retry after %s", e.RetryAfter)
}

// errAbandoned marks a cell given up mid-run because the drain grace
// expired; the cell is left unfinished for the next daemon to resume.
var errAbandoned = errors.New("jobd: cell abandoned by drain")

// Config configures a Daemon. Repo is required; everything else has a
// usable default.
type Config struct {
	// Repo persists cell facts and job records. The daemon does not own
	// it: the caller closes it after Drain returns.
	Repo store.Repository
	// Clock injects wall time; nil means RealClock.
	Clock Clock
	// Workers is the cell worker pool size; <=0 means GOMAXPROCS.
	Workers int
	// QueueCap bounds cells admitted but not yet finished; an admission
	// that would exceed it fails with OverloadError. <=0 means 4096.
	QueueCap int
	// MaxCellsPerJob bounds one job's cell count; <=0 means MaxCells.
	MaxCellsPerJob int
	// CellTimeout is the per-cell execution deadline, checked between
	// simulation slices. <=0 means 10 minutes.
	CellTimeout time.Duration
	// MaxRetries is how many times a failed cell is re-executed after
	// its first attempt; negative normalizes to 0. A cell that fails
	// every attempt is stored as a terminal error fact.
	MaxRetries int
	// BackoffBase and BackoffLimit shape the decorrelated-jitter retry
	// schedule (see NewBackoff for the defaults their zero values take).
	BackoffBase  time.Duration
	BackoffLimit time.Duration
	// BackoffSeed seeds the retry schedules; each cell folds its content
	// address in, so schedules are per-cell yet reproducible.
	BackoffSeed uint64
	// Slice is the simulated-seconds granularity at which running cells
	// check their deadline and the drain flag; <=0 means 1.0.
	Slice float64
	// RunCell executes one cell; nil means Arena.RunSliced. Tests inject
	// hooks here to fail, panic, or block specific cells.
	RunCell func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool)
	// Logf reports non-fatal internal errors (persistence failures);
	// nil discards them.
	Logf func(format string, args ...any)
}

// task is one unit of worker input: a cell awaiting execution.
type task struct {
	key store.Key
	cfg sim.Config
}

// cellRef points at one cell slot of one job; the interest map fans a
// finished cell's fact out to every job waiting on it.
type cellRef struct {
	j   *job
	idx int
}

// job is the in-memory state of one admitted job.
type job struct {
	rec       store.JobRecord
	cells     []sim.SweepCell
	keys      []store.Key
	done      []bool
	remaining int
	cached    int
	failed    int
	doneCh    chan struct{}
}

func (j *job) view() JobView {
	return JobView{
		ID:     j.rec.ID,
		Status: j.rec.Status,
		Cells:  j.rec.Cells,
		Done:   j.rec.Cells - j.remaining,
		Failed: j.failed,
		Cached: j.cached,
	}
}

// JobView is a job's observable state.
type JobView struct {
	ID     string          `json:"id"`
	Status store.JobStatus `json:"status"`
	Cells  int             `json:"cells"`
	// Done counts cells with a stored fact (including cached ones);
	// Failed counts those whose fact is a terminal error; Cached counts
	// cells served from the store at admission without running.
	Done   int `json:"done"`
	Failed int `json:"failed"`
	Cached int `json:"cached"`
}

// CellView is one cell's observable state; Result is nil until the
// cell has a stored fact.
type CellView struct {
	Index  int               `json:"index"`
	Name   string            `json:"name"`
	Done   bool              `json:"done"`
	Result *store.CellResult `json:"result,omitempty"`
}

// Daemon schedules sweep cells across a worker pool, persisting every
// outcome through its repository. All exported methods are safe for
// concurrent use.
type Daemon struct {
	cfg   Config
	repo  store.Repository
	clock Clock

	queue   chan task
	stop    chan struct{}
	abandon atomic.Bool
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	interest map[store.Key][]cellRef
	queued   int // cells enqueued or running; bounded by QueueCap
	draining bool
}

// New starts a daemon: its workers are running on return.
func New(cfg Config) (*Daemon, error) {
	if cfg.Repo == nil {
		return nil, errors.New("jobd: Config.Repo is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.MaxCellsPerJob <= 0 || cfg.MaxCellsPerJob > MaxCells {
		cfg.MaxCellsPerJob = MaxCells
	}
	if cfg.CellTimeout <= 0 {
		cfg.CellTimeout = 10 * time.Minute
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Slice <= 0 {
		cfg.Slice = 1.0
	}
	if cfg.RunCell == nil {
		cfg.RunCell = func(a *sim.Arena, c sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			return a.RunSliced(c, slice, cont)
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	d := &Daemon{
		cfg:      cfg,
		repo:     cfg.Repo,
		clock:    cfg.Clock,
		queue:    make(chan task, cfg.QueueCap),
		stop:     make(chan struct{}),
		jobs:     map[string]*job{},
		interest: map[store.Key][]cellRef{},
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// Submit admits one sweep job. It is idempotent on the spec: the same
// spec maps to the same job ID, and resubmitting returns the existing
// job with created=false. Cells whose facts are already stored are
// served from the store; cells another job is already running are
// joined, not re-enqueued.
func (d *Daemon) Submit(spec SweepSpec) (JobView, bool, error) {
	cells, err := spec.Cells()
	if err != nil {
		return JobView{}, false, err
	}
	for i := range cells {
		if err := cells[i].Cfg.Validate(); err != nil {
			return JobView{}, false, fmt.Errorf("jobd: cell %d (%s): %w", i, cells[i].Name, err)
		}
	}
	if len(cells) > d.cfg.MaxCellsPerJob {
		return JobView{}, false, fmt.Errorf("jobd: job has %d cells; this daemon caps jobs at %d",
			len(cells), d.cfg.MaxCellsPerJob)
	}
	specJSON, err := spec.CanonicalJSON()
	if err != nil {
		return JobView{}, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return JobView{}, false, err
	}
	keys := make([]store.Key, len(cells))
	for i := range cells {
		keys[i] = store.KeyOf(cells[i].Cfg)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return JobView{}, false, ErrDraining
	}
	if j, ok := d.jobs[id]; ok {
		return j.view(), false, nil
	}
	// Admission is all-or-nothing: count the cells that would newly
	// enqueue before touching any state.
	need := 0
	seen := map[store.Key]bool{}
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := d.interest[k]; ok {
			continue
		}
		if _, ok := d.repo.GetCell(k); ok {
			continue
		}
		need++
	}
	if d.queued+need > d.cfg.QueueCap {
		return JobView{}, false, &OverloadError{RetryAfter: d.retryAfterLocked()}
	}

	j := &job{
		rec:       store.JobRecord{ID: id, Spec: specJSON, Status: store.StatusRunning, Cells: len(cells)},
		cells:     cells,
		keys:      keys,
		done:      make([]bool, len(cells)),
		remaining: len(cells),
		doneCh:    make(chan struct{}),
	}
	for i := range cells {
		k := keys[i]
		if res, ok := d.repo.GetCell(k); ok {
			j.done[i] = true
			j.remaining--
			j.cached++
			if res.Failed() {
				j.failed++
			}
			continue
		}
		first := len(d.interest[k]) == 0
		d.interest[k] = append(d.interest[k], cellRef{j: j, idx: i})
		if first {
			// Never blocks: queue capacity is QueueCap and channel
			// occupancy never exceeds d.queued, which we just bounded.
			d.queued++
			d.queue <- task{key: k, cfg: cells[i].Cfg}
		}
	}
	if j.remaining == 0 {
		j.rec.Status = store.StatusDone
		close(j.doneCh)
	}
	d.jobs[id] = j
	if err := d.repo.PutJob(j.rec); err != nil {
		d.cfg.Logf("jobd: persist job %s: %v", id, err)
	}
	return j.view(), true, nil
}

// Resume re-admits every job in the repository. Jobs whose cells are
// all stored complete immediately from cache; unfinished jobs
// re-enqueue exactly their missing cells. Call it once, before serving
// traffic. The returned error joins per-job failures; jobs that do
// resume are unaffected by siblings that don't.
func (d *Daemon) Resume() error {
	var errs []error
	for _, rec := range d.repo.Jobs() {
		spec, err := DecodeSpec(rec.Spec)
		if err != nil {
			errs = append(errs, fmt.Errorf("jobd: resume job %s: %w", rec.ID, err))
			continue
		}
		if _, _, err := d.Submit(spec); err != nil {
			errs = append(errs, fmt.Errorf("jobd: resume job %s: %w", rec.ID, err))
		}
	}
	return errors.Join(errs...)
}

// Job returns one job's observable state.
func (d *Daemon) Job(id string) (JobView, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs lists every admitted job, sorted by ID.
func (d *Daemon) Jobs() []JobView {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobView, 0, len(d.jobs))
	//gcslint:allow maprange — sorted below before surfacing.
	for _, j := range d.jobs {
		out = append(out, j.view())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Done returns a channel closed when the job's last cell finishes
// (already closed for completed jobs).
func (d *Daemon) Done(id string) (<-chan struct{}, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, false
	}
	return j.doneCh, true
}

// Results returns the job's cells in grid order, with stored facts
// attached to the finished ones. Partial jobs return partial results.
func (d *Daemon) Results(id string) ([]CellView, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return nil, false
	}
	cells, keys := j.cells, j.keys
	done := append([]bool(nil), j.done...)
	d.mu.Unlock()

	out := make([]CellView, len(cells))
	for i := range cells {
		out[i] = CellView{Index: i, Name: cells[i].Name, Done: done[i]}
		if done[i] {
			if res, ok := d.repo.GetCell(keys[i]); ok {
				out[i].Result = &res
			}
		}
	}
	return out, true
}

// Drain stops admission, lets workers finish their current cells, and
// after the grace period abandons whatever is still running (the slice
// seam makes even a mid-simulation cell yield). Unfinished cells stay
// unstored, so the next daemon over the same repository resumes them.
// Drain syncs the repository before returning; it does not close it.
func (d *Daemon) Drain(grace time.Duration) error {
	d.mu.Lock()
	already := d.draining
	d.draining = true
	d.mu.Unlock()
	if !already {
		close(d.stop)
	}
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	if grace <= 0 {
		d.abandon.Store(true)
		<-done
	} else {
		select {
		case <-done:
		case <-d.clock.After(grace):
			d.abandon.Store(true)
			<-done
		}
	}
	return d.repo.Sync()
}

// Draining reports whether Drain has started.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// retryAfterLocked estimates when queue capacity frees: a rough
// one-second-per-queued-cell-per-worker heuristic, capped at 5 minutes.
func (d *Daemon) retryAfterLocked() time.Duration {
	secs := 1 + d.queued/d.cfg.Workers
	if secs > 300 {
		secs = 300
	}
	return time.Duration(secs) * time.Second
}

// worker owns one arena and drains the task queue until stopped.
func (d *Daemon) worker() {
	defer d.wg.Done()
	a := sim.NewArena()
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		select {
		case <-d.stop:
			return
		case t := <-d.queue:
			d.runTask(&a, t)
		}
	}
}

// runTask executes one cell to a terminal fact — report or error —
// retrying with backoff in between, then fans the fact out to every
// interested job. The arena is passed by pointer so panic containment
// can replace a possibly-corrupt arena with a fresh one.
func (d *Daemon) runTask(a **sim.Arena, t task) {
	// The fact may have landed (another daemon, an earlier job) between
	// enqueue and now; serve it without running.
	if res, ok := d.repo.GetCell(t.key); ok {
		d.complete(t.key, res)
		return
	}
	cfg := t.cfg.WithDefaults()
	bo := NewBackoff(d.cfg.BackoffBase, d.cfg.BackoffLimit, cellBackoffSeed(d.cfg.BackoffSeed, t.key))
	attempts := 0
	for {
		attempts++
		rpt, err := d.execCell(a, cfg)
		if errors.Is(err, errAbandoned) {
			return // draining: leave the cell unfinished for resume
		}
		if err == nil {
			d.finish(store.CellResult{Key: t.key, Cfg: cfg, Report: rpt, Attempts: attempts})
			return
		}
		if attempts > d.cfg.MaxRetries {
			// A terminal failure is still a fact: deterministic cells
			// fail deterministically, so caching the error is as sound
			// as caching a report.
			d.finish(store.CellResult{Key: t.key, Cfg: cfg, Err: err.Error(), Attempts: attempts})
			return
		}
		select {
		case <-d.stop:
			return
		case <-d.clock.After(bo.Next()):
		}
	}
}

// execCell runs one attempt under the cell deadline, containing panics
// so a poisoned cell cannot take the daemon down.
func (d *Daemon) execCell(a **sim.Arena, cfg sim.Config) (rpt sim.SkewReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			// The arena may be mid-run; replace it rather than reuse it.
			*a = sim.NewArena()
			err = fmt.Errorf("jobd: cell panicked: %v\n%s", r, debug.Stack())
		}
	}()
	deadline := d.clock.Now().Add(d.cfg.CellTimeout)
	cont := func() bool {
		if d.abandon.Load() {
			return false
		}
		return d.clock.Now().Before(deadline)
	}
	rpt, ok := d.cfg.RunCell(*a, cfg, d.cfg.Slice, cont)
	if !ok {
		if d.abandon.Load() {
			return sim.SkewReport{}, errAbandoned
		}
		return sim.SkewReport{}, fmt.Errorf("jobd: cell exceeded its %s deadline", d.cfg.CellTimeout)
	}
	return rpt, nil
}

// finish persists the fact and fans it out. A persistence failure is
// logged but still served in memory: only this cell's durability is
// lost (a restart would re-run it).
func (d *Daemon) finish(res store.CellResult) {
	if err := d.repo.PutCell(res); err != nil {
		d.cfg.Logf("jobd: persist cell %s: %v", res.Key, err)
	}
	d.complete(res.Key, res)
}

// complete marks the cell done in every interested job, closing and
// persisting jobs whose last cell this was.
func (d *Daemon) complete(k store.Key, res store.CellResult) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.queued--
	refs := d.interest[k]
	delete(d.interest, k)
	for _, r := range refs {
		if r.j.done[r.idx] {
			continue
		}
		r.j.done[r.idx] = true
		r.j.remaining--
		if res.Failed() {
			r.j.failed++
		}
		if r.j.remaining == 0 {
			r.j.rec.Status = store.StatusDone
			if err := d.repo.PutJob(r.j.rec); err != nil {
				d.cfg.Logf("jobd: persist job %s: %v", r.j.rec.ID, err)
			}
			close(r.j.doneCh)
		}
	}
}
