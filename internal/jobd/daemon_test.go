package jobd

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gcs/internal/sim"
	"gcs/internal/simtest"
	"gcs/internal/store"
)

// fakeClock is a deterministic Clock: Now returns a fixed instant and
// After records the requested wait, then fires immediately — the
// daemon's temporal decisions become observable data.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	waits []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.waits = append(c.waits, d)
	now := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.waits...)
}

// waitDone blocks until the job finishes or the test times out.
func waitDone(t *testing.T, d *Daemon, id string) {
	t.Helper()
	ch, ok := d.Done(id)
	if !ok {
		t.Fatalf("job %s unknown to the daemon", id)
	}
	select {
	case <-ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish in time", id)
	}
}

// TestDaemonMatchesDirectSweep: a job run through the daemon produces
// bit-identical reports to sim.RunSweep over the same cells — the
// service is a scheduler, never a different simulator.
func TestDaemonMatchesDirectSweep(t *testing.T) {
	spec := SweepSpec{
		Ns:      []int{8, 12},
		Topos:   []string{"ring", "line"},
		Drivers: []string{"constant", "randomwalk"},
		Churns:  []string{"none"},
		Seed:    5,
		Horizon: 2,
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunSweep(cells, 2)
	if err != nil {
		t.Fatal(err)
	}

	d, err := New(Config{Repo: store.NewMemory(), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(0)
	view, created, err := d.Submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: created=%t err=%v", created, err)
	}
	waitDone(t, d, view.ID)

	results, ok := d.Results(view.ID)
	if !ok || len(results) != len(cells) {
		t.Fatalf("results: ok=%t len=%d want %d", ok, len(results), len(cells))
	}
	for i, cv := range results {
		if !cv.Done || cv.Result == nil {
			t.Fatalf("cell %d (%s) not done", i, cv.Name)
		}
		if cv.Result.Failed() {
			t.Fatalf("cell %d failed: %s", i, cv.Result.Err)
		}
		simtest.AssertSameReport(t, "daemon vs direct "+cv.Name, cv.Result.Report, direct[i].Report)
	}
	if v, _ := d.Job(view.ID); v.Status != store.StatusDone || v.Done != len(cells) {
		t.Fatalf("job view after completion: %+v", v)
	}
}

// TestDaemonDedupeAcrossJobs: a second job whose grid overlaps a
// finished one is served the shared cells from the store — the
// simulator never runs the same physics twice.
func TestDaemonDedupeAcrossJobs(t *testing.T) {
	var runs atomic.Int32
	d, err := New(Config{
		Repo:    store.NewMemory(),
		Workers: 1,
		RunCell: func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			runs.Add(1)
			return a.RunSliced(cfg, slice, cont)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(0)

	small := tinySpec() // 1 cell
	v1, _, err := d.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d, v1.ID)

	big := tinySpec() // same first cell, one more n
	big.Ns = []int{8, 12}
	v2, created, err := d.Submit(big)
	if err != nil || !created {
		t.Fatalf("submit big: created=%t err=%v", created, err)
	}
	waitDone(t, d, v2.ID)

	if v, _ := d.Job(v2.ID); v.Cached != 1 {
		t.Fatalf("overlapping cell not served from the store: %+v", v)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("simulator ran %d cells, want 2 (1 + 1 deduped)", got)
	}

	// Resubmitting an existing job is idempotent: same ID, no new work.
	v3, created, err := d.Submit(big)
	if err != nil || created || v3.ID != v2.ID {
		t.Fatalf("resubmit: view=%+v created=%t err=%v", v3, created, err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("resubmission re-ran cells: %d runs", got)
	}
}

// TestDaemonCrashResume is the tentpole acceptance test at unit scale:
// interrupt a sweep partway (drain with zero grace abandons the
// in-flight cell, exactly like a crash — nothing unfinished is
// stored), reopen the same WAL directory with a fresh daemon, Resume,
// and the merged job must be bit-identical to an uninterrupted run
// while the already-stored cells never re-execute.
func TestDaemonCrashResume(t *testing.T) {
	spec := SweepSpec{
		Ns:      []int{8, 10, 12},
		Topos:   []string{"ring", "line"},
		Drivers: []string{"constant"},
		Churns:  []string{"none"},
		Seed:    9,
		Horizon: 2,
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunSweep(cells, 1)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	wal1, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the third and later executions mid-flight so the "crash"
	// reliably lands mid-sweep with some cells stored and some not.
	var ran atomic.Int32
	d1, err := New(Config{
		Repo:    wal1,
		Workers: 1,
		RunCell: func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			if ran.Add(1) >= 3 {
				// Hold the cell mid-flight until the drain abandons it.
				for cont() {
					time.Sleep(time.Millisecond)
				}
				return sim.SkewReport{}, false
			}
			return a.RunSliced(cfg, slice, cont)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, _, err := d1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if v, _ := d1.Job(v1.ID); v.Done >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := d1.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}

	wal2, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	stored := 0
	for i := range cells {
		if _, ok := wal2.GetCell(store.KeyOf(cells[i].Cfg)); ok {
			stored++
		}
	}
	if stored == 0 || stored == len(cells) {
		t.Fatalf("crash landed at %d/%d stored cells; want a strict partial", stored, len(cells))
	}

	var reruns atomic.Int32
	d2, err := New(Config{
		Repo:    wal2,
		Workers: 2,
		RunCell: func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			reruns.Add(1)
			return a.RunSliced(cfg, slice, cont)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Drain(0)
	if err := d2.Resume(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, d2, v1.ID)

	results, ok := d2.Results(v1.ID)
	if !ok {
		t.Fatal("resumed job unknown")
	}
	for i, cv := range results {
		if !cv.Done || cv.Result == nil || cv.Result.Failed() {
			t.Fatalf("resumed cell %d (%s) not cleanly done", i, cv.Name)
		}
		simtest.AssertSameReport(t, "resumed vs uninterrupted "+cv.Name, cv.Result.Report, direct[i].Report)
	}
	if got, want := int(reruns.Load()), len(cells)-stored; got != want {
		t.Fatalf("resume re-ran %d cells, want exactly the %d missing ones", got, want)
	}
}

// TestDaemonPanicContainment: a panicking cell becomes a stored error
// fact with its stack; sibling cells and the daemon itself are
// unharmed.
func TestDaemonPanicContainment(t *testing.T) {
	spec := tinySpec()
	spec.Ns = []int{8, 12}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	poisoned := cells[1].Cfg.Seed
	d, err := New(Config{
		Repo:    store.NewMemory(),
		Workers: 1,
		RunCell: func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			if cfg.Seed == poisoned {
				panic("poisoned cell")
			}
			return a.RunSliced(cfg, slice, cont)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(0)
	v, _, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d, v.ID)

	results, _ := d.Results(v.ID)
	if results[0].Result == nil || results[0].Result.Failed() {
		t.Fatal("healthy sibling cell was not completed cleanly")
	}
	bad := results[1].Result
	if bad == nil || !bad.Failed() {
		t.Fatal("panicking cell did not produce a terminal error fact")
	}
	if !strings.Contains(bad.Err, "poisoned cell") || !strings.Contains(bad.Err, "goroutine") {
		t.Fatalf("panic fact missing message or stack: %q", bad.Err)
	}
	if view, _ := d.Job(v.ID); view.Status != store.StatusDone || view.Failed != 1 {
		t.Fatalf("job view after contained panic: %+v", view)
	}

	// The daemon survives: a fresh job still runs to completion.
	after := tinySpec()
	after.Seed = 99
	v2, _, err := d.Submit(after)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d, v2.ID)
}

// TestDaemonRetrySchedule: a cell that keeps failing is retried
// exactly MaxRetries times, waiting the reproducible decorrelated-
// jitter schedule between attempts, and ends as an error fact carrying
// the attempt count.
func TestDaemonRetrySchedule(t *testing.T) {
	clock := newFakeClock()
	d, err := New(Config{
		Repo:        store.NewMemory(),
		Clock:       clock,
		Workers:     1,
		MaxRetries:  3,
		BackoffSeed: 21,
		RunCell: func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			panic("always failing")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(0)
	spec := tinySpec()
	v, _, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d, v.ID)

	results, _ := d.Results(v.ID)
	fact := results[0].Result
	if fact == nil || !fact.Failed() || fact.Attempts != 4 {
		t.Fatalf("want a failed fact after 4 attempts, got %+v", fact)
	}

	cells, _ := spec.Cells()
	want := NewBackoff(0, 0, cellBackoffSeed(21, store.KeyOf(cells[0].Cfg)))
	waits := clock.recorded()
	if len(waits) != 3 {
		t.Fatalf("recorded %d backoff waits, want 3: %v", len(waits), waits)
	}
	for i, w := range waits {
		if exp := want.Next(); w != exp {
			t.Fatalf("wait %d was %s, want the seeded schedule's %s", i, w, exp)
		}
	}
}

// TestDaemonQueueCap: admissions that would exceed the queue cap are
// rejected with a retry hint instead of queuing unboundedly, and
// capacity freed by completion re-admits.
func TestDaemonQueueCap(t *testing.T) {
	gate := make(chan struct{})
	d, err := New(Config{
		Repo:     store.NewMemory(),
		Workers:  1,
		QueueCap: 1,
		RunCell: func(a *sim.Arena, cfg sim.Config, slice float64, cont func() bool) (sim.SkewReport, bool) {
			<-gate
			return a.RunSliced(cfg, slice, cont)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(0)

	first := tinySpec()
	if _, _, err := d.Submit(first); err != nil {
		t.Fatal(err)
	}
	second := tinySpec()
	second.Seed = 2
	_, _, err = d.Submit(second)
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("over-cap submission got %v, want OverloadError", err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("overload carries no retry hint: %+v", over)
	}

	close(gate)
	v1, _ := d.Job(mustID(t, first))
	waitDone(t, d, v1.ID)
	if _, _, err := d.Submit(second); err != nil {
		t.Fatalf("submission after capacity freed: %v", err)
	}
}

// TestDaemonDrain: drain stops admission and finishes in-flight work;
// a drained daemon rejects with ErrDraining.
func TestDaemonDrain(t *testing.T) {
	d, err := New(Config{Repo: store.NewMemory(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := d.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d, v.ID)
	if err := d.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	if !d.Draining() {
		t.Fatal("daemon does not report draining")
	}
	if _, _, err := d.Submit(tinySpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission while draining got %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	if err := d.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

func mustID(t *testing.T, s SweepSpec) string {
	t.Helper()
	id, err := s.ID()
	if err != nil {
		t.Fatal(err)
	}
	return id
}
