package jobd

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"gcs/internal/store"
)

// maxSpecBytes bounds a submitted spec body; grids are lists of short
// names and numbers, so a megabyte is generous.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /jobs               submit a SweepSpec; 202 on admission,
//	                         200 if the job already exists, 400 on a
//	                         bad spec, 429 (+Retry-After) when the
//	                         queue is full, 503 while draining
//	GET  /jobs               list jobs
//	GET  /jobs/{id}          one job's status
//	GET  /jobs/{id}/results  the job's cells in grid order; partial
//	                         jobs return partial results
//	GET  /healthz            liveness + drain state
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", d.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", d.handleJob)
	mux.HandleFunc("GET /jobs/{id}/results", d.handleResults)
	mux.HandleFunc("GET /healthz", d.handleHealth)
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		http.Error(w, "jobd: spec body unreadable or over "+strconv.Itoa(maxSpecBytes)+" bytes",
			http.StatusBadRequest)
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	view, created, err := d.Submit(spec)
	if err != nil {
		var over *OverloadError
		switch {
		case errors.Is(err, ErrDraining):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.As(err, &over):
			secs := int(over.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, view)
}

func (d *Daemon) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Jobs())
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := d.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "jobd: no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// resultsResponse is the GET /jobs/{id}/results payload.
type resultsResponse struct {
	ID     string          `json:"id"`
	Status store.JobStatus `json:"status"`
	Cells  []CellView      `json:"cells"`
}

func (d *Daemon) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := d.Job(id)
	if !ok {
		http.Error(w, "jobd: no such job", http.StatusNotFound)
		return
	}
	cells, _ := d.Results(id)
	writeJSON(w, http.StatusOK, resultsResponse{ID: view.ID, Status: view.Status, Cells: cells})
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{"ok", d.Draining()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the client sees a short body.
		return
	}
}
