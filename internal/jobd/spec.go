// Package jobd is the sweep job daemon behind gcsimd: it accepts sweep
// specs, expands them into cells, schedules the cells across a bounded
// worker pool, and persists every cell outcome through a
// store.Repository. Determinism does the heavy lifting — a cell is a
// pure function of its config, so the daemon can dedupe identical
// cells across jobs, serve stored cells without re-running them, and
// resume a killed sweep bit-identically by re-enqueuing only the cells
// whose facts are missing from the store.
package jobd

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"gcs/internal/sim"
)

// MaxCells caps a single spec's grid. The cap is checked before
// expansion, so a hostile spec cannot allocate an unbounded cell list.
const MaxCells = 65536

// SweepSpec is the wire form of one sweep job: the same scenario grid
// `gcsim sweep` builds from its flags — node counts x topologies x
// drivers x churn processes — plus the shared per-cell physics. Cells
// expands it with exactly the CLI's grid semantics, so a spec submitted
// to the daemon and the same flags run locally name, seed, and order
// their cells identically.
type SweepSpec struct {
	Ns      []int    `json:"ns"`
	Topos   []string `json:"topos"`
	Drivers []string `json:"drivers"`
	Churns  []string `json:"churns"`
	// Seed is the base seed; each cell derives its own with
	// sim.CellSeed(Seed, index).
	Seed     uint64        `json:"seed"`
	Horizon  float64       `json:"horizon,omitempty"`
	Rho      float64       `json:"rho,omitempty"`
	MaxDelay float64       `json:"max_delay,omitempty"`
	Beacon   float64       `json:"beacon,omitempty"`
	Sample   float64       `json:"sample,omitempty"`
	Interval float64       `json:"interval,omitempty"`
	Parallel bool          `json:"parallel,omitempty"`
	Shards   int           `json:"shards,omitempty"`
	Faults   sim.FaultSpec `json:"faults"`
}

// DecodeSpec parses a spec from JSON. Unknown fields and trailing data
// are rejected — a typoed field name silently ignored would run the
// wrong sweep.
func DecodeSpec(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("jobd: bad sweep spec: %w", err)
	}
	if dec.More() {
		return SweepSpec{}, fmt.Errorf("jobd: trailing data after sweep spec")
	}
	return s, nil
}

// normalized trims and lowercases the list fields so cosmetic spelling
// differences neither change the job's identity nor its cells.
func (s SweepSpec) normalized() SweepSpec {
	s.Ns = append([]int(nil), s.Ns...)
	s.Topos = cleanList(s.Topos)
	s.Drivers = cleanList(s.Drivers)
	s.Churns = cleanList(s.Churns)
	return s
}

func cleanList(in []string) []string {
	out := make([]string, 0, len(in))
	for _, v := range in {
		if v = strings.ToLower(strings.TrimSpace(v)); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// CanonicalJSON is the spec's identity encoding: the JSON of its
// normalized form. It is what JobRecord.Spec stores, and what ID
// hashes, so a resumed job re-derives the same ID it was admitted
// under.
func (s SweepSpec) CanonicalJSON() ([]byte, error) {
	data, err := json.Marshal(s.normalized())
	if err != nil {
		return nil, fmt.Errorf("jobd: encode sweep spec: %w", err)
	}
	return data, nil
}

// ID is the job's deterministic identity: the first 16 hex digits of
// the SHA-256 of the canonical spec JSON. Submitting the same spec
// twice therefore lands on the same job.
func (s SweepSpec) ID() (string, error) {
	data, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]), nil
}

// Cells expands the spec into its sweep cells with the CLI grid's exact
// semantics: loop order n -> topology -> driver -> churn; the rotating
// star ignores the topology spec (the churner builds its own stars), so
// it is emitted once per (n, driver) — on the first topology of the
// list — labeled "-"; every cell gets Workers=1 (the daemon already
// parallelizes across cells) and a seed derived from the base seed and
// its emitted index.
func (s SweepSpec) Cells() ([]sim.SweepCell, error) {
	s = s.normalized()
	if len(s.Ns) == 0 || len(s.Topos) == 0 || len(s.Drivers) == 0 || len(s.Churns) == 0 {
		return nil, fmt.Errorf("jobd: spec needs at least one n, topology, driver, and churn")
	}
	total := 1
	for _, l := range []int{len(s.Ns), len(s.Topos), len(s.Drivers), len(s.Churns)} {
		total *= l
		if total > MaxCells {
			return nil, fmt.Errorf("jobd: grid exceeds the %d-cell cap", MaxCells)
		}
	}
	var cells []sim.SweepCell
	for _, n := range s.Ns {
		for _, topoName := range s.Topos {
			for _, drvName := range s.Drivers {
				for _, churnName := range s.Churns {
					star := churnName == "rotatingstar"
					if star && topoName != s.Topos[0] {
						continue
					}
					cfg := sim.Config{
						N:           n,
						Horizon:     s.Horizon,
						Rho:         s.Rho,
						MaxDelay:    s.MaxDelay,
						SampleEvery: s.Sample,
						Parallel:    s.Parallel,
						Shards:      s.Shards,
						Workers:     1,
					}
					cfg.Node.BeaconEvery = s.Beacon
					drv, err := ParseDriver(drvName, s.Interval)
					if err != nil {
						return nil, err
					}
					cfg.Driver = drv
					churn, err := ParseChurn(churnName, n)
					if err != nil {
						return nil, err
					}
					cfg.Churn = churn
					cfg.Faults = s.Faults
					label := topoName
					if star {
						label = "-"
					} else {
						topo, err := ParseTopology(topoName, n)
						if err != nil {
							return nil, err
						}
						cfg.Topology = topo
					}
					cfg.Seed = sim.CellSeed(s.Seed, len(cells))
					name := fmt.Sprintf("%s/%s/%s/n=%d", label, drvName, churnName, n)
					cells = append(cells, sim.SweepCell{Name: name, Cfg: cfg})
				}
			}
		}
	}
	return cells, nil
}

// Validate expands the spec and validates every cell config, so a bad
// spec is rejected whole at admission instead of failing cell by cell.
func (s SweepSpec) Validate() error {
	cells, err := s.Cells()
	if err != nil {
		return err
	}
	for i := range cells {
		if err := cells[i].Cfg.Validate(); err != nil {
			return fmt.Errorf("jobd: cell %d (%s): %w", i, cells[i].Name, err)
		}
	}
	return nil
}

// ParseTopology maps a topology name to its spec; grid uses the most
// square factorization of n.
func ParseTopology(name string, n int) (sim.TopologySpec, error) {
	switch name {
	case "line":
		return sim.TopologySpec{Kind: sim.TopoLine}, nil
	case "ring":
		return sim.TopologySpec{Kind: sim.TopoRing}, nil
	case "star":
		return sim.TopologySpec{Kind: sim.TopoStar}, nil
	case "grid":
		w := gridW(n)
		return sim.TopologySpec{Kind: sim.TopoGrid, W: w, H: n / w}, nil
	case "complete":
		return sim.TopologySpec{Kind: sim.TopoComplete}, nil
	}
	return sim.TopologySpec{}, fmt.Errorf("jobd: unknown topology %q", name)
}

// ParseDriver maps a driver name to its spec.
func ParseDriver(name string, interval float64) (sim.DriverSpec, error) {
	switch name {
	case "constant":
		return sim.DriverSpec{Kind: sim.DriveConstant, Interval: interval}, nil
	case "randomwalk":
		return sim.DriverSpec{Kind: sim.DriveRandomWalk, Interval: interval}, nil
	case "bangbang":
		return sim.DriverSpec{Kind: sim.DriveBangBang, Interval: interval}, nil
	}
	return sim.DriverSpec{}, fmt.Errorf("jobd: unknown driver %q", name)
}

// ParseChurn maps a churn name to its spec, scaling the volatile
// candidate pool with n.
func ParseChurn(name string, n int) (sim.ChurnSpec, error) {
	switch name {
	case "none":
		return sim.ChurnSpec{}, nil
	case "volatile":
		return sim.ChurnSpec{
			Kind: sim.ChurnVolatile, Lifetime: 1.5, Absence: 1.0, ExtraEdges: n / 2,
		}, nil
	case "rotatingstar":
		return sim.ChurnSpec{Kind: sim.ChurnRotatingStar, Period: 2, Overlap: 0.5}, nil
	}
	return sim.ChurnSpec{}, fmt.Errorf("jobd: unknown churn %q", name)
}

// gridW returns the largest divisor of n not exceeding its square root,
// giving the most square WxH factorization of the grid scenario.
func gridW(n int) int {
	w := 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w
}
