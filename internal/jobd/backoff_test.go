package jobd

import (
	"testing"
	"time"
)

// TestBackoffDeterministic: a schedule is a pure function of its seed.
func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(100*time.Millisecond, 5*time.Second, 42)
	b := NewBackoff(100*time.Millisecond, 5*time.Second, 42)
	for i := 0; i < 20; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("step %d: same seed diverged (%s vs %s)", i, x, y)
		}
	}
	c := NewBackoff(100*time.Millisecond, 5*time.Second, 43)
	same := true
	d := NewBackoff(100*time.Millisecond, 5*time.Second, 42)
	for i := 0; i < 20; i++ {
		if c.Next() != d.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 20-step schedules")
	}
}

// TestBackoffBounds: every wait lies in [base, limit], and the schedule
// grows toward the limit rather than collapsing.
func TestBackoffBounds(t *testing.T) {
	base, limit := 50*time.Millisecond, 2*time.Second
	bo := NewBackoff(base, limit, 7)
	hitLimitHalf := false
	for i := 0; i < 100; i++ {
		d := bo.Next()
		if d < base || d > limit {
			t.Fatalf("step %d: wait %s outside [%s, %s]", i, d, base, limit)
		}
		if d >= limit/2 {
			hitLimitHalf = true
		}
	}
	if !hitLimitHalf {
		t.Fatal("schedule never grew past half the limit in 100 steps")
	}
}

// TestBackoffDefaults: zero base and an inverted limit normalize to
// usable values instead of a degenerate schedule.
func TestBackoffDefaults(t *testing.T) {
	bo := NewBackoff(0, 0, 1)
	d := bo.Next()
	if d < 100*time.Millisecond || d > 5*time.Second {
		t.Fatalf("defaulted schedule yielded %s", d)
	}
	big := NewBackoff(10*time.Second, time.Second, 1)
	if d := big.Next(); d != 10*time.Second {
		t.Fatalf("limit below base should clamp to base, got %s", d)
	}
}
