package jobd

import (
	"encoding/binary"
	"time"

	"gcs/internal/des"
	"gcs/internal/store"
)

// Backoff yields a decorrelated-jitter exponential schedule: each wait
// is drawn uniformly from [base, 3*prev] and clamped to the limit. The
// draws come from a seeded des.Rand, so a retry schedule is a pure
// function of its seed — tests replay the exact schedule, and two
// daemons configured alike back off identically.
type Backoff struct {
	base, limit time.Duration
	prev        time.Duration
	rng         *des.Rand
}

// NewBackoff returns a schedule starting at base and clamped to limit.
// Non-positive base defaults to 100ms; a limit below base is raised to
// max(base, 5s).
func NewBackoff(base, limit time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if limit < base {
		limit = 5 * time.Second
		if limit < base {
			limit = base
		}
	}
	return &Backoff{base: base, limit: limit, prev: base, rng: des.NewRand(seed)}
}

// Next returns the next wait in the schedule.
func (b *Backoff) Next() time.Duration {
	d := time.Duration(b.rng.Range(float64(b.base), 3*float64(b.prev)))
	if d > b.limit {
		d = b.limit
	}
	b.prev = d
	return d
}

// cellBackoffSeed folds a cell's content address into the daemon's
// backoff seed, so concurrent retrying cells don't back off in
// lockstep while each cell's schedule stays reproducible.
func cellBackoffSeed(base uint64, k store.Key) uint64 {
	return base ^ binary.LittleEndian.Uint64(k[:8])
}
