package jobd

import (
	"fmt"
	"strings"
	"testing"

	"gcs/internal/sim"
)

// tinySpec is a fast two-cell-ish grid used across the daemon tests.
func tinySpec() SweepSpec {
	return SweepSpec{
		Ns:      []int{8},
		Topos:   []string{"ring"},
		Drivers: []string{"constant"},
		Churns:  []string{"none"},
		Seed:    7,
		Horizon: 2,
	}
}

// TestSpecCellsGridSemantics pins the CLI grid contract: loop order,
// per-index seeds, Workers=1, and the rotating star emitted once per
// (n, driver) on the first topology, labeled "-".
func TestSpecCellsGridSemantics(t *testing.T) {
	spec := SweepSpec{
		Ns:      []int{8, 12},
		Topos:   []string{"ring", "line"},
		Drivers: []string{"constant", "bangbang"},
		Churns:  []string{"none", "rotatingstar"},
		Seed:    3,
		Horizon: 2,
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// Per n: topo ring emits none+rotatingstar for each driver (4),
	// topo line emits only none for each driver (2).
	if want := 2 * (4 + 2); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	wantNames := []string{
		"ring/constant/none/n=8", "-/constant/rotatingstar/n=8",
		"ring/bangbang/none/n=8", "-/bangbang/rotatingstar/n=8",
		"line/constant/none/n=8", "line/bangbang/none/n=8",
		"ring/constant/none/n=12", "-/constant/rotatingstar/n=12",
		"ring/bangbang/none/n=12", "-/bangbang/rotatingstar/n=12",
		"line/constant/none/n=12", "line/bangbang/none/n=12",
	}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Fatalf("cell %d named %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Cfg.Seed != sim.CellSeed(3, i) {
			t.Errorf("cell %d seed %d, want CellSeed(3, %d)", i, c.Cfg.Seed, i)
		}
		if c.Cfg.Workers != 1 {
			t.Errorf("cell %d has Workers=%d, want 1", i, c.Cfg.Workers)
		}
		if err := c.Cfg.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
}

// TestSpecNormalization: cosmetic spelling differences change neither
// the cells nor the job identity.
func TestSpecNormalization(t *testing.T) {
	a := tinySpec()
	b := tinySpec()
	b.Topos = []string{" Ring "}
	b.Drivers = []string{"", "CONSTANT"}
	idA, err := a.ID()
	if err != nil {
		t.Fatal(err)
	}
	idB, err := b.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB {
		t.Fatalf("normalized specs got different IDs: %s vs %s", idA, idB)
	}
	c := tinySpec()
	c.Seed = 8
	if idC, _ := c.ID(); idC == idA {
		t.Fatal("different seeds share a job ID")
	}
}

// TestSpecErrors: empty lists, unknown names, and over-cap grids are
// rejected before any cell runs.
func TestSpecErrors(t *testing.T) {
	empty := tinySpec()
	empty.Drivers = nil
	if _, err := empty.Cells(); err == nil {
		t.Error("empty driver list accepted")
	}
	unknown := tinySpec()
	unknown.Topos = []string{"torus"}
	if _, err := unknown.Cells(); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("unknown topology not rejected by name: %v", err)
	}
	huge := tinySpec()
	for i := 0; i < 300; i++ {
		huge.Ns = append(huge.Ns, 8+i)
		huge.Topos = append(huge.Topos, fmt.Sprintf("t%d", i))
	}
	if _, err := huge.Cells(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("over-cap grid not rejected: %v", err)
	}
	badCell := tinySpec()
	badCell.Rho = -1
	if err := badCell.Validate(); err == nil {
		t.Error("spec with invalid cell config passed Validate")
	}
}

// TestSpecRoundTrip: canonical JSON decodes back to a spec with the
// same identity, so resumed jobs land on their original ID.
func TestSpecRoundTrip(t *testing.T) {
	spec := SweepSpec{
		Ns:      []int{8},
		Topos:   []string{"Grid "},
		Drivers: []string{"randomwalk"},
		Churns:  []string{"volatile"},
		Seed:    11,
		Horizon: 2,
	}
	spec.Faults.Drop = 0.05
	data, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := spec.ID()
	id2, _ := back.ID()
	if id1 != id2 {
		t.Fatalf("ID changed across the canonical round trip: %s vs %s", id1, id2)
	}
}

// TestDecodeSpecRejects: unknown fields and trailing garbage are
// errors, not silent no-ops.
func TestDecodeSpecRejects(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"ns":[8],"topoz":["ring"]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeSpec([]byte(`{"ns":[8]} {"ns":[9]}`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := DecodeSpec([]byte(`[1,2,3`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
