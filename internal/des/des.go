// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel models the continuous-time executions of the paper's Timed
// I/O Automata network model (Kuhn, Locher, Oshman, MIT-CSAIL-TR-2009-022,
// Section 3.2): time is a nonnegative real (float64), events fire in
// nondecreasing time order, and ties are broken deterministically by
// scheduling order, so a simulation with a fixed seed is bit-reproducible.
//
// All higher layers (clocks, transport, algorithms) are driven by this
// kernel. Between events every continuous quantity in the system is
// piecewise linear, so evaluating state lazily at event boundaries is
// exact and introduces no discretization error.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated real time, in seconds. The simulation
// starts at time 0, matching the paper's convention that all hardware
// clocks read 0 at the beginning of the execution.
type Time = float64

// Handler is the callback invoked when an event fires. It runs at the
// event's scheduled time; Engine.Now() returns that time for the duration
// of the call.
type Handler func()

// Event is a scheduled occurrence in the simulation. Events are owned by
// the engine; user code holds *Event handles only to cancel them.
type Event struct {
	t         Time
	seq       uint64
	fn        Handler
	cancelled bool
	index     int // heap index, -1 when popped
	label     string
}

// Time returns the simulated time at which the event is (or was)
// scheduled to fire.
func (e *Event) Time() Time { return e.t }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// Label returns the debug label attached at scheduling time.
func (e *Event) Label() string { return e.label }

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the live goroutine runtime in internal/runtime is
// the concurrent counterpart.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	// executed counts events that have fired (not cancelled ones).
	executed uint64
	// stopped is set by Stop to end Run early.
	stopped bool
}

// NewEngine returns an engine positioned at time 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time. During an event handler this is
// the handler's scheduled fire time.
func (en *Engine) Now() Time { return en.now }

// Executed returns the number of events that have fired so far.
func (en *Engine) Executed() uint64 { return en.executed }

// Pending returns the number of events in the queue, including cancelled
// events that have not yet been discarded.
func (en *Engine) Pending() int { return len(en.queue) }

// Schedule registers fn to run at absolute time t and returns a handle
// that can be cancelled. Scheduling in the past (t < Now) panics: the
// network model has no retroactive events, so this is always a bug in the
// caller.
func (en *Engine) Schedule(t Time, label string, fn Handler) *Event {
	if math.IsNaN(t) {
		panic("des: schedule at NaN time")
	}
	if t < en.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v (%s)", t, en.now, label))
	}
	e := &Event{t: t, seq: en.nextSeq, fn: fn, label: label}
	en.nextSeq++
	heap.Push(&en.queue, e)
	return e
}

// ScheduleAfter registers fn to run d seconds of simulated time from now.
func (en *Engine) ScheduleAfter(d Time, label string, fn Handler) *Event {
	return en.Schedule(en.now+d, label, fn)
}

// Cancel marks an event as cancelled. A cancelled event never fires.
// Cancelling a nil, already-fired, or already-cancelled event is a no-op,
// mirroring the paper's cancel(timer-ID) semantics.
func (en *Engine) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&en.queue, e.index)
		e.index = -1
	}
}

// Stop makes the current Run invocation return after the current event
// handler completes.
func (en *Engine) Stop() { en.stopped = true }

// Step fires the single earliest pending event, if any, and reports
// whether an event fired.
func (en *Engine) Step() bool {
	for len(en.queue) > 0 {
		e := heap.Pop(&en.queue).(*Event)
		if e.cancelled {
			continue
		}
		en.now = e.t
		en.executed++
		e.fn()
		return true
	}
	return false
}

// Run fires events in order until the queue is empty, Stop is called, or
// the next event would fire strictly after horizon. On return Now() is
// min(horizon, time of last event) if events fired, or horizon if the
// queue drained earlier; the engine always advances Now to horizon so
// that callers can sample end-of-run state.
func (en *Engine) Run(horizon Time) {
	en.stopped = false
	for !en.stopped {
		e := en.peek()
		if e == nil || e.t > horizon {
			break
		}
		en.Step()
	}
	if en.now < horizon {
		en.now = horizon
	}
}

// RunUntilIdle fires events until none remain or Stop is called. It
// panics if more than maxEvents fire, as a guard against runaway
// self-rescheduling loops.
func (en *Engine) RunUntilIdle(maxEvents uint64) {
	en.stopped = false
	start := en.executed
	for !en.stopped && en.Step() {
		if en.executed-start > maxEvents {
			panic(fmt.Sprintf("des: exceeded %d events (runaway schedule?)", maxEvents))
		}
	}
}

// peek returns the earliest non-cancelled event without firing it.
func (en *Engine) peek() *Event {
	for len(en.queue) > 0 {
		e := en.queue[0]
		if !e.cancelled {
			return e
		}
		heap.Pop(&en.queue)
	}
	return nil
}

// NextEventTime returns the fire time of the earliest pending event and
// true, or (0, false) if the queue is empty.
func (en *Engine) NextEventTime() (Time, bool) {
	e := en.peek()
	if e == nil {
		return 0, false
	}
	return e.t, true
}
