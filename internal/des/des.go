// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel models the continuous-time executions of the paper's Timed
// I/O Automata network model (Kuhn, Locher, Oshman, MIT-CSAIL-TR-2009-022,
// Section 3.2): time is a nonnegative real (float64), events fire in
// nondecreasing time order, and ties are broken deterministically by
// scheduling order, so a simulation with a fixed seed is bit-reproducible.
//
// All higher layers (clocks, transport, algorithms) are driven by this
// kernel. Between events every continuous quantity in the system is
// piecewise linear, so evaluating state lazily at event boundaries is
// exact and introduces no discretization error.
//
// The kernel is allocation-free in steady state: fired and cancelled
// events are recycled through a free list, the priority queue is a
// hand-rolled 4-ary index heap (shallower than a binary heap for the
// push/pop-heavy simulation workload, with no container/heap interface
// overhead), and ScheduleArg lets periodic schedulers reuse one
// long-lived callback instead of allocating a closure per event.
package des

import (
	"fmt"
	"math"
)

// Time is a point in simulated real time, in seconds. The simulation
// starts at time 0, matching the paper's convention that all hardware
// clocks read 0 at the beginning of the execution.
type Time = float64

// Handler is the callback invoked when an event fires. It runs at the
// event's scheduled time; Engine.Now() returns that time for the duration
// of the call.
type Handler func()

// ArgHandler is the argument-carrying form of Handler: one long-lived
// ArgHandler can back any number of events, distinguished by arg, so
// schedulers on hot paths do not allocate a closure per event.
type ArgHandler func(arg uint64)

// TraceFn observes event firings. It is called once per fired event,
// immediately before the event's callback runs, with the event's time
// and debug label. Cancelled events are never traced. The hook sits on
// the kernel's hottest path, so implementations must not allocate;
// recorders (e.g. the sim layer's time-series tracing) write into
// pre-sized ring buffers.
type TraceFn func(t Time, label string)

// Event is a scheduled occurrence in the simulation. Events are owned by
// the engine and recycled after they fire or are cancelled; user code
// only ever holds EventRef handles.
type Event struct {
	t     Time
	seq   uint64
	arg   uint64
	fn    Handler
	afn   ArgHandler
	label string
	gen   uint32
	index int32 // position in the heap, -1 when pooled
}

// EventRef is a generation-checked handle to a scheduled event. The zero
// EventRef refers to no event. A ref goes stale the instant its event
// fires or is cancelled; stale refs are safe to hold and to Cancel (a
// no-op), even after the engine recycles the underlying Event for a new
// schedule.
type EventRef struct {
	e   *Event
	gen uint32
}

// Pending reports whether the referenced event is still scheduled (not
// yet fired or cancelled).
func (r EventRef) Pending() bool { return r.e != nil && r.e.gen == r.gen }

// Time returns the scheduled fire time while the event is pending, and
// NaN once the ref is stale (the underlying Event may have been recycled).
func (r EventRef) Time() Time {
	if !r.Pending() {
		return math.NaN()
	}
	return r.e.t
}

// Label returns the debug label while the event is pending, and "" once
// the ref is stale.
func (r EventRef) Label() string {
	if !r.Pending() {
		return ""
	}
	return r.e.label
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use.
type Engine struct {
	now     Time
	heap    []*Event // 4-ary min-heap ordered by (t, seq)
	free    []*Event // recycled events
	nextSeq uint64
	// executed counts events that have fired (not cancelled ones).
	executed uint64
	// stopped is set by Stop to end Run early.
	stopped bool
	// trace, when non-nil, observes every fired event.
	trace TraceFn
}

// NewEngine returns an engine positioned at time 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time. During an event handler this is
// the handler's scheduled fire time.
func (en *Engine) Now() Time { return en.now }

// Reset returns the engine to time 0 with an empty queue, recycling every
// pending event through the free list so a rewired simulation reuses the
// warm pool instead of reallocating it. Outstanding EventRefs go stale
// (Cancel on them stays a harmless no-op); the executed counter restarts;
// an installed trace hook is kept.
func (en *Engine) Reset() {
	for i, e := range en.heap {
		en.heap[i] = nil
		en.release(e)
	}
	en.heap = en.heap[:0]
	en.now = 0
	en.nextSeq = 0
	en.executed = 0
	en.stopped = false
}

// Executed returns the number of events that have fired so far.
func (en *Engine) Executed() uint64 { return en.executed }

// SetTraceHook installs fn as the engine's event tracer (nil removes
// it). The hook fires for every executed event, before its callback;
// see TraceFn for the contract.
func (en *Engine) SetTraceHook(fn TraceFn) { en.trace = fn }

// Pending returns the number of events in the queue. Cancelled events are
// removed eagerly, so every counted event will fire unless cancelled
// later.
func (en *Engine) Pending() int { return len(en.heap) }

// PoolSize returns the number of recycled events on the free list, for
// observability in tests.
func (en *Engine) PoolSize() int { return len(en.free) }

// Schedule registers fn to run at absolute time t and returns a handle
// that can be cancelled. Scheduling in the past (t < Now) panics: the
// network model has no retroactive events, so this is always a bug in the
// caller.
//
//gcslint:zeroalloc
func (en *Engine) Schedule(t Time, label string, fn Handler) EventRef {
	e := en.schedule(t, label)
	e.fn = fn
	return EventRef{e: e, gen: e.gen}
}

// ScheduleArg registers fn(arg) to run at absolute time t. It is the
// zero-allocation counterpart of Schedule for callers that would
// otherwise close over per-event state.
//
//gcslint:zeroalloc
func (en *Engine) ScheduleArg(t Time, label string, fn ArgHandler, arg uint64) EventRef {
	e := en.schedule(t, label)
	e.afn = fn
	e.arg = arg
	return EventRef{e: e, gen: e.gen}
}

//gcslint:zeroalloc
func (en *Engine) schedule(t Time, label string) *Event {
	if math.IsNaN(t) {
		panic("des: schedule at NaN time")
	}
	if t < en.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v (%s)", t, en.now, label))
	}
	var e *Event
	if n := len(en.free); n > 0 {
		e = en.free[n-1]
		en.free[n-1] = nil
		en.free = en.free[:n-1]
	} else {
		e = &Event{}
	}
	e.t = t
	e.seq = en.nextSeq
	e.label = label
	en.nextSeq++
	en.push(e)
	return e
}

// ScheduleAfter registers fn to run d seconds of simulated time from now.
func (en *Engine) ScheduleAfter(d Time, label string, fn Handler) EventRef {
	return en.Schedule(en.now+d, label, fn)
}

// ScheduleAfterArg registers fn(arg) to run d seconds from now.
func (en *Engine) ScheduleAfterArg(d Time, label string, fn ArgHandler, arg uint64) EventRef {
	return en.ScheduleArg(en.now+d, label, fn, arg)
}

// Cancel removes the referenced event from the queue and recycles it. A
// cancelled event never fires. Cancelling a zero or stale ref (already
// fired, already cancelled, or recycled) is a no-op, mirroring the
// paper's cancel(timer-ID) semantics.
func (en *Engine) Cancel(r EventRef) {
	e := r.e
	if e == nil || e.gen != r.gen {
		return
	}
	en.remove(int(e.index))
	en.release(e)
}

// release invalidates outstanding refs and returns e to the free list.
//
//gcslint:zeroalloc
func (en *Engine) release(e *Event) {
	e.gen++
	e.fn = nil
	e.afn = nil
	e.label = ""
	e.index = -1
	en.free = append(en.free, e)
}

// fire advances time to e, recycles it, and runs its callback. The event
// is released before the callback so the callback may schedule new events
// that reuse it; outstanding refs are already stale by then.
//
//gcslint:zeroalloc
func (en *Engine) fire(e *Event) {
	en.now = e.t
	en.executed++
	fn, afn, arg := e.fn, e.afn, e.arg
	if en.trace != nil {
		en.trace(e.t, e.label)
	}
	en.release(e)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
}

// Stop requests that event execution halt. A Stop issued from inside an
// event handler makes the surrounding Run/RunUntilIdle return after the
// handler completes; a Stop issued between runs makes the next
// Run/RunUntilIdle return before firing any event. The request is sticky
// until a run loop consumes it — it is never silently discarded — and
// each request stops exactly one run. A consumed stop leaves Now() at
// the last fired event's time (the queue may still hold earlier-than-
// horizon events), so a later Step or Run resumes exactly where the
// stopped run left off.
func (en *Engine) Stop() { en.stopped = true }

// Stopped reports whether a Stop request is pending (not yet consumed by
// a run loop).
func (en *Engine) Stopped() bool { return en.stopped }

// Step fires the single earliest pending event, if any, and reports
// whether an event fired.
func (en *Engine) Step() bool {
	if len(en.heap) == 0 {
		return false
	}
	e := en.heap[0]
	en.remove(0)
	en.fire(e)
	return true
}

// Run fires events in order until the queue is empty, Stop is called, or
// the next event would fire strictly after horizon. When the loop drains
// the queue or breaks on the horizon check, Now() is advanced to horizon
// so that callers can sample end-of-run state. When Stop halted the loop,
// Now() stays at the last fired event's time: events earlier than the
// horizon may still be pending, and advancing past them would make a
// later Step fire them in the simulated past (time running backwards)
// and make legitimate Schedule calls between the pending event and the
// horizon panic. The head of the queue is fired directly — cancellation
// removes events eagerly, so no skip pass is needed between the peek and
// the fire.
func (en *Engine) Run(horizon Time) {
	for !en.stopped && len(en.heap) > 0 {
		e := en.heap[0]
		if e.t > horizon {
			break
		}
		en.remove(0)
		en.fire(e)
	}
	if en.stopped {
		en.stopped = false // consume the request; Now stays put
		return
	}
	if en.now < horizon {
		en.now = horizon
	}
}

// RunBefore fires events in order while the head's time is strictly less
// than limit, without ever advancing Now beyond the last fired event.
// Unlike Run it ignores Stop requests (it is the inner loop of the
// parallel coordinator, which checks Stop at window barriers). It returns
// the number of events fired.
func (en *Engine) RunBefore(limit Time) int {
	fired := 0
	for len(en.heap) > 0 {
		e := en.heap[0]
		if e.t >= limit {
			break
		}
		en.remove(0)
		en.fire(e)
		fired++
	}
	return fired
}

// AdvanceTo moves Now forward to t without firing anything. It panics if
// an event earlier than t is pending — advancing over it would fire it
// in the past later. Calls with t <= Now are no-ops, so callers can
// advance a set of engines to a common barrier time unconditionally.
func (en *Engine) AdvanceTo(t Time) {
	if t <= en.now {
		return
	}
	if len(en.heap) > 0 && en.heap[0].t < t {
		panic(fmt.Sprintf("des: AdvanceTo(%v) over pending event at %v", t, en.heap[0].t))
	}
	en.now = t
}

// RunUntilIdle fires events until none remain or Stop is called (see
// Stop for the sticky consume-one-run semantics Run shares). It panics
// if more than maxEvents fire, as a guard against runaway
// self-rescheduling loops.
func (en *Engine) RunUntilIdle(maxEvents uint64) {
	start := en.executed
	for !en.stopped && en.Step() {
		if en.executed-start > maxEvents {
			panic(fmt.Sprintf("des: exceeded %d events (runaway schedule?)", maxEvents))
		}
	}
	en.stopped = false
}

// NextEventTime returns the fire time of the earliest pending event and
// true, or (0, false) if the queue is empty.
func (en *Engine) NextEventTime() (Time, bool) {
	if len(en.heap) == 0 {
		return 0, false
	}
	return en.heap[0].t, true
}

// ---- 4-ary index heap, ordered by (t, seq) ----

func eventLess(a, b *Event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

//gcslint:zeroalloc
func (en *Engine) push(e *Event) {
	en.heap = append(en.heap, e)
	e.index = int32(len(en.heap) - 1)
	en.siftUp(len(en.heap) - 1)
}

// remove deletes the event at heap position i, restoring the invariant.
//
//gcslint:zeroalloc
func (en *Engine) remove(i int) {
	h := en.heap
	n := len(h) - 1
	e := h[i]
	if i != n {
		moved := h[n]
		h[i] = moved
		moved.index = int32(i)
	}
	h[n] = nil
	en.heap = h[:n]
	if i < n {
		moved := en.heap[i]
		en.siftDown(i)
		en.siftUp(int(moved.index))
	}
	e.index = -1
}

//gcslint:zeroalloc
func (en *Engine) siftUp(i int) {
	h := en.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = e
	e.index = int32(i)
}

//gcslint:zeroalloc
func (en *Engine) siftDown(i int) {
	h := en.heap
	n := len(h)
	e := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[m]) {
				m = c
			}
		}
		if !eventLess(h[m], e) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = e
	e.index = int32(i)
}
