package des

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ParallelEngine is a conservative (safe-window) parallel coordinator
// over node-sharded Engines. Each shard owns a serial Engine holding the
// events of its node subset; a separate global Engine holds the
// cross-cutting events (skew sampling, topology churn) that must observe
// every shard at a single consistent instant.
//
// Execution alternates two phases:
//
//   - Window phase: with tmin the earliest pending shard event and gt
//     the earliest pending global event, all shards concurrently fire
//     their events in [tmin, W) where W = min(tmin+lookahead, gt,
//     horizon). The lookahead is the minimum cross-shard message delay,
//     so nothing fired inside the window can schedule into another
//     shard before W — the classical conservative-PDES safety argument.
//   - Global phase: when gt <= tmin, every shard is advanced to exactly
//     gt (a barrier; AdvanceTo panics if a shard still has an earlier
//     event, so the invariant is machine-checked) and the global events
//     at gt run serially, free to read and mutate any shard's state.
//
// Cross-shard communication goes through per-(src, dst) outboxes:
// during a phase each shard appends its outgoing messages to its own
// outboxes (no synchronization — a shard writes only its own), and
// after the phase barrier the coordinator hands them to the cross
// handler in a fixed merge order (destination-major, then source shard,
// then FIFO). Every shard therefore observes cross messages in an
// order that is a pure function of the event structure, never of the
// worker interleaving: a run with workers=W is bit-identical to the
// workers=1 serial reference, which is what the determinism suite pins.
//
// The worker count is an execution detail, not part of the simulated
// physics; the shard count IS part of the physics (it decides which
// messages take the cross path), so it belongs to the scenario Config.
type ParallelEngine struct {
	shards    []*Engine
	global    *Engine
	lookahead Time
	// out[src][dst] is src's outbox toward dst, drained in merge order
	// after every phase.
	out     [][][]CrossMsg
	onCross CrossHandler
	stopped bool
	windows uint64
}

// CrossMsg is one cross-shard payload: an opaque 3-word value plus its
// delivery time. The coordinator never interprets the words — the
// layer above packs whatever it needs (sender, receiver, value bits).
type CrossMsg struct {
	DeliverAt  Time
	W0, W1, W2 uint64
}

// CrossHandler receives merged cross messages destined for shard dst,
// in deterministic merge order, with every engine barriered at or
// before the messages' delivery times. Implementations schedule the
// delivery on the dst shard's Engine.
type CrossHandler func(dst int, m CrossMsg)

// NewParallelEngine returns a coordinator over the given number of
// shards. lookahead must be positive: it is the amount of simulated
// time a window may run past the earliest pending event, and the layer
// above must guarantee no cross-shard message is delivered sooner than
// lookahead after it is sent.
func NewParallelEngine(shards int, lookahead Time) *ParallelEngine {
	if shards < 1 {
		panic("des: ParallelEngine needs at least one shard")
	}
	if !(lookahead > 0) {
		panic("des: ParallelEngine needs positive lookahead")
	}
	p := &ParallelEngine{
		shards:    make([]*Engine, shards),
		global:    NewEngine(),
		lookahead: lookahead,
		out:       make([][][]CrossMsg, shards),
	}
	for i := range p.shards {
		p.shards[i] = NewEngine()
		p.out[i] = make([][]CrossMsg, shards)
	}
	return p
}

// NumShards returns the shard count.
func (p *ParallelEngine) NumShards() int { return len(p.shards) }

// Shard returns shard i's serial engine. Scheduling onto it is only
// safe from that shard's own events, from the global phase, or while
// the coordinator is idle.
func (p *ParallelEngine) Shard(i int) *Engine { return p.shards[i] }

// Global returns the engine for cross-cutting events. Its handlers run
// with every shard barriered at the event's exact time.
func (p *ParallelEngine) Global() *Engine { return p.global }

// Lookahead returns the safe-window extension.
func (p *ParallelEngine) Lookahead() Time { return p.lookahead }

// SetCrossHandler installs the cross-shard delivery callback.
func (p *ParallelEngine) SetCrossHandler(fn CrossHandler) { p.onCross = fn }

// SendCross enqueues m from shard src toward shard dst. It must be
// called from src's own execution (one of its events, or the global
// phase attributing the send to src); the message reaches the cross
// handler after the current phase's barrier. DeliverAt must be more
// than the lookahead after the sending event's time — the merge
// validates it against the destination clock and panics on violation.
func (p *ParallelEngine) SendCross(src, dst int, m CrossMsg) {
	p.out[src][dst] = append(p.out[src][dst], m)
}

// merge drains every outbox in deterministic order: destination-major,
// then source shard, then FIFO within one outbox.
func (p *ParallelEngine) merge() {
	for dst := range p.shards {
		en := p.shards[dst]
		for src := range p.shards {
			box := p.out[src][dst]
			for i := range box {
				if box[i].DeliverAt < en.Now() {
					panic(fmt.Sprintf("des: cross message into shard %d at %v behind its clock %v (lookahead violated)",
						dst, box[i].DeliverAt, en.Now()))
				}
				p.onCross(dst, box[i])
			}
			p.out[src][dst] = box[:0]
		}
	}
}

// runWindow fires every shard's events strictly before limit, using up
// to workers goroutines. Shards only touch their own state and their
// own outboxes, so any assignment of shards to workers produces the
// same result; the worker count is invisible to the simulation.
func (p *ParallelEngine) runWindow(limit Time, workers int) {
	if workers > len(p.shards) {
		workers = len(p.shards)
	}
	if workers <= 1 {
		for _, sh := range p.shards {
			sh.RunBefore(limit)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(p.shards) {
					return
				}
				p.shards[i].RunBefore(limit)
			}
		}()
	}
	wg.Wait()
}

// Stop requests that Run return at the next phase barrier. Like
// Engine.Stop it is sticky: a Stop between runs halts the next Run
// before any phase executes, and each request stops exactly one run.
func (p *ParallelEngine) Stop() { p.stopped = true }

// Stopped reports whether a Stop request is pending.
func (p *ParallelEngine) Stopped() bool { return p.stopped }

// Windows returns the number of parallel window phases executed, for
// observability in tests and benchmarks.
func (p *ParallelEngine) Windows() uint64 { return p.windows }

// Executed returns the total number of events fired across every shard
// and the global engine.
func (p *ParallelEngine) Executed() uint64 {
	total := p.global.Executed()
	for _, sh := range p.shards {
		total += sh.Executed()
	}
	return total
}

// Reset returns the coordinator and every engine to time 0 with empty
// queues, recycling pooled events and keeping outbox capacity.
func (p *ParallelEngine) Reset() {
	p.global.Reset()
	for i, sh := range p.shards {
		sh.Reset()
		for j := range p.out[i] {
			p.out[i][j] = p.out[i][j][:0]
		}
	}
	p.stopped = false
	p.windows = 0
}

// Run executes the simulation to horizon: events at or before the
// horizon fire (shard events concurrently inside safe windows, global
// events serially at barriers), and every engine finishes with Now() at
// the horizon. A pending Stop halts execution at a phase boundary,
// leaving every engine where its last phase ended; see Stop.
func (p *ParallelEngine) Run(horizon Time, workers int) {
	// Events at exactly the horizon are in scope, so windows are capped
	// at the first representable time past it.
	limitH := math.Nextafter(horizon, math.Inf(1))
	for {
		if p.stopped {
			p.stopped = false
			return
		}
		gt, gok := p.global.NextEventTime()
		if !gok {
			gt = math.Inf(1)
		}
		tmin := math.Inf(1)
		for _, sh := range p.shards {
			if t, ok := sh.NextEventTime(); ok && t < tmin {
				tmin = t
			}
		}
		if gt > horizon && tmin > horizon {
			break
		}
		if gt <= tmin {
			// Global phase: barrier every shard at exactly gt, then run
			// the global events at gt.
			for _, sh := range p.shards {
				sh.AdvanceTo(gt)
			}
			p.global.RunBefore(math.Nextafter(gt, math.Inf(1)))
			p.merge()
			continue
		}
		w := tmin + p.lookahead
		if gt < w {
			w = gt
		}
		if limitH < w {
			w = limitH
		}
		p.runWindow(w, workers)
		p.merge()
		p.windows++
	}
	for _, sh := range p.shards {
		sh.AdvanceTo(horizon)
	}
	p.global.AdvanceTo(horizon)
}
