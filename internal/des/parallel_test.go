package des

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// toyCluster is a minimal sharded workload for coordinator tests: every
// shard runs a periodic local event that records its fire time and
// sends a cross message to the next shard; cross deliveries record and
// echo onward with decreasing hops. All state is per-shard, so any
// worker interleaving must produce identical logs.
type toyCluster struct {
	p         *ParallelEngine
	lookahead Time
	// log[s] records (time, tag) pairs in shard s's execution order.
	log [][]toyRec
	// globalLog records global-phase observations of every shard clock.
	globalLog []float64
}

type toyRec struct {
	t   Time
	tag uint64
}

func newToyCluster(shards int, lookahead Time) *toyCluster {
	tc := &toyCluster{
		p:         NewParallelEngine(shards, lookahead),
		lookahead: lookahead,
		log:       make([][]toyRec, shards),
	}
	tc.p.SetCrossHandler(func(dst int, m CrossMsg) {
		en := tc.p.Shard(dst)
		hops := m.W1
		tag := m.W0
		en.ScheduleArg(m.DeliverAt, "toy.cross", func(arg uint64) {
			tc.log[dst] = append(tc.log[dst], toyRec{t: en.Now(), tag: arg})
			if hops > 0 {
				next := (dst + 1) % tc.p.NumShards()
				tc.p.SendCross(dst, next, CrossMsg{
					DeliverAt: en.Now() + 2*lookahead,
					W0:        arg + 1000,
					W1:        hops - 1,
				})
			}
		}, tag)
	})
	tc.armTicks()
	return tc
}

// armTicks schedules every shard's initial periodic event; callable
// again after a Reset to replay the identical workload.
func (tc *toyCluster) armTicks() {
	for s := 0; s < tc.p.NumShards(); s++ {
		s := s
		en := tc.p.Shard(s)
		var tick func()
		tick = func() {
			tc.log[s] = append(tc.log[s], toyRec{t: en.Now(), tag: uint64(s)})
			next := (s + 1) % tc.p.NumShards()
			tc.p.SendCross(s, next, CrossMsg{
				DeliverAt: en.Now() + 1.5*tc.lookahead,
				W0:        uint64(s)*100 + 7,
				W1:        2,
			})
			en.ScheduleAfter(0.5, "toy.tick", tick)
		}
		// Stagger the first ticks so shards are rarely aligned.
		en.Schedule(0.1*float64(s+1), "toy.start", tick)
	}
}

func (tc *toyCluster) run(horizon Time, workers int) {
	tc.p.Run(horizon, workers)
}

// TestParallelWorkerInvariance is the determinism contract: the same
// sharded workload produces bit-identical per-shard execution logs for
// every worker count, including the workers=1 serial reference.
func TestParallelWorkerInvariance(t *testing.T) {
	ref := newToyCluster(5, 0.05)
	ref.run(10, 1)
	if len(ref.log[0]) == 0 || ref.p.Windows() == 0 {
		t.Fatalf("degenerate reference run: %d recs, %d windows", len(ref.log[0]), ref.p.Windows())
	}
	for _, workers := range []int{2, 4, 16} {
		tc := newToyCluster(5, 0.05)
		tc.run(10, workers)
		if !reflect.DeepEqual(tc.log, ref.log) {
			t.Fatalf("workers=%d diverged from serial reference", workers)
		}
		if tc.p.Executed() != ref.p.Executed() {
			t.Fatalf("workers=%d executed %d events, reference %d",
				workers, tc.p.Executed(), ref.p.Executed())
		}
	}
}

// TestParallelGlobalBarrier pins the global-phase contract: a global
// event fires with every shard's clock advanced to exactly the event's
// time, and with no earlier shard event still pending.
func TestParallelGlobalBarrier(t *testing.T) {
	tc := newToyCluster(3, 0.05)
	var sample func()
	sample = func() {
		g := tc.p.Global()
		for s := 0; s < tc.p.NumShards(); s++ {
			sh := tc.p.Shard(s)
			if sh.Now() != g.Now() {
				t.Errorf("global event at %v saw shard %d at %v", g.Now(), s, sh.Now())
			}
			if nt, ok := sh.NextEventTime(); ok && nt < g.Now() {
				t.Errorf("global event at %v with shard %d event still pending at %v", g.Now(), s, nt)
			}
		}
		tc.globalLog = append(tc.globalLog, g.Now())
		g.ScheduleAfter(0.3, "toy.sample", sample)
	}
	tc.p.Global().Schedule(0, "toy.sample", sample)
	tc.run(5, 4)
	if len(tc.globalLog) < 16 {
		t.Fatalf("global sampler fired %d times, want ~17", len(tc.globalLog))
	}
	for i, at := range tc.globalLog {
		if want := 0.3 * float64(i); math.Abs(at-want) > 1e-9 {
			t.Fatalf("global sample %d at %v, want %v", i, at, want)
		}
	}
}

// TestParallelHorizonSemantics pins Run's end state: events at exactly
// the horizon fire, and every engine finishes at the horizon.
func TestParallelHorizonSemantics(t *testing.T) {
	p := NewParallelEngine(2, 0.1)
	p.SetCrossHandler(func(int, CrossMsg) {})
	edgeFired := false
	p.Shard(0).Schedule(3, "edge", func() { edgeFired = true })
	p.Shard(1).Schedule(1, "mid", func() {})
	p.Global().Schedule(2, "gmid", func() {})
	p.Run(3, 2)
	if !edgeFired {
		t.Fatal("event exactly at horizon did not fire")
	}
	for s := 0; s < 2; s++ {
		if p.Shard(s).Now() != 3 {
			t.Fatalf("shard %d finished at %v, want horizon 3", s, p.Shard(s).Now())
		}
	}
	if p.Global().Now() != 3 {
		t.Fatalf("global finished at %v, want horizon 3", p.Global().Now())
	}
}

// TestParallelStopSticky pins the coordinator's Stop semantics: a Stop
// between runs halts the next Run before any phase, is consumed by it,
// and a later Run resumes.
func TestParallelStopSticky(t *testing.T) {
	p := NewParallelEngine(2, 0.1)
	p.SetCrossHandler(func(int, CrossMsg) {})
	fired := false
	p.Shard(0).Schedule(1, "a", func() { fired = true })
	p.Stop()
	p.Run(5, 2)
	if fired {
		t.Fatal("Run executed a phase despite a pending Stop")
	}
	if p.Stopped() {
		t.Fatal("Run did not consume the Stop request")
	}
	p.Run(5, 2)
	if !fired {
		t.Fatal("second Run did not resume")
	}
}

// TestParallelLookaheadViolationPanics pins the machine-checked safety
// net: a cross message whose delivery time is behind the destination
// shard's clock (a delay below the lookahead) panics at merge rather
// than silently firing in the past — and the panic message names the
// destination shard and both clocks, since it is the one diagnostic a
// physics bug in a sharded run produces.
func TestParallelLookaheadViolationPanics(t *testing.T) {
	p := NewParallelEngine(2, 0.5)
	p.SetCrossHandler(func(dst int, m CrossMsg) {
		p.Shard(dst).Schedule(m.DeliverAt, "cross", func() {})
	})
	// Shard 1 runs far into the window; shard 0's event then emits a
	// cross message with a delay far below the lookahead.
	var tick func()
	en1 := p.Shard(1)
	tick = func() { en1.ScheduleAfter(0.01, "busy", tick) }
	en1.Schedule(0, "busy", tick)
	p.Shard(0).Schedule(0, "bad", func() {
		p.SendCross(0, 1, CrossMsg{DeliverAt: p.Shard(0).Now() + 1e-9})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want the diagnostic string", r)
		}
		if !strings.Contains(msg, "lookahead violated") ||
			!strings.Contains(msg, "cross message into shard 1") {
			t.Fatalf("panic message %q lacks the shard/lookahead diagnostic", msg)
		}
	}()
	p.Run(1, 1)
}

// TestParallelReset pins arena-style reuse: Reset returns every engine
// to time 0 with empty queues, and re-arming the same workload on the
// reused coordinator replays it bit-identically.
func (tc *toyCluster) snapshot() [][]toyRec {
	out := make([][]toyRec, len(tc.log))
	for i := range tc.log {
		out[i] = append([]toyRec(nil), tc.log[i]...)
	}
	return out
}

func TestParallelReset(t *testing.T) {
	tc := newToyCluster(4, 0.05)
	tc.run(5, 3)
	first := tc.snapshot()

	tc.p.Reset()
	for s := 0; s < tc.p.NumShards(); s++ {
		if tc.p.Shard(s).Now() != 0 || tc.p.Shard(s).Pending() != 0 {
			t.Fatalf("shard %d not reset: now=%v pending=%d",
				s, tc.p.Shard(s).Now(), tc.p.Shard(s).Pending())
		}
	}
	for i := range tc.log {
		tc.log[i] = tc.log[i][:0]
	}
	tc.armTicks()
	tc.run(5, 3)
	if !reflect.DeepEqual(first, tc.snapshot()) {
		t.Fatal("reused coordinator diverged from its first run")
	}
	if fmt.Sprint(first) == "" {
		t.Fatal("unreachable")
	}
}
