package des

import (
	"container/heap"
	"fmt"
	"math"
	"testing"
)

// This file adversarially tests the kernel's hand-rolled 4-ary index
// heap against a reference implementation built on the standard
// library's container/heap: random interleavings of Schedule,
// ScheduleArg, Cancel, and Step must produce the identical fire order
// (time ties broken by scheduling sequence), and EventRef handles must
// go stale exactly when their event fires or is cancelled — never
// before, and never resurrect after the pooled Event is recycled.

// refEvent mirrors the kernel's (t, seq) ordering key plus an id the
// test uses to match fires across the two queues.
type refEvent struct {
	t   Time
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// refQueue is the oracle: a container/heap priority queue with lazy
// deletion (cancelled ids are skipped at pop time), reproducing the
// kernel's externally visible behavior without its index bookkeeping.
type refQueue struct {
	h         refHeap
	cancelled map[int]bool
	now       Time
	seq       uint64
}

func newRefQueue() *refQueue {
	return &refQueue{cancelled: make(map[int]bool)}
}

func (q *refQueue) schedule(t Time, id int) {
	heap.Push(&q.h, &refEvent{t: t, seq: q.seq, id: id})
	q.seq++
}

func (q *refQueue) cancel(id int) { q.cancelled[id] = true }

// step pops the earliest live event, advances now, and returns its id;
// ok is false when the queue holds only cancelled entries or nothing.
func (q *refQueue) step() (id int, at Time, ok bool) {
	for q.h.Len() > 0 {
		e := heap.Pop(&q.h).(*refEvent)
		if q.cancelled[e.id] {
			continue
		}
		q.now = e.t
		return e.id, e.t, true
	}
	return 0, 0, false
}

// TestHeapMatchesReferenceHeap drives the engine and the oracle through
// the same random interleaving of operations and checks that every
// fired event matches in both id and time, in order.
func TestHeapMatchesReferenceHeap(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := NewRand(0xbeef + uint64(trial))
			en := NewEngine()
			ref := newRefQueue()

			type live struct {
				ref EventRef
				id  int
			}
			var pending []live
			firedID := -1
			fire := func(arg uint64) { firedID = int(arg) }
			nextID := 0

			// compact drops refs that went stale (their event fired).
			compact := func() {
				kept := pending[:0]
				for _, l := range pending {
					if l.ref.Pending() {
						kept = append(kept, l)
					}
				}
				pending = kept
			}

			for op := 0; op < 2000; op++ {
				switch r := rng.Float64(); {
				case r < 0.45: // schedule (alternate closure / arg forms)
					// Coarse time grid forces plenty of exact ties, so the
					// (t, seq) tiebreak is exercised hard.
					at := en.Now() + Time(rng.Intn(8))
					id := nextID
					nextID++
					var er EventRef
					if id%2 == 0 {
						er = en.ScheduleArg(at, "p", fire, uint64(id))
					} else {
						idc := id
						er = en.Schedule(at, "p", func() { firedID = idc })
					}
					ref.schedule(at, id)
					if !er.Pending() {
						t.Fatalf("op %d: fresh ref not pending", op)
					}
					if er.Time() != at {
						t.Fatalf("op %d: ref.Time() = %v, want %v", op, er.Time(), at)
					}
					pending = append(pending, live{ref: er, id: id})
				case r < 0.6: // cancel a random pending event
					compact()
					if len(pending) == 0 {
						continue
					}
					i := rng.Intn(len(pending))
					l := pending[i]
					en.Cancel(l.ref)
					ref.cancel(l.id)
					if l.ref.Pending() {
						t.Fatalf("op %d: ref still pending after Cancel", op)
					}
					if !math.IsNaN(l.ref.Time()) || l.ref.Label() != "" {
						t.Fatalf("op %d: stale ref leaks time/label", op)
					}
					// A second Cancel of the stale ref must be a no-op even
					// after the Event struct is recycled by a later schedule.
					en.Cancel(l.ref)
					pending = append(pending[:i], pending[i+1:]...)
				default: // step both queues and compare
					wantID, wantAt, wantOK := ref.step()
					firedID = -1
					gotOK := en.Step()
					if gotOK != wantOK {
						t.Fatalf("op %d: Step fired=%v, reference fired=%v", op, gotOK, wantOK)
					}
					if !wantOK {
						continue
					}
					if firedID != wantID {
						t.Fatalf("op %d: fired id %d, reference id %d", op, firedID, wantID)
					}
					if en.Now() != wantAt {
						t.Fatalf("op %d: fired at %v, reference at %v", op, en.Now(), wantAt)
					}
				}
				if en.Pending() > len(pending) {
					compact()
					if en.Pending() != len(pending) {
						t.Fatalf("op %d: engine pending %d, tracked live refs %d", op, en.Pending(), len(pending))
					}
				}
			}

			// Drain both queues to the end: the tails must agree too.
			for {
				wantID, wantAt, wantOK := ref.step()
				firedID = -1
				gotOK := en.Step()
				if gotOK != wantOK {
					t.Fatalf("drain: Step fired=%v, reference fired=%v", gotOK, wantOK)
				}
				if !wantOK {
					break
				}
				if firedID != wantID || en.Now() != wantAt {
					t.Fatalf("drain: fired (%d,%v), reference (%d,%v)", firedID, en.Now(), wantID, wantAt)
				}
			}
			compact()
			if len(pending) != 0 {
				t.Fatalf("drained engine left %d refs pending", len(pending))
			}
		})
	}
}

// TestHeapRefStalenessAcrossRecycle pins the generation check: a ref to
// a fired event must stay stale even after the pooled Event underneath
// it is reused for a new schedule at the same heap slot.
func TestHeapRefStalenessAcrossRecycle(t *testing.T) {
	en := NewEngine()
	first := en.Schedule(1, "first", func() {})
	en.Step()
	if first.Pending() {
		t.Fatal("ref pending after its event fired")
	}
	// The free list holds exactly the recycled Event; this schedule
	// reuses it with a bumped generation.
	second := en.Schedule(2, "second", func() {})
	if !second.Pending() {
		t.Fatal("recycled event's new ref not pending")
	}
	if first.Pending() {
		t.Fatal("stale ref resurrected by event recycling")
	}
	en.Cancel(first) // must not cancel the recycled event
	if !second.Pending() {
		t.Fatal("Cancel via stale ref removed the recycled event")
	}
}
