package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	en := NewEngine()
	var got []int
	en.Schedule(3, "c", func() { got = append(got, 3) })
	en.Schedule(1, "a", func() { got = append(got, 1) })
	en.Schedule(2, "b", func() { got = append(got, 2) })
	en.Run(10)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	en := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		en.Schedule(5, "tie", func() { got = append(got, i) })
	}
	en.Run(10)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order violated: %v", got)
		}
	}
}

func TestNowDuringHandler(t *testing.T) {
	en := NewEngine()
	var at Time
	en.Schedule(7.5, "x", func() { at = en.Now() })
	en.Run(100)
	if at != 7.5 {
		t.Fatalf("Now inside handler = %v, want 7.5", at)
	}
	if en.Now() != 100 {
		t.Fatalf("Now after Run = %v, want horizon 100", en.Now())
	}
}

func TestScheduleAfter(t *testing.T) {
	en := NewEngine()
	var fired []Time
	en.Schedule(2, "outer", func() {
		en.ScheduleAfter(3, "inner", func() { fired = append(fired, en.Now()) })
	})
	en.Run(10)
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("ScheduleAfter fired at %v, want [5]", fired)
	}
}

func TestCancel(t *testing.T) {
	en := NewEngine()
	fired := false
	e := en.Schedule(1, "x", func() { fired = true })
	en.Cancel(e)
	en.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	// Cancelling again and cancelling the zero ref are no-ops.
	en.Cancel(e)
	en.Cancel(EventRef{})
}

func TestCancelFromHandler(t *testing.T) {
	en := NewEngine()
	fired := false
	var victim EventRef
	en.Schedule(1, "canceller", func() { en.Cancel(victim) })
	victim = en.Schedule(2, "victim", func() { fired = true })
	en.Run(10)
	if fired {
		t.Fatal("event cancelled from earlier handler still fired")
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	en := NewEngine()
	n := 0
	e := en.Schedule(1, "x", func() { n++ })
	en.Run(10)
	en.Cancel(e) // must not panic or re-fire
	en.Run(20)
	if n != 1 {
		t.Fatalf("event fired %d times", n)
	}
}

func TestRunHorizonExcludesLaterEvents(t *testing.T) {
	en := NewEngine()
	var got []Time
	en.Schedule(1, "a", func() { got = append(got, 1) })
	en.Schedule(5, "b", func() { got = append(got, 5) })
	en.Run(3)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("events before horizon: %v", got)
	}
	if en.Now() != 3 {
		t.Fatalf("Now = %v, want 3", en.Now())
	}
	en.Run(10)
	if len(got) != 2 || got[1] != 5 {
		t.Fatalf("resumed run: %v", got)
	}
}

func TestEventAtHorizonFires(t *testing.T) {
	en := NewEngine()
	fired := false
	en.Schedule(3, "edge", func() { fired = true })
	en.Run(3)
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	en := NewEngine()
	var got []int
	en.Schedule(1, "a", func() { got = append(got, 1); en.Stop() })
	en.Schedule(2, "b", func() { got = append(got, 2) })
	en.Run(10)
	if len(got) != 1 {
		t.Fatalf("Stop did not stop run: %v", got)
	}
	// A later Run resumes.
	en.Run(10)
	if len(got) != 2 {
		t.Fatalf("resume after Stop: %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	en := NewEngine()
	en.Schedule(5, "x", func() {})
	en.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	en.Schedule(1, "past", func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	en := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at NaN did not panic")
		}
	}()
	en.Schedule(math.NaN(), "nan", func() {})
}

func TestRunUntilIdle(t *testing.T) {
	en := NewEngine()
	n := 0
	var ping func()
	ping = func() {
		n++
		if n < 100 {
			en.ScheduleAfter(1, "ping", ping)
		}
	}
	en.Schedule(0, "start", ping)
	en.RunUntilIdle(1000)
	if n != 100 {
		t.Fatalf("n = %d, want 100", n)
	}
	if en.Executed() != 100 {
		t.Fatalf("Executed = %d, want 100", en.Executed())
	}
}

func TestRunUntilIdleRunawayGuard(t *testing.T) {
	en := NewEngine()
	var loop func()
	loop = func() { en.ScheduleAfter(1, "loop", loop) }
	en.Schedule(0, "start", loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway schedule did not panic")
		}
	}()
	en.RunUntilIdle(50)
}

func TestNextEventTime(t *testing.T) {
	en := NewEngine()
	if _, ok := en.NextEventTime(); ok {
		t.Fatal("NextEventTime on empty queue returned ok")
	}
	e := en.Schedule(4, "a", func() {})
	en.Schedule(6, "b", func() {})
	if tm, ok := en.NextEventTime(); !ok || tm != 4 {
		t.Fatalf("NextEventTime = %v,%v want 4,true", tm, ok)
	}
	en.Cancel(e)
	if tm, ok := en.NextEventTime(); !ok || tm != 6 {
		t.Fatalf("NextEventTime after cancel = %v,%v want 6,true", tm, ok)
	}
}

func TestPendingCount(t *testing.T) {
	en := NewEngine()
	en.Schedule(1, "a", func() {})
	en.Schedule(2, "b", func() {})
	if en.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", en.Pending())
	}
	en.Run(1)
	if en.Pending() != 1 {
		t.Fatalf("Pending after partial run = %d, want 1", en.Pending())
	}
}

func TestEventAccessors(t *testing.T) {
	en := NewEngine()
	e := en.Schedule(9, "mylabel", func() {})
	if e.Time() != 9 {
		t.Fatalf("Time = %v", e.Time())
	}
	if e.Label() != "mylabel" {
		t.Fatalf("Label = %q", e.Label())
	}
	if !e.Pending() {
		t.Fatal("Pending = false before firing")
	}
	en.Run(10)
	if e.Pending() {
		t.Fatal("Pending = true after firing")
	}
	if !math.IsNaN(e.Time()) || e.Label() != "" {
		t.Fatalf("stale accessors = %v, %q; want NaN, \"\"", e.Time(), e.Label())
	}
}

func TestScheduleArg(t *testing.T) {
	en := NewEngine()
	var got []uint64
	collect := func(arg uint64) { got = append(got, arg) }
	en.ScheduleArg(2, "b", collect, 2)
	en.ScheduleArg(1, "a", collect, 1)
	en.ScheduleAfterArg(3, "c", collect, 3)
	en.Run(10)
	want := []uint64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// A stale ref must never cancel the recycled event now occupying the same
// Event struct: this is the generation-counter guarantee of the pool.
func TestStaleRefCannotCancelRecycledEvent(t *testing.T) {
	en := NewEngine()
	stale := en.Schedule(1, "victim", func() {})
	en.Run(1) // fires and recycles the event
	if stale.Pending() {
		t.Fatal("ref still pending after fire")
	}
	if en.PoolSize() == 0 {
		t.Fatal("fired event was not pooled")
	}
	fired := false
	fresh := en.Schedule(2, "fresh", func() { fired = true })
	en.Cancel(stale) // must be a no-op even though the Event was reused
	en.Run(3)
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
	if fresh.Pending() {
		t.Fatal("fresh event still pending after firing")
	}

	// Same for a ref left stale by cancellation rather than firing.
	staleCancelled := en.Schedule(4, "cancelled", func() {})
	en.Cancel(staleCancelled)
	refired := false
	en.Schedule(5, "fresh2", func() { refired = true })
	en.Cancel(staleCancelled)
	en.Run(6)
	if !refired {
		t.Fatal("cancelled-stale ref killed a recycled event")
	}
}

// TestEventPoolStress interleaves schedules, fires, live cancels, and
// stale cancels, then checks that every event fired exactly once unless
// it was cancelled while pending — i.e. recycling never loses or
// duplicates a firing and stale handles never reach a recycled event.
func TestEventPoolStress(t *testing.T) {
	r := NewRand(20090613)
	en := NewEngine()
	var (
		refs      []EventRef
		fireCount []int
		cancelled []bool
	)
	scheduleOne := func() {
		idx := len(fireCount)
		fireCount = append(fireCount, 0)
		cancelled = append(cancelled, false)
		refs = append(refs, en.ScheduleAfter(r.Range(0, 5), "stress", func() {
			fireCount[idx]++
		}))
	}
	for i := 0; i < 3000; i++ {
		switch {
		case r.Float64() < 0.5:
			scheduleOne()
		case r.Float64() < 0.5 && len(refs) > 0:
			// Cancel a random ref: live or stale, the engine must sort it out.
			j := r.Intn(len(refs))
			wasPending := refs[j].Pending()
			en.Cancel(refs[j])
			if wasPending {
				cancelled[j] = true
			}
		default:
			en.Step()
		}
	}
	en.RunUntilIdle(100000)
	for i := range fireCount {
		want := 1
		if cancelled[i] {
			want = 0
		}
		if fireCount[i] != want {
			t.Fatalf("event %d fired %d times, want %d (cancelled=%v)",
				i, fireCount[i], want, cancelled[i])
		}
	}
	if en.PoolSize() == 0 {
		t.Fatal("stress run never pooled an event")
	}
	if en.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", en.Pending())
	}
}

// Property: events always fire in nondecreasing time order, regardless of
// insertion order, including events scheduled from inside handlers.
func TestPropertyMonotoneFiring(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRand(seed)
		en := NewEngine()
		last := -1.0
		ok := true
		var spawn func()
		spawn = func() {
			now := en.Now()
			if now < last {
				ok = false
			}
			last = now
			if r.Float64() < 0.3 && en.Executed() < 500 {
				en.ScheduleAfter(r.Range(0, 10), "spawn", spawn)
			}
		}
		for i := 0; i < 50; i++ {
			en.Schedule(r.Range(0, 100), "init", spawn)
		}
		en.RunUntilIdle(10000)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: an engine run with the same seed twice produces the identical
// event count and final time (determinism).
func TestPropertyDeterminism(t *testing.T) {
	runOnce := func(seed uint64) (uint64, Time) {
		r := NewRand(seed)
		en := NewEngine()
		var tick func()
		tick = func() {
			if r.Float64() < 0.9 && en.Now() < 1000 {
				en.ScheduleAfter(r.Exp(1.0), "tick", tick)
			}
		}
		for i := 0; i < 10; i++ {
			en.Schedule(r.Range(0, 5), "seed", tick)
		}
		en.Run(2000)
		return en.Executed(), en.Now()
	}
	prop := func(seed uint64) bool {
		n1, t1 := runOnce(seed)
		n2, t2 := runOnce(seed)
		return n1 == n2 && t1 == t2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(42)
	a := r.Fork(1)
	b := r.Fork(2)
	a2 := NewRand(42).Fork(1)
	if a.Uint64() != a2.Uint64() {
		t.Fatal("Fork not deterministic")
	}
	// Streams should differ.
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		g := r.Range(2, 5)
		if g < 2 || g >= 5 {
			t.Fatalf("Range out of range: %v", g)
		}
		n := r.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
		e := r.Exp(3)
		if e < 0 || math.IsNaN(e) {
			t.Fatalf("Exp invalid: %v", e)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(11)
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}

func TestRandRangePanics(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Range(hi<lo) did not panic")
		}
	}()
	r.Range(5, 2)
}

func TestRandIntnPanics(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestTraceHookObservesFiredEventsOnly(t *testing.T) {
	en := NewEngine()
	type obs struct {
		t     Time
		label string
	}
	var traced []obs
	en.SetTraceHook(func(tm Time, label string) {
		traced = append(traced, obs{tm, label})
	})
	en.Schedule(1, "first", func() {})
	cancelled := en.Schedule(2, "cancelled", func() {})
	en.Schedule(3, "second", func() {
		// Events scheduled and fired during the run are traced too.
		en.ScheduleAfter(1, "nested", func() {})
	})
	en.Cancel(cancelled)
	en.Run(10)
	want := []obs{{1, "first"}, {3, "second"}, {4, "nested"}}
	if len(traced) != len(want) {
		t.Fatalf("traced %v, want %v", traced, want)
	}
	for i := range want {
		if traced[i] != want[i] {
			t.Fatalf("traced %v, want %v", traced, want)
		}
	}
	if got := en.Executed(); got != uint64(len(want)) {
		t.Fatalf("executed %d, traced %d — hook out of sync", got, len(want))
	}
}

func TestTraceHookRemoval(t *testing.T) {
	en := NewEngine()
	calls := 0
	en.SetTraceHook(func(Time, string) { calls++ })
	en.Schedule(1, "a", func() {})
	en.Run(1)
	en.SetTraceHook(nil)
	en.Schedule(2, "b", func() {})
	en.Run(2)
	if calls != 1 {
		t.Fatalf("hook called %d times, want 1 (removal ignored?)", calls)
	}
}

// TestStopDoesNotAdvanceNowPastPending is the regression test for the
// time-regression bug: Run used to advance Now to the horizon even when
// Stop halted the loop with events still pending before the horizon, so
// a later Step fired them in the simulated past and legitimate Schedule
// calls panicked with "schedule before now".
func TestStopDoesNotAdvanceNowPastPending(t *testing.T) {
	en := NewEngine()
	en.Schedule(1, "a", func() { en.Stop() })
	var firedAt Time = -1
	en.Schedule(5, "b", func() { firedAt = en.Now() })
	en.Run(10)
	if en.Now() != 1 {
		t.Fatalf("Now after stopped run = %v, want 1 (time of last fired event)", en.Now())
	}
	// Scheduling between the pending event and the old horizon must not
	// panic: simulated time has not passed 1 yet.
	en.Schedule(3, "c", func() {})
	// Stepping resumes forward in time, never backwards.
	en.Step() // fires c at 3
	if en.Now() != 3 {
		t.Fatalf("Now after Step = %v, want 3", en.Now())
	}
	en.Step() // fires b at 5
	if firedAt != 5 {
		t.Fatalf("b fired at %v, want 5", firedAt)
	}
	if en.Now() != 5 {
		t.Fatalf("Now = %v, want 5 (monotone)", en.Now())
	}
}

// TestStopThenRunResumes pins that after a stopped run, a later Run
// fires the still-pending events and then advances to its horizon.
func TestStopThenRunResumes(t *testing.T) {
	en := NewEngine()
	var got []Time
	en.Schedule(1, "a", func() { got = append(got, en.Now()); en.Stop() })
	en.Schedule(2, "b", func() { got = append(got, en.Now()) })
	en.Run(10)
	en.Run(10)
	want := []Time{1, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fire times = %v, want %v", got, want)
	}
	if en.Now() != 10 {
		t.Fatalf("Now after clean run = %v, want horizon 10", en.Now())
	}
}

// TestStopBetweenRunsIsSticky pins the sticky-Stop semantics: a Stop
// issued while no run loop is active halts the next Run before it fires
// anything, and is consumed by that run (exactly one run is stopped).
func TestStopBetweenRunsIsSticky(t *testing.T) {
	en := NewEngine()
	fired := false
	en.Schedule(1, "a", func() { fired = true })
	en.Stop()
	if !en.Stopped() {
		t.Fatal("Stopped() = false after Stop()")
	}
	en.Run(10)
	if fired {
		t.Fatal("Run fired an event despite a pending Stop")
	}
	if en.Stopped() {
		t.Fatal("Run did not consume the Stop request")
	}
	if en.Now() != 0 {
		t.Fatalf("Now = %v, want 0 (stopped before firing)", en.Now())
	}
	en.Run(10)
	if !fired {
		t.Fatal("second Run did not fire the pending event")
	}
}

// TestStopBetweenRunsStopsRunUntilIdle pins the same sticky semantics
// for RunUntilIdle.
func TestStopBetweenRunsStopsRunUntilIdle(t *testing.T) {
	en := NewEngine()
	fired := false
	en.Schedule(1, "a", func() { fired = true })
	en.Stop()
	en.RunUntilIdle(100)
	if fired {
		t.Fatal("RunUntilIdle fired an event despite a pending Stop")
	}
	en.RunUntilIdle(100)
	if !fired {
		t.Fatal("second RunUntilIdle did not fire the pending event")
	}
}

// TestRunBefore pins the strict-limit window loop used by the parallel
// coordinator: events strictly before the limit fire, the event at the
// limit stays pending, and Now never advances past the last fired event.
func TestRunBefore(t *testing.T) {
	en := NewEngine()
	var got []Time
	rec := func() { got = append(got, en.Now()) }
	en.Schedule(1, "a", rec)
	en.Schedule(2, "b", rec)
	en.Schedule(2, "b2", rec)
	en.Schedule(3, "c", rec)
	if n := en.RunBefore(3); n != 3 {
		t.Fatalf("RunBefore fired %d events, want 3", n)
	}
	if len(got) != 3 || got[2] != 2 {
		t.Fatalf("fired times = %v, want [1 2 2]", got)
	}
	if en.Now() != 2 {
		t.Fatalf("Now = %v, want 2 (last fired event)", en.Now())
	}
	if en.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the at-limit event)", en.Pending())
	}
	if n := en.RunBefore(2); n != 0 {
		t.Fatalf("RunBefore below pending head fired %d events, want 0", n)
	}
}

// TestAdvanceTo pins the barrier primitive: forward jumps over an empty
// window succeed, backwards/no-op calls are ignored, and jumping over a
// pending event panics.
func TestAdvanceTo(t *testing.T) {
	en := NewEngine()
	en.AdvanceTo(4)
	if en.Now() != 4 {
		t.Fatalf("Now = %v, want 4", en.Now())
	}
	en.AdvanceTo(2) // no-op, not a panic
	if en.Now() != 4 {
		t.Fatalf("Now = %v after backwards AdvanceTo, want 4", en.Now())
	}
	en.Schedule(5, "x", func() {})
	en.AdvanceTo(5) // head at exactly t is fine: it can still fire at 5
	if en.Now() != 5 {
		t.Fatalf("Now = %v, want 5", en.Now())
	}
	en.Schedule(6, "y", func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo over a pending event did not panic")
		}
	}()
	en.AdvanceTo(7)
}
