package des

// Deterministic pseudo-random source for simulations.
//
// math/rand would work, but a self-contained SplitMix64/xoshiro-style
// generator keeps executions reproducible across Go releases (math/rand's
// unexported algorithm changed between versions) and lets us fork
// independent streams per node/link so that adding a node does not
// perturb the random choices seen by others.

import "math"

// Rand is a small, fast, deterministic PRNG (SplitMix64 core). The zero
// value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent stream keyed by id. Streams forked with
// distinct ids from the same parent are statistically independent.
func (r *Rand) Fork(id uint64) *Rand {
	return &Rand{state: forkState(r.state, id)}
}

// ForkInto is the allocation-free form of Fork: it reseeds dst to the
// exact stream Fork(id) would return, so reusable harnesses (the sim
// arena) can rewire their per-subsystem streams in place and stay
// bit-identical to a freshly forked execution.
func (r *Rand) ForkInto(id uint64, dst *Rand) {
	dst.state = forkState(r.state, id)
}

// Reseed resets the generator in place to the state NewRand(seed) would
// produce.
func (r *Rand) Reseed(seed uint64) { r.state = seed }

// forkState mixes the id through one SplitMix64 round of a copy of the
// parent state; the parent is never advanced.
func forkState(state, id uint64) uint64 {
	z := state + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Rand) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("des: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed float64 with mean mean.
func (r *Rand) Exp(mean float64) float64 {
	// Inverse CDF; guard against log(0).
	u := r.Float64()
	if u >= 1 {
		u = 1 - 1.0/(1<<53)
	}
	return -mean * math.Log(1-u)
}
