// Package bench parses `go test -bench` output and emits a versioned
// JSON record, so each PR can commit a BENCH_<rev>.json snapshot and the
// performance trajectory stays machine-readable across revisions.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with any -<GOMAXPROCS> suffix stripped.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the benchmark did not report
	// allocations.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is one benchmark run: environment header plus results.
type Report struct {
	// Rev tags the source revision the numbers were measured at.
	Rev     string   `json:"rev"`
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Package string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output and collects the environment
// header and every benchmark line. Non-benchmark lines (test chatter,
// PASS/ok trailers) are ignored. It returns an error if no benchmark
// lines are found.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("bench: no benchmark lines in input")
	}
	return rep, nil
}

// parseBenchLine parses one line of the form
//
//	BenchmarkRing256-8   5   72541166 ns/op   19837235 B/op   543828 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -<GOMAXPROCS> suffix if it is numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seen = true
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	return res, seen
}

// FileName returns the canonical snapshot name for a revision.
func FileName(rev string) string {
	return "BENCH_" + rev + ".json"
}

// WriteFile writes the report to dir/BENCH_<rev>.json (creating dir if
// needed) and returns the written path.
func (rep Report) WriteFile(dir string) (string, error) {
	if rep.Rev == "" {
		return "", fmt.Errorf("bench: report has no revision tag")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(rep.Rev))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Find returns the named result, or false if the report has none.
func (rep Report) Find(name string) (Result, bool) {
	for _, r := range rep.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Compare gates one benchmark of current against baseline: it returns an
// error if the named benchmark regressed by more than maxRegress
// (fractional, e.g. 0.25 for 25%) in ns/op or in allocs/op, or if
// either report is missing the benchmark. Allocation counts are only
// compared when both snapshots report them.
func Compare(baseline, current Report, name string, maxRegress float64) error {
	if maxRegress < 0 {
		return fmt.Errorf("bench: negative regression allowance %v", maxRegress)
	}
	base, ok := baseline.Find(name)
	if !ok {
		return fmt.Errorf("bench: baseline %s has no benchmark %q", baseline.Rev, name)
	}
	cur, ok := current.Find(name)
	if !ok {
		return fmt.Errorf("bench: current run has no benchmark %q", name)
	}
	if base.NsPerOp > 0 {
		if ratio := cur.NsPerOp / base.NsPerOp; ratio > 1+maxRegress {
			return fmt.Errorf("bench: %s ns/op regressed %.1f%% (%.0f -> %.0f, allowed %.0f%%)",
				name, (ratio-1)*100, base.NsPerOp, cur.NsPerOp, maxRegress*100)
		}
	}
	if base.AllocsPerOp >= 0 && cur.AllocsPerOp >= 0 {
		// A zero-alloc baseline gates any regression: x/0 is +Inf.
		if ratio := float64(cur.AllocsPerOp) / float64(base.AllocsPerOp); ratio > 1+maxRegress {
			return fmt.Errorf("bench: %s allocs/op regressed %.1f%% (%d -> %d, allowed %.0f%%)",
				name, (ratio-1)*100, base.AllocsPerOp, cur.AllocsPerOp, maxRegress*100)
		}
	}
	return nil
}

// CompareAll gates every benchmark present in the baseline against the
// current run, so the regression gate covers the whole committed suite
// instead of a single named benchmark. Benchmarks new in the current run
// (absent from the baseline) are ignored — they have no reference yet.
// All regressions are reported, not just the first.
func CompareAll(baseline, current Report, maxRegress float64) error {
	if len(baseline.Results) == 0 {
		return fmt.Errorf("bench: baseline %s has no benchmarks", baseline.Rev)
	}
	var failures []string
	for _, base := range baseline.Results {
		if err := Compare(baseline, current, base.Name, maxRegress); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "\n"))
	}
	return nil
}

// ReadFile loads a previously written snapshot.
func ReadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	return rep, nil
}
