package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gcs/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRing256 	       5	  72541166 ns/op	19837235 B/op	  543828 allocs/op
BenchmarkRing1024-8 	       2	 135916026 ns/op	 1841776 B/op	   27943 allocs/op
BenchmarkNoMem 	     100	    123456 ns/op
PASS
ok  	gcs/internal/sim	0.365s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Package != "gcs/internal/sim" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rep.Results), rep.Results)
	}
	r0 := rep.Results[0]
	if r0.Name != "BenchmarkRing256" || r0.Iterations != 5 ||
		r0.NsPerOp != 72541166 || r0.BytesPerOp != 19837235 || r0.AllocsPerOp != 543828 {
		t.Fatalf("result 0 = %+v", r0)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if rep.Results[1].Name != "BenchmarkRing1024" {
		t.Fatalf("result 1 name = %q", rep.Results[1].Name)
	}
	// Missing -benchmem columns become -1, not 0.
	r2 := rep.Results[2]
	if r2.NsPerOp != 123456 || r2.BytesPerOp != -1 || r2.AllocsPerOp != -1 {
		t.Fatalf("result 2 = %+v", r2)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("Parse accepted input with no benchmark lines")
	}
}

func TestWriteAndReadRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep.Rev = "abc1234"
	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_abc1234.json" {
		t.Fatalf("path = %q", path)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rev != "abc1234" || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Results[0] != rep.Results[0] {
		t.Fatalf("result drift: %+v vs %+v", back.Results[0], rep.Results[0])
	}
}

func TestWriteFileRequiresRev(t *testing.T) {
	rep := Report{Results: []Result{{Name: "B"}}}
	if _, err := rep.WriteFile(t.TempDir()); err == nil {
		t.Fatal("WriteFile accepted a report with no revision")
	}
}
