package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gcs/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRing256 	       5	  72541166 ns/op	19837235 B/op	  543828 allocs/op
BenchmarkRing1024-8 	       2	 135916026 ns/op	 1841776 B/op	   27943 allocs/op
BenchmarkNoMem 	     100	    123456 ns/op
PASS
ok  	gcs/internal/sim	0.365s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Package != "gcs/internal/sim" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rep.Results), rep.Results)
	}
	r0 := rep.Results[0]
	if r0.Name != "BenchmarkRing256" || r0.Iterations != 5 ||
		r0.NsPerOp != 72541166 || r0.BytesPerOp != 19837235 || r0.AllocsPerOp != 543828 {
		t.Fatalf("result 0 = %+v", r0)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if rep.Results[1].Name != "BenchmarkRing1024" {
		t.Fatalf("result 1 name = %q", rep.Results[1].Name)
	}
	// Missing -benchmem columns become -1, not 0.
	r2 := rep.Results[2]
	if r2.NsPerOp != 123456 || r2.BytesPerOp != -1 || r2.AllocsPerOp != -1 {
		t.Fatalf("result 2 = %+v", r2)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("Parse accepted input with no benchmark lines")
	}
}

func TestWriteAndReadRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep.Rev = "abc1234"
	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_abc1234.json" {
		t.Fatalf("path = %q", path)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rev != "abc1234" || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Results[0] != rep.Results[0] {
		t.Fatalf("result drift: %+v vs %+v", back.Results[0], rep.Results[0])
	}
}

func TestWriteFileRequiresRev(t *testing.T) {
	rep := Report{Results: []Result{{Name: "B"}}}
	if _, err := rep.WriteFile(t.TempDir()); err == nil {
		t.Fatal("WriteFile accepted a report with no revision")
	}
}

func compareReports(nsBase, nsCur float64, allocsBase, allocsCur int64) error {
	base := Report{Rev: "base", Results: []Result{
		{Name: "BenchmarkRing256", NsPerOp: nsBase, AllocsPerOp: allocsBase},
	}}
	cur := Report{Rev: "cur", Results: []Result{
		{Name: "BenchmarkRing256", NsPerOp: nsCur, AllocsPerOp: allocsCur},
	}}
	return Compare(base, cur, "BenchmarkRing256", 0.25)
}

func TestCompareGate(t *testing.T) {
	// Within the 25% allowance on both axes: passes.
	if err := compareReports(1000, 1200, 7000, 8000); err != nil {
		t.Fatalf("in-allowance comparison failed: %v", err)
	}
	// Improvements always pass.
	if err := compareReports(1000, 500, 7000, 100); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}
	// ns/op past the allowance: fails.
	if err := compareReports(1000, 1300, 7000, 7000); err == nil {
		t.Fatal("30% ns/op regression passed the 25% gate")
	}
	// allocs/op past the allowance: fails even with flat ns/op.
	if err := compareReports(1000, 1000, 7000, 10000); err == nil {
		t.Fatal("allocs/op regression passed the gate")
	}
	// A baseline without alloc data gates on ns/op only.
	if err := compareReports(1000, 1000, -1, 10000); err != nil {
		t.Fatalf("missing baseline allocs should skip the alloc gate: %v", err)
	}
	// A genuine zero-alloc baseline still gates: any allocation is a
	// regression, and staying at zero passes.
	if err := compareReports(1000, 1000, 0, 1); err == nil {
		t.Fatal("allocation regression from a zero-alloc baseline passed the gate")
	}
	if err := compareReports(1000, 1000, 0, 0); err != nil {
		t.Fatalf("flat zero-alloc comparison failed: %v", err)
	}
}

func TestCompareAll(t *testing.T) {
	base := Report{Rev: "base", Results: []Result{
		{Name: "BenchmarkRing256", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkGrid1024", NsPerOp: 2000, AllocsPerOp: 200},
	}}
	ok := Report{Rev: "cur", Results: []Result{
		{Name: "BenchmarkRing256", NsPerOp: 1100, AllocsPerOp: 100},
		{Name: "BenchmarkGrid1024", NsPerOp: 1500, AllocsPerOp: 150},
		// New benchmarks without a baseline reference are ignored.
		{Name: "BenchmarkRing10k", NsPerOp: 1e9, AllocsPerOp: 30},
	}}
	if err := CompareAll(base, ok, 0.25); err != nil {
		t.Fatalf("in-allowance suite failed the gate: %v", err)
	}
	// A regression in any gated benchmark fails, and every failure is
	// reported (not just the first).
	bad := Report{Rev: "cur", Results: []Result{
		{Name: "BenchmarkRing256", NsPerOp: 2000, AllocsPerOp: 100},
		{Name: "BenchmarkGrid1024", NsPerOp: 2000, AllocsPerOp: 400},
	}}
	err := CompareAll(base, bad, 0.25)
	if err == nil {
		t.Fatal("regressed suite passed the gate")
	}
	if msg := err.Error(); !strings.Contains(msg, "BenchmarkRing256") || !strings.Contains(msg, "BenchmarkGrid1024") {
		t.Fatalf("gate reported only part of the regressions: %v", msg)
	}
	// A baseline benchmark missing from the current run fails the gate:
	// silently dropping a scenario would hide a regression forever.
	missing := Report{Rev: "cur", Results: []Result{
		{Name: "BenchmarkRing256", NsPerOp: 1000, AllocsPerOp: 100},
	}}
	if err := CompareAll(base, missing, 0.25); err == nil {
		t.Fatal("gate passed with a baseline benchmark missing from the run")
	}
	if err := CompareAll(Report{Rev: "empty"}, ok, 0.25); err == nil {
		t.Fatal("gate accepted an empty baseline")
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := Report{Rev: "base", Results: []Result{{Name: "BenchmarkRing256", NsPerOp: 1}}}
	cur := Report{Rev: "cur", Results: []Result{{Name: "BenchmarkOther", NsPerOp: 1}}}
	if err := Compare(base, cur, "BenchmarkRing256", 0.25); err == nil {
		t.Fatal("Compare accepted a current report missing the gated benchmark")
	}
	if err := Compare(cur, base, "BenchmarkRing256", 0.25); err == nil {
		t.Fatal("Compare accepted a baseline missing the gated benchmark")
	}
}
