// Package clock models the drifting hardware clocks of the paper's
// Section 3.3: each node u has a continuous hardware clock H_u whose rate
// stays within [1-rho, 1+rho] times real time, with H_u(0) = 0.
//
// Clocks are piecewise linear: the rate changes only at discrete
// breakpoints (driven by rate drivers or adversarial schedules), so
// reading a clock between events is exact. The package also provides
// subjective timers — "fire when H_u has advanced by dH" — which are the
// primitive behind the algorithm's set_timer(dt, id) calls. Subjective
// timers stay correct across rate changes: timer targets are fixed
// hardware readings, so a rate change only moves the real-time instant
// at which each target is reached.
//
// Timers are batched behind a single engine event per clock: pending
// timers sit in a per-clock min-heap ordered by target reading — an
// order that is invariant under rate changes — and only the heap head
// owns an engine event. A rate change therefore re-arms one event in
// O(1) engine operations instead of rescheduling every pending timer,
// which is what keeps the beacon-periodic workload cheap at large n.
//
// Timers are pooled: fired and cancelled Timer structs are recycled, user
// code holds generation-checked TimerRef handles, and all timer firings
// of one clock share a single long-lived engine callback, so the beacon
// hot path allocates nothing per tick.
package clock

import (
	"fmt"
	"math"

	"gcs/internal/des"
)

// HardwareClock is one node's drifting hardware clock. It is owned by a
// single des.Engine and is not safe for concurrent use.
type HardwareClock struct {
	en *des.Engine

	// Piecewise-linear state: H(t) = lastH + rate*(t-lastT) for t >= lastT.
	lastT des.Time
	lastH float64
	rate  float64

	// Pending subjective timers in a 4-ary min-heap ordered by
	// (targetH, seq). Targets are hardware readings, so the heap order
	// never changes when the rate does; only the real-time instant of
	// the head moves, and headEv is re-armed to track it.
	active  []*Timer
	nextSeq uint64
	// headEv is the single engine event backing the heap head (zero when
	// no timers are pending).
	headEv des.EventRef
	// arena holds every Timer ever created for this clock, indexed by
	// Timer.id; free lists the recycled ones.
	arena []*Timer
	free  []*Timer
	// fire is the single engine callback backing all of this clock's
	// timers: it drains every due timer from the heap head and re-arms.
	fire des.ArgHandler

	// maxRate/minRate observed, for drift validation in tests.
	minRateSeen, maxRateSeen float64
}

// New returns a hardware clock reading 0 at the engine's current time,
// running at the given initial rate.
func New(en *des.Engine, initialRate float64) *HardwareClock {
	if initialRate <= 0 {
		panic("clock: nonpositive rate")
	}
	c := &HardwareClock{
		en:          en,
		lastT:       en.Now(),
		lastH:       0,
		rate:        initialRate,
		minRateSeen: initialRate,
		maxRateSeen: initialRate,
	}
	c.fire = func(uint64) { c.drainDue() }
	return c
}

// Reset returns the clock to a fresh reading of 0 at the engine's
// current time, running at initialRate, with no pending timers. It is
// the arena-reuse counterpart of New: the timer arena and free list are
// kept warm so re-arming timers after a reset allocates nothing. Call it
// after the owning engine has been Reset — pending timers are released
// without cancelling their (already recycled) engine event.
func (c *HardwareClock) Reset(initialRate float64) {
	if initialRate <= 0 {
		panic("clock: nonpositive rate")
	}
	for len(c.active) > 0 {
		tm := c.active[len(c.active)-1]
		c.active[len(c.active)-1] = nil
		c.active = c.active[:len(c.active)-1]
		c.pool(tm)
	}
	c.headEv = des.EventRef{}
	c.nextSeq = 0
	c.lastT = c.en.Now()
	c.lastH = 0
	c.rate = initialRate
	c.minRateSeen = initialRate
	c.maxRateSeen = initialRate
}

// Now returns the hardware clock reading at the engine's current time.
func (c *HardwareClock) Now() float64 {
	return c.ReadAt(c.en.Now())
}

// ReadAt returns H(t). t must not precede the last rate breakpoint; the
// simulation only ever reads clocks at or after the current event time.
func (c *HardwareClock) ReadAt(t des.Time) float64 {
	if t < c.lastT {
		panic(fmt.Sprintf("clock: read at %v before last breakpoint %v", t, c.lastT))
	}
	return c.lastH + c.rate*(t-c.lastT)
}

// Rate returns the clock's current rate (d H / d t).
func (c *HardwareClock) Rate() float64 { return c.rate }

// RateBoundsSeen returns the minimum and maximum rates the clock has run
// at since creation. Tests use it to assert the drift bound.
func (c *HardwareClock) RateBoundsSeen() (min, max float64) {
	return c.minRateSeen, c.maxRateSeen
}

// SetRate changes the clock rate as of the engine's current time. Timer
// targets are hardware readings, so the pending-timer heap order is
// unaffected; only the single engine event backing the heap head is
// re-armed to the head's new real fire time — O(1) engine operations
// regardless of how many timers are pending. Rates must be positive;
// the paper's model requires rates in [1-rho, 1+rho] with rho < 1,
// which drivers enforce.
func (c *HardwareClock) SetRate(rate float64) {
	if rate <= 0 {
		panic("clock: nonpositive rate")
	}
	now := c.en.Now()
	c.lastH = c.ReadAt(now)
	c.lastT = now
	c.rate = rate
	if rate < c.minRateSeen {
		c.minRateSeen = rate
	}
	if rate > c.maxRateSeen {
		c.maxRateSeen = rate
	}
	if len(c.active) > 0 {
		c.armHead()
	}
}

// timeWhen returns the real time at which the clock will read hTarget,
// assuming the current rate persists. hTarget must be >= the current
// reading.
func (c *HardwareClock) timeWhen(hTarget float64) des.Time {
	now := c.en.Now()
	h := c.ReadAt(now)
	if hTarget < h {
		// Timer target already passed; fire immediately. This can only
		// happen through floating-point rounding at a breakpoint.
		return now
	}
	return now + (hTarget-h)/c.rate
}

// Timer is a pending subjective timer: it fires when the owning clock
// reaches a target reading, surviving any number of rate changes in
// between. Timers are owned and recycled by their clock; user code holds
// TimerRef handles.
type Timer struct {
	targetH float64
	seq     uint64 // insertion order, tie-break for equal targets
	label   string
	fn      func()
	id      uint64 // arena index, fixed for the Timer's lifetime
	gen     uint32
	pos     int32 // index in the clock's timer heap, -1 when pooled
}

// TimerRef is a generation-checked handle to a subjective timer. The zero
// TimerRef refers to no timer. A ref goes stale when its timer fires or
// is cancelled; stale refs are safe to hold and to cancel (a no-op),
// even after the clock recycles the Timer for a new SetTimer.
type TimerRef struct {
	tm  *Timer
	gen uint32
}

// Pending reports whether the referenced timer is still set.
func (r TimerRef) Pending() bool { return r.tm != nil && r.tm.gen == r.gen }

// Done reports whether the referenced timer has fired or been cancelled.
// The zero TimerRef is neither pending nor done.
func (r TimerRef) Done() bool { return r.tm != nil && r.tm.gen != r.gen }

// TargetH returns the hardware reading at which the timer fires, or NaN
// once the ref is stale.
func (r TimerRef) TargetH() float64 {
	if !r.Pending() {
		return math.NaN()
	}
	return r.tm.targetH
}

// SetTimer schedules fn to run when the clock has advanced by dH from its
// current reading (the paper's set_timer(dt, id)). dH must be
// nonnegative. The callback is retained until the timer fires or is
// cancelled; hot-path callers should pass a long-lived func value rather
// than a fresh closure.
func (c *HardwareClock) SetTimer(dH float64, label string, fn func()) TimerRef {
	if dH < 0 {
		panic("clock: negative timer duration")
	}
	var tm *Timer
	if n := len(c.free); n > 0 {
		tm = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		tm = &Timer{id: uint64(len(c.arena))}
		c.arena = append(c.arena, tm)
	}
	tm.targetH = c.Now() + dH
	tm.seq = c.nextSeq
	c.nextSeq++
	tm.label = label
	tm.fn = fn
	c.heapPush(tm)
	if c.active[0] == tm {
		c.armHead()
	}
	return TimerRef{tm: tm, gen: tm.gen}
}

// armHead (re)registers the single engine event to the heap head's fire
// time. Call with a nonempty heap.
func (c *HardwareClock) armHead() {
	c.en.Cancel(c.headEv)
	head := c.active[0]
	c.headEv = c.en.ScheduleArg(c.timeWhen(head.targetH), head.label, c.fire, 0)
}

// drainDue runs when the head event fires: it pops and fires every timer
// that is due at the current time (equal targets fire in insertion
// order, and a target reached exactly now by floating-point luck fires
// now rather than being re-armed for the same instant), then re-arms the
// event for the new head. Callbacks may set or cancel timers freely —
// the loop re-reads the head each iteration.
func (c *HardwareClock) drainDue() {
	c.headEv = des.EventRef{} // the firing event consumed itself
	now := c.en.Now()
	for len(c.active) > 0 {
		tm := c.active[0]
		if c.timeWhen(tm.targetH) > now {
			break
		}
		c.heapRemove(tm)
		fn := tm.fn
		c.pool(tm)
		fn()
	}
	if len(c.active) > 0 && !c.headEv.Pending() {
		// Callbacks may have armed the event themselves (via SetTimer /
		// CancelTimer on the new head); only re-arm if none did.
		c.armHead()
	}
}

// pool invalidates outstanding refs to tm and returns it to the free
// list. tm must already be out of the heap.
func (c *HardwareClock) pool(tm *Timer) {
	tm.pos = -1
	tm.gen++
	tm.fn = nil
	c.free = append(c.free, tm)
}

// CancelTimer cancels the referenced timer (the paper's cancel(id)).
// Cancelling a zero or stale ref is a no-op.
func (c *HardwareClock) CancelTimer(r TimerRef) {
	tm := r.tm
	if tm == nil || tm.gen != r.gen {
		return
	}
	wasHead := tm.pos == 0
	c.heapRemove(tm)
	c.pool(tm)
	if wasHead {
		if len(c.active) > 0 {
			c.armHead()
		} else {
			c.en.Cancel(c.headEv)
			c.headEv = des.EventRef{}
		}
	}
}

// PendingTimers returns the number of subjective timers currently set.
func (c *HardwareClock) PendingTimers() int { return len(c.active) }

// ---- 4-ary index heap over pending timers, ordered by (targetH, seq) ----

func timerLess(a, b *Timer) bool {
	if a.targetH != b.targetH {
		return a.targetH < b.targetH
	}
	return a.seq < b.seq
}

func (c *HardwareClock) heapPush(tm *Timer) {
	c.active = append(c.active, tm)
	tm.pos = int32(len(c.active) - 1)
	c.siftUp(len(c.active) - 1)
}

// heapRemove deletes tm from the heap, restoring the invariant.
func (c *HardwareClock) heapRemove(tm *Timer) {
	h := c.active
	i := int(tm.pos)
	n := len(h) - 1
	if i != n {
		moved := h[n]
		h[i] = moved
		moved.pos = int32(i)
	}
	h[n] = nil
	c.active = h[:n]
	if i < n {
		moved := c.active[i]
		c.siftDown(i)
		c.siftUp(int(moved.pos))
	}
	tm.pos = -1
}

func (c *HardwareClock) siftUp(i int) {
	h := c.active
	tm := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !timerLess(tm, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].pos = int32(i)
		i = p
	}
	h[i] = tm
	tm.pos = int32(i)
}

func (c *HardwareClock) siftDown(i int) {
	h := c.active
	n := len(h)
	tm := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if timerLess(h[j], h[m]) {
				m = j
			}
		}
		if !timerLess(h[m], tm) {
			break
		}
		h[i] = h[m]
		h[i].pos = int32(i)
		i = m
	}
	h[i] = tm
	tm.pos = int32(i)
}
