// Package clock models the drifting hardware clocks of the paper's
// Section 3.3: each node u has a continuous hardware clock H_u whose rate
// stays within [1-rho, 1+rho] times real time, with H_u(0) = 0.
//
// Clocks are piecewise linear: the rate changes only at discrete
// breakpoints (driven by rate drivers or adversarial schedules), so
// reading a clock between events is exact. The package also provides
// subjective timers — "fire when H_u has advanced by dH" — which are the
// primitive behind the algorithm's set_timer(dt, id) calls. Subjective
// timers stay correct across rate changes: every rate change reschedules
// the pending timers at the new exact fire time.
//
// Timers are pooled: fired and cancelled Timer structs are recycled, user
// code holds generation-checked TimerRef handles, and all timer firings
// of one clock share a single long-lived engine callback, so the beacon
// hot path allocates nothing per tick.
package clock

import (
	"fmt"
	"math"

	"gcs/internal/des"
)

// HardwareClock is one node's drifting hardware clock. It is owned by a
// single des.Engine and is not safe for concurrent use.
type HardwareClock struct {
	en *des.Engine

	// Piecewise-linear state: H(t) = lastH + rate*(t-lastT) for t >= lastT.
	lastT des.Time
	lastH float64
	rate  float64

	// Pending subjective timers, rescheduled on every rate change. Each
	// active timer records its position here for O(1) removal, and the
	// slice order makes reschedule order (hence engine tie-breaking)
	// deterministic.
	active []*Timer
	// arena holds every Timer ever created for this clock, indexed by
	// Timer.id; free lists the recycled ones.
	arena []*Timer
	free  []*Timer
	// fire is the single engine callback backing all of this clock's
	// timers; the event arg is the timer's arena id.
	fire des.ArgHandler

	// maxRate/minRate observed, for drift validation in tests.
	minRateSeen, maxRateSeen float64
}

// New returns a hardware clock reading 0 at the engine's current time,
// running at the given initial rate.
func New(en *des.Engine, initialRate float64) *HardwareClock {
	if initialRate <= 0 {
		panic("clock: nonpositive rate")
	}
	c := &HardwareClock{
		en:          en,
		lastT:       en.Now(),
		lastH:       0,
		rate:        initialRate,
		minRateSeen: initialRate,
		maxRateSeen: initialRate,
	}
	c.fire = func(id uint64) { c.fireTimer(c.arena[id]) }
	return c
}

// Reset returns the clock to a fresh reading of 0 at the engine's
// current time, running at initialRate, with no pending timers. It is
// the arena-reuse counterpart of New: the timer arena and free list are
// kept warm so re-arming timers after a reset allocates nothing. Call it
// after the owning engine has been Reset — pending timers are released
// without cancelling their (already recycled) engine events.
func (c *HardwareClock) Reset(initialRate float64) {
	if initialRate <= 0 {
		panic("clock: nonpositive rate")
	}
	for len(c.active) > 0 {
		c.release(c.active[len(c.active)-1])
	}
	c.lastT = c.en.Now()
	c.lastH = 0
	c.rate = initialRate
	c.minRateSeen = initialRate
	c.maxRateSeen = initialRate
}

// Now returns the hardware clock reading at the engine's current time.
func (c *HardwareClock) Now() float64 {
	return c.ReadAt(c.en.Now())
}

// ReadAt returns H(t). t must not precede the last rate breakpoint; the
// simulation only ever reads clocks at or after the current event time.
func (c *HardwareClock) ReadAt(t des.Time) float64 {
	if t < c.lastT {
		panic(fmt.Sprintf("clock: read at %v before last breakpoint %v", t, c.lastT))
	}
	return c.lastH + c.rate*(t-c.lastT)
}

// Rate returns the clock's current rate (d H / d t).
func (c *HardwareClock) Rate() float64 { return c.rate }

// RateBoundsSeen returns the minimum and maximum rates the clock has run
// at since creation. Tests use it to assert the drift bound.
func (c *HardwareClock) RateBoundsSeen() (min, max float64) {
	return c.minRateSeen, c.maxRateSeen
}

// SetRate changes the clock rate as of the engine's current time and
// reschedules all pending subjective timers to their new exact fire
// times. Rates must be positive; the paper's model requires rates in
// [1-rho, 1+rho] with rho < 1, which drivers enforce.
func (c *HardwareClock) SetRate(rate float64) {
	if rate <= 0 {
		panic("clock: nonpositive rate")
	}
	now := c.en.Now()
	c.lastH = c.ReadAt(now)
	c.lastT = now
	c.rate = rate
	if rate < c.minRateSeen {
		c.minRateSeen = rate
	}
	if rate > c.maxRateSeen {
		c.maxRateSeen = rate
	}
	for _, tm := range c.active {
		c.reschedule(tm)
	}
}

// timeWhen returns the real time at which the clock will read hTarget,
// assuming the current rate persists. hTarget must be >= the current
// reading.
func (c *HardwareClock) timeWhen(hTarget float64) des.Time {
	now := c.en.Now()
	h := c.ReadAt(now)
	if hTarget < h {
		// Timer target already passed; fire immediately. This can only
		// happen through floating-point rounding at a breakpoint.
		return now
	}
	return now + (hTarget-h)/c.rate
}

// Timer is a pending subjective timer: it fires when the owning clock
// reaches a target reading, surviving any number of rate changes in
// between. Timers are owned and recycled by their clock; user code holds
// TimerRef handles.
type Timer struct {
	targetH float64
	label   string
	fn      func()
	ev      des.EventRef
	id      uint64 // arena index, fixed for the Timer's lifetime
	gen     uint32
	pos     int32 // index in the clock's active slice, -1 when pooled
}

// TimerRef is a generation-checked handle to a subjective timer. The zero
// TimerRef refers to no timer. A ref goes stale when its timer fires or
// is cancelled; stale refs are safe to hold and to cancel (a no-op),
// even after the clock recycles the Timer for a new SetTimer.
type TimerRef struct {
	tm  *Timer
	gen uint32
}

// Pending reports whether the referenced timer is still set.
func (r TimerRef) Pending() bool { return r.tm != nil && r.tm.gen == r.gen }

// Done reports whether the referenced timer has fired or been cancelled.
// The zero TimerRef is neither pending nor done.
func (r TimerRef) Done() bool { return r.tm != nil && r.tm.gen != r.gen }

// TargetH returns the hardware reading at which the timer fires, or NaN
// once the ref is stale.
func (r TimerRef) TargetH() float64 {
	if !r.Pending() {
		return math.NaN()
	}
	return r.tm.targetH
}

// SetTimer schedules fn to run when the clock has advanced by dH from its
// current reading (the paper's set_timer(dt, id)). dH must be
// nonnegative. The callback is retained until the timer fires or is
// cancelled; hot-path callers should pass a long-lived func value rather
// than a fresh closure.
func (c *HardwareClock) SetTimer(dH float64, label string, fn func()) TimerRef {
	if dH < 0 {
		panic("clock: negative timer duration")
	}
	var tm *Timer
	if n := len(c.free); n > 0 {
		tm = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		tm = &Timer{id: uint64(len(c.arena))}
		c.arena = append(c.arena, tm)
	}
	tm.targetH = c.Now() + dH
	tm.label = label
	tm.fn = fn
	tm.pos = int32(len(c.active))
	c.active = append(c.active, tm)
	c.reschedule(tm)
	return TimerRef{tm: tm, gen: tm.gen}
}

// reschedule (re)registers the engine event backing tm.
func (c *HardwareClock) reschedule(tm *Timer) {
	c.en.Cancel(tm.ev)
	tm.ev = c.en.ScheduleArg(c.timeWhen(tm.targetH), tm.label, c.fire, tm.id)
}

// fireTimer runs when tm's engine event fires: the timer is released
// before its callback so the callback can set new timers that reuse it.
func (c *HardwareClock) fireTimer(tm *Timer) {
	fn := tm.fn
	c.release(tm)
	fn()
}

// release removes tm from the active set, invalidates outstanding refs,
// and returns it to the free list.
func (c *HardwareClock) release(tm *Timer) {
	last := len(c.active) - 1
	moved := c.active[last]
	c.active[tm.pos] = moved
	moved.pos = tm.pos
	c.active[last] = nil
	c.active = c.active[:last]
	tm.pos = -1
	tm.gen++
	tm.fn = nil
	tm.ev = des.EventRef{}
	c.free = append(c.free, tm)
}

// CancelTimer cancels the referenced timer (the paper's cancel(id)).
// Cancelling a zero or stale ref is a no-op.
func (c *HardwareClock) CancelTimer(r TimerRef) {
	tm := r.tm
	if tm == nil || tm.gen != r.gen {
		return
	}
	c.en.Cancel(tm.ev)
	c.release(tm)
}

// PendingTimers returns the number of subjective timers currently set.
func (c *HardwareClock) PendingTimers() int { return len(c.active) }
