// Package clock models the drifting hardware clocks of the paper's
// Section 3.3: each node u has a continuous hardware clock H_u whose rate
// stays within [1-rho, 1+rho] times real time, with H_u(0) = 0.
//
// Clocks are piecewise linear: the rate changes only at discrete
// breakpoints (driven by rate drivers or adversarial schedules), so
// reading a clock between events is exact. The package also provides
// subjective timers — "fire when H_u has advanced by dH" — which are the
// primitive behind the algorithm's set_timer(dt, id) calls. Subjective
// timers stay correct across rate changes: every rate change reschedules
// the pending timers at the new exact fire time.
package clock

import (
	"fmt"

	"gcs/internal/des"
)

// HardwareClock is one node's drifting hardware clock. It is owned by a
// single des.Engine and is not safe for concurrent use.
type HardwareClock struct {
	en *des.Engine

	// Piecewise-linear state: H(t) = lastH + rate*(t-lastT) for t >= lastT.
	lastT des.Time
	lastH float64
	rate  float64

	// Pending subjective timers, rescheduled on every rate change.
	timers map[*Timer]struct{}

	// maxRate/minRate observed, for drift validation in tests.
	minRateSeen, maxRateSeen float64
}

// New returns a hardware clock reading 0 at the engine's current time,
// running at the given initial rate.
func New(en *des.Engine, initialRate float64) *HardwareClock {
	if initialRate <= 0 {
		panic("clock: nonpositive rate")
	}
	return &HardwareClock{
		en:          en,
		lastT:       en.Now(),
		lastH:       0,
		rate:        initialRate,
		timers:      make(map[*Timer]struct{}),
		minRateSeen: initialRate,
		maxRateSeen: initialRate,
	}
}

// Now returns the hardware clock reading at the engine's current time.
func (c *HardwareClock) Now() float64 {
	return c.ReadAt(c.en.Now())
}

// ReadAt returns H(t). t must not precede the last rate breakpoint; the
// simulation only ever reads clocks at or after the current event time.
func (c *HardwareClock) ReadAt(t des.Time) float64 {
	if t < c.lastT {
		panic(fmt.Sprintf("clock: read at %v before last breakpoint %v", t, c.lastT))
	}
	return c.lastH + c.rate*(t-c.lastT)
}

// Rate returns the clock's current rate (d H / d t).
func (c *HardwareClock) Rate() float64 { return c.rate }

// RateBoundsSeen returns the minimum and maximum rates the clock has run
// at since creation. Tests use it to assert the drift bound.
func (c *HardwareClock) RateBoundsSeen() (min, max float64) {
	return c.minRateSeen, c.maxRateSeen
}

// SetRate changes the clock rate as of the engine's current time and
// reschedules all pending subjective timers to their new exact fire
// times. Rates must be positive; the paper's model requires rates in
// [1-rho, 1+rho] with rho < 1, which drivers enforce.
func (c *HardwareClock) SetRate(rate float64) {
	if rate <= 0 {
		panic("clock: nonpositive rate")
	}
	now := c.en.Now()
	c.lastH = c.ReadAt(now)
	c.lastT = now
	c.rate = rate
	if rate < c.minRateSeen {
		c.minRateSeen = rate
	}
	if rate > c.maxRateSeen {
		c.maxRateSeen = rate
	}
	for tm := range c.timers {
		c.reschedule(tm)
	}
}

// timeWhen returns the real time at which the clock will read hTarget,
// assuming the current rate persists. hTarget must be >= the current
// reading.
func (c *HardwareClock) timeWhen(hTarget float64) des.Time {
	now := c.en.Now()
	h := c.ReadAt(now)
	if hTarget < h {
		// Timer target already passed; fire immediately. This can only
		// happen through floating-point rounding at a breakpoint.
		return now
	}
	return now + (hTarget-h)/c.rate
}

// Timer is a pending subjective timer: it fires when the owning clock
// reaches a target reading, surviving any number of rate changes in
// between.
type Timer struct {
	c       *HardwareClock
	targetH float64
	label   string
	fn      func()
	ev      *des.Event
	fired   bool
}

// SetTimer schedules fn to run when the clock has advanced by dH from its
// current reading (the paper's set_timer(dt, id)). dH must be
// nonnegative.
func (c *HardwareClock) SetTimer(dH float64, label string, fn func()) *Timer {
	if dH < 0 {
		panic("clock: negative timer duration")
	}
	tm := &Timer{
		c:       c,
		targetH: c.Now() + dH,
		label:   label,
		fn:      fn,
	}
	c.timers[tm] = struct{}{}
	c.reschedule(tm)
	return tm
}

// reschedule (re)registers the engine event backing tm.
func (c *HardwareClock) reschedule(tm *Timer) {
	if tm.ev != nil {
		c.en.Cancel(tm.ev)
	}
	tm.ev = c.en.Schedule(c.timeWhen(tm.targetH), tm.label, func() {
		tm.fired = true
		delete(c.timers, tm)
		tm.fn()
	})
}

// Cancel cancels the timer (the paper's cancel(id)). Cancelling a nil,
// fired, or already-cancelled timer is a no-op.
func (c *HardwareClock) CancelTimer(tm *Timer) {
	if tm == nil || tm.fired {
		return
	}
	delete(c.timers, tm)
	if tm.ev != nil {
		c.en.Cancel(tm.ev)
		tm.ev = nil
	}
}

// Fired reports whether the timer has fired.
func (tm *Timer) Fired() bool { return tm.fired }

// TargetH returns the hardware reading at which the timer fires.
func (tm *Timer) TargetH() float64 { return tm.targetH }

// PendingTimers returns the number of subjective timers currently set.
func (c *HardwareClock) PendingTimers() int { return len(c.timers) }
