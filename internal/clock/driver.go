package clock

import (
	"fmt"
	"sort"

	"gcs/internal/des"
)

// A Driver controls how a hardware clock's rate evolves over simulated
// time. Drivers install engine events that call SetRate; the clock itself
// stays passive. Drivers model the adversary of the paper's Section 3.3,
// which may vary each clock's rate arbitrarily within [1-rho, 1+rho].
type Driver interface {
	// Install attaches the driver to a clock on an engine. It must be
	// called once, before the simulation runs past the engine's current
	// time.
	Install(en *des.Engine, c *HardwareClock)
}

// ConstantRate keeps the clock at a fixed rate forever.
type ConstantRate struct {
	Rate float64
}

// Install implements Driver.
func (d ConstantRate) Install(en *des.Engine, c *HardwareClock) {
	c.SetRate(d.Rate)
}

// Breakpoint is one segment boundary of an explicit rate schedule.
type Breakpoint struct {
	At   des.Time // absolute real time the new rate takes effect
	Rate float64
}

// Schedule replays an explicit list of rate breakpoints. It is the
// building block for the lower bound's layered executions (Section 4,
// Eq. 1), where node x runs at 1+rho until real time T*dist_M(u,x)/rho
// and at 1 afterwards.
type Schedule struct {
	Initial     float64
	Breakpoints []Breakpoint
}

// Install implements Driver.
func (d Schedule) Install(en *des.Engine, c *HardwareClock) {
	c.SetRate(d.Initial)
	bps := append([]Breakpoint(nil), d.Breakpoints...)
	sort.Slice(bps, func(i, j int) bool { return bps[i].At < bps[j].At })
	for _, bp := range bps {
		if bp.At < en.Now() {
			panic(fmt.Sprintf("clock: schedule breakpoint at %v in the past", bp.At))
		}
		rate := bp.Rate
		en.Schedule(bp.At, "clock.rate", func() { c.SetRate(rate) })
	}
}

// LayeredRate returns the Section 4 / Eq. (1) adversarial schedule for a
// node at flexible distance dist from the reference node u, with message
// delay bound maxDelay: H(t) = t + min(rho*t, maxDelay*dist). The node
// runs at rate 1+rho until t = maxDelay*dist/rho, then at rate 1. A node
// at distance 0 runs at rate 1 throughout.
func LayeredRate(rho, maxDelay float64, dist int) Schedule {
	if dist <= 0 || rho == 0 {
		return Schedule{Initial: 1}
	}
	switchAt := maxDelay * float64(dist) / rho
	return Schedule{
		Initial:     1 + rho,
		Breakpoints: []Breakpoint{{At: switchAt, Rate: 1}},
	}
}

// RandomWalk re-draws the clock rate uniformly in [1-rho, 1+rho] every
// Interval of real time (jittered by up to half an interval so that
// different clocks drift out of phase). It models benign environmental
// drift: temperature-driven oscillator wander.
type RandomWalk struct {
	Rho      float64
	Interval des.Time
	Rand     *des.Rand
}

// Install implements Driver.
func (d RandomWalk) Install(en *des.Engine, c *HardwareClock) {
	if d.Interval <= 0 {
		panic("clock: RandomWalk interval must be positive")
	}
	r := d.Rand
	if r == nil {
		r = des.NewRand(1)
	}
	c.SetRate(r.Range(1-d.Rho, 1+d.Rho))
	var step func()
	step = func() {
		c.SetRate(r.Range(1-d.Rho, 1+d.Rho))
		en.ScheduleAfter(d.Interval*(0.5+r.Float64()), "clock.walk", step)
	}
	en.ScheduleAfter(d.Interval*(0.5+r.Float64()), "clock.walk", step)
}

// BangBang alternates between the two extreme legal rates 1-rho and
// 1+rho every Interval. It is the worst benign drift pattern for skew
// accumulation between a pair of anti-phased clocks.
type BangBang struct {
	Rho      float64
	Interval des.Time
	// StartHigh selects the initial extreme.
	StartHigh bool
}

// Install implements Driver.
func (d BangBang) Install(en *des.Engine, c *HardwareClock) {
	if d.Interval <= 0 {
		panic("clock: BangBang interval must be positive")
	}
	high := d.StartHigh
	set := func() {
		if high {
			c.SetRate(1 + d.Rho)
		} else {
			c.SetRate(1 - d.Rho)
		}
		high = !high
	}
	set()
	var flip func()
	flip = func() {
		set()
		en.ScheduleAfter(d.Interval, "clock.bang", flip)
	}
	en.ScheduleAfter(d.Interval, "clock.bang", flip)
}

// ValidateRate panics unless rate is within [1-rho, 1+rho]. Drivers used
// in paper-faithful experiments call it before SetRate.
func ValidateRate(rate, rho float64) {
	if rate < 1-rho-1e-12 || rate > 1+rho+1e-12 {
		panic(fmt.Sprintf("clock: rate %v outside [1-rho,1+rho] for rho=%v", rate, rho))
	}
}
