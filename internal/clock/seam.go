package clock

import "gcs/internal/seam"

// HardwareClock is the DES-side implementation of the harness seam: the
// node algorithm reads it through seam.Clock, while the harness keeps
// the concrete handle for rate drift (SetRate) and arena reuse (Reset).
var _ seam.Clock = (*HardwareClock)(nil)

// NewTimer returns an unarmed resettable timer on this clock. The
// wrapper is long-lived — one allocation at construction, zero per
// re-arm — and delegates each arming to SetTimer, so firing order,
// event labels, and trace hooks are exactly those of the underlying
// pooled timers.
func (c *HardwareClock) NewTimer(label string, fn func()) seam.Timer {
	return &seamTimer{c: c, label: label, fn: fn}
}

// seamTimer adapts the generation-checked TimerRef API (SetTimer /
// CancelTimer) to seam.Timer's resettable shape. A stale ref — the
// timer fired, or the clock was Reset underneath us — makes CancelTimer
// a no-op, so Reset and Stop are always safe to call.
type seamTimer struct {
	c     *HardwareClock
	ref   TimerRef
	label string
	fn    func()
}

func (t *seamTimer) Reset(dH float64) {
	t.c.CancelTimer(t.ref)
	t.ref = t.c.SetTimer(dH, t.label, t.fn)
}

func (t *seamTimer) Stop() {
	t.c.CancelTimer(t.ref)
	t.ref = TimerRef{}
}

func (t *seamTimer) Pending() bool { return t.ref.Pending() }
