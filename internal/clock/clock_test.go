package clock

import (
	"math"
	"testing"
	"testing/quick"

	"gcs/internal/des"
)

func TestReadConstantRate(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	en.Schedule(10, "check", func() {
		if got := c.Now(); got != 10 {
			t.Errorf("H(10) = %v, want 10", got)
		}
	})
	en.Run(10)
	if got := c.Now(); got != 10 {
		t.Fatalf("H(10) after run = %v, want 10", got)
	}
}

func TestReadFastSlow(t *testing.T) {
	en := des.NewEngine()
	fast := New(en, 1.1)
	slow := New(en, 0.9)
	en.Run(100)
	if got := fast.Now(); math.Abs(got-110) > 1e-9 {
		t.Fatalf("fast H(100) = %v, want 110", got)
	}
	if got := slow.Now(); math.Abs(got-90) > 1e-9 {
		t.Fatalf("slow H(100) = %v, want 90", got)
	}
}

func TestSetRateBreakpoint(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	en.Schedule(10, "speedup", func() { c.SetRate(2.0) })
	en.Run(15)
	// H = 10*1 + 5*2 = 20.
	if got := c.Now(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("H(15) = %v, want 20", got)
	}
}

func TestReadAtPastPanics(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	en.Schedule(5, "bp", func() { c.SetRate(1.5) })
	en.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("ReadAt before breakpoint did not panic")
		}
	}()
	c.ReadAt(3)
}

func TestNonpositiveRatePanics(t *testing.T) {
	en := des.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("New with rate 0 did not panic")
		}
	}()
	New(en, 0)
}

func TestTimerConstantRate(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 2.0) // subjective time runs twice as fast
	var firedAt des.Time = -1
	c.SetTimer(10, "tick", func() { firedAt = en.Now() })
	en.Run(100)
	// dH=10 at rate 2 -> 5 real seconds.
	if math.Abs(firedAt-5) > 1e-9 {
		t.Fatalf("timer fired at %v, want 5", firedAt)
	}
}

func TestTimerSurvivesRateChange(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	var firedAt des.Time = -1
	c.SetTimer(10, "tick", func() { firedAt = en.Now() })
	// At t=4 (H=4), slow down to 0.5: remaining dH=6 takes 12 real secs.
	en.Schedule(4, "slow", func() { c.SetRate(0.5) })
	en.Run(100)
	if math.Abs(firedAt-16) > 1e-9 {
		t.Fatalf("timer fired at %v, want 16", firedAt)
	}
}

func TestTimerSurvivesManyRateChanges(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	var firedAt des.Time = -1
	c.SetTimer(10, "tick", func() { firedAt = en.Now() })
	// Alternate 0.5 / 2.0 every second; average progress per 2s = 2.5 H.
	rate := 0.5
	var flip func()
	flip = func() {
		c.SetRate(rate)
		if rate == 0.5 {
			rate = 2.0
		} else {
			rate = 0.5
		}
		en.ScheduleAfter(1, "flip", flip)
	}
	en.Schedule(1, "flip", flip)
	en.Run(100)
	// H(t): 1 at t=1, then rates 0.5,2 alternating each second:
	// H(2)=1.5, H(3)=3.5, H(4)=4, H(5)=6, H(6)=6.5, H(7)=8.5, H(8)=9,
	// then rate 2 reaches H=10 at t=8.5.
	if math.Abs(firedAt-8.5) > 1e-9 {
		t.Fatalf("timer fired at %v, want 8.5", firedAt)
	}
}

func TestCancelTimer(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	fired := false
	tm := c.SetTimer(5, "tick", func() { fired = true })
	c.CancelTimer(tm)
	en.Run(10)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if c.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d, want 0", c.PendingTimers())
	}
	c.CancelTimer(tm) // no-op
	c.CancelTimer(TimerRef{})
}

func TestTimerDoneFlag(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	tm := c.SetTimer(5, "tick", func() {})
	if tm.Done() || !tm.Pending() {
		t.Fatal("timer marked done before firing")
	}
	en.Run(10)
	if !tm.Done() || tm.Pending() {
		t.Fatal("timer not marked done after firing")
	}
	c.CancelTimer(tm) // no-op after fire
}

// A stale TimerRef must not cancel the recycled Timer now backing a new
// SetTimer — the clock-layer analogue of the event pool's generation
// guarantee.
func TestStaleTimerRefCannotCancelRecycledTimer(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	stale := c.SetTimer(1, "old", func() {})
	en.Run(2) // fires and recycles the timer
	fired := false
	c.SetTimer(1, "new", func() { fired = true })
	c.CancelTimer(stale) // must be a no-op
	en.Run(5)
	if !fired {
		t.Fatal("stale CancelTimer killed a recycled timer")
	}
}

func TestTimerZeroDuration(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	en.Schedule(3, "setup", func() {
		c.SetTimer(0, "imm", func() {
			if en.Now() != 3 {
				t.Errorf("zero timer fired at %v, want 3", en.Now())
			}
		})
	})
	en.Run(10)
}

func TestNegativeTimerPanics(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative timer did not panic")
		}
	}()
	c.SetTimer(-1, "bad", func() {})
}

func TestTargetH(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	en.Schedule(2, "set", func() {
		tm := c.SetTimer(7, "x", func() {})
		if got := tm.TargetH(); math.Abs(got-9) > 1e-12 {
			t.Errorf("TargetH = %v, want 9", got)
		}
	})
	en.Run(20)
}

func TestScheduleDriver(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	Schedule{
		Initial: 1.0,
		Breakpoints: []Breakpoint{
			{At: 10, Rate: 2.0},
			{At: 20, Rate: 0.5},
		},
	}.Install(en, c)
	en.Run(30)
	// H = 10 + 10*2 + 10*0.5 = 35
	if got := c.Now(); math.Abs(got-35) > 1e-9 {
		t.Fatalf("H(30) = %v, want 35", got)
	}
	min, max := c.RateBoundsSeen()
	if min != 0.5 || max != 2.0 {
		t.Fatalf("rate bounds = %v,%v", min, max)
	}
}

func TestLayeredRateMatchesEquationOne(t *testing.T) {
	// Eq. (1) of the paper: H(t) = t + min(rho*t, maxDelay*dist).
	const rho = 0.01
	const maxDelay = 1.0
	for _, dist := range []int{0, 1, 3, 7} {
		en := des.NewEngine()
		c := New(en, 1.0)
		LayeredRate(rho, maxDelay, dist).Install(en, c)
		for _, sample := range []des.Time{50, 100, 300, 500, 1000} {
			en.Run(sample)
			want := sample + math.Min(rho*sample, maxDelay*float64(dist))
			if got := c.Now(); math.Abs(got-want) > 1e-6 {
				t.Fatalf("dist=%d H(%v) = %v, want %v", dist, sample, got, want)
			}
		}
	}
}

func TestRandomWalkStaysInBounds(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1.0)
	RandomWalk{Rho: 0.05, Interval: 1, Rand: des.NewRand(3)}.Install(en, c)
	en.Run(200)
	min, max := c.RateBoundsSeen()
	if min < 0.95 || max > 1.05 {
		t.Fatalf("random walk escaped drift bounds: [%v, %v]", min, max)
	}
	// The clock must have advanced roughly like real time.
	h := c.Now()
	if h < 200*0.95 || h > 200*1.05 {
		t.Fatalf("H(200) = %v outside drift envelope", h)
	}
}

func TestBangBang(t *testing.T) {
	en := des.NewEngine()
	a := New(en, 1.0)
	b := New(en, 1.0)
	BangBang{Rho: 0.1, Interval: 5, StartHigh: true}.Install(en, a)
	BangBang{Rho: 0.1, Interval: 5, StartHigh: false}.Install(en, b)
	en.Run(5)
	// After one interval the clocks are 2*rho*interval apart.
	gap := a.Now() - b.Now()
	if math.Abs(gap-1.0) > 1e-9 {
		t.Fatalf("gap after 5s = %v, want 1.0", gap)
	}
	en.Run(10)
	// Second interval reverses the rates; gap returns to 0.
	gap = a.Now() - b.Now()
	if math.Abs(gap) > 1e-9 {
		t.Fatalf("gap after 10s = %v, want 0", gap)
	}
}

func TestValidateRate(t *testing.T) {
	ValidateRate(1.0, 0.01)
	ValidateRate(0.99, 0.01)
	ValidateRate(1.01, 0.01)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds rate did not panic")
		}
	}()
	ValidateRate(1.02, 0.01)
}

// Property: for any sequence of rate changes within [1-rho, 1+rho], the
// clock's advance over any window respects the drift bound (paper §3.3):
// (1-rho)(t2-t1) <= H(t2)-H(t1) <= (1+rho)(t2-t1).
func TestPropertyDriftEnvelope(t *testing.T) {
	const rho = 0.1
	prop := func(seed uint64) bool {
		r := des.NewRand(seed)
		en := des.NewEngine()
		c := New(en, r.Range(1-rho, 1+rho))
		// Random rate changes at random times.
		tPrev := des.Time(0)
		hPrev := 0.0
		ok := true
		for i := 0; i < 40; i++ {
			dt := r.Range(0.01, 5)
			en.Run(en.Now() + dt)
			h := c.Now()
			lo := (1 - rho) * (en.Now() - tPrev)
			hi := (1 + rho) * (en.Now() - tPrev)
			dH := h - hPrev
			if dH < lo-1e-9 || dH > hi+1e-9 {
				ok = false
			}
			tPrev, hPrev = en.Now(), h
			c.SetRate(r.Range(1-rho, 1+rho))
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a subjective timer set for dH fires exactly when the clock
// reads start+dH, across arbitrary legal rate changes.
func TestPropertyTimerExactness(t *testing.T) {
	prop := func(seed uint64) bool {
		r := des.NewRand(seed)
		en := des.NewEngine()
		c := New(en, r.Range(0.5, 2))
		dH := r.Range(1, 20)
		var readingAtFire float64 = -1
		c.SetTimer(dH, "t", func() { readingAtFire = c.Now() })
		// Random rate perturbations.
		for i := 0; i < 20; i++ {
			at := r.Range(0, 30)
			rate := r.Range(0.5, 2)
			if at >= en.Now() {
				en.Schedule(at, "perturb", func() { c.SetRate(rate) })
			}
		}
		en.Run(100)
		return readingAtFire >= 0 && math.Abs(readingAtFire-dH) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedTimersOneEngineEvent pins the batching contract: however
// many subjective timers a clock holds, only the heap head owns an
// engine event, and a rate change re-arms that single event instead of
// rescheduling every timer.
func TestBatchedTimersOneEngineEvent(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1)
	for i := 0; i < 100; i++ {
		d := float64(i + 1)
		c.SetTimer(d, "tm", func() {})
	}
	if c.PendingTimers() != 100 {
		t.Fatalf("PendingTimers = %d, want 100", c.PendingTimers())
	}
	if en.Pending() != 1 {
		t.Fatalf("engine holds %d events for 100 timers, want 1", en.Pending())
	}
	// SetRate must stay O(1) engine ops: one cancel + one schedule.
	before := en.Executed()
	c.SetRate(2)
	if en.Pending() != 1 {
		t.Fatalf("engine holds %d events after SetRate, want 1", en.Pending())
	}
	if en.Executed() != before {
		t.Fatal("SetRate fired events")
	}
}

// TestBatchedTimersFireOrder pins that equal-target timers fire in
// insertion order and distinct targets in target order, through the
// single batched engine event.
func TestBatchedTimersFireOrder(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1)
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }
	c.SetTimer(2, "b", rec(1))
	c.SetTimer(1, "a", rec(0))
	c.SetTimer(2, "b2", rec(2))
	c.SetTimer(3, "c", rec(3))
	en.Run(10)
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestBatchedTimerCancelHeadReArms pins that cancelling the head timer
// re-arms the engine event for the next timer, and cancelling the last
// timer clears it.
func TestBatchedTimerCancelHeadReArms(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1)
	fired := false
	head := c.SetTimer(1, "head", func() { t.Error("cancelled head fired") })
	c.SetTimer(2, "next", func() { fired = true })
	c.CancelTimer(head)
	if en.Pending() != 1 {
		t.Fatalf("engine holds %d events after head cancel, want 1", en.Pending())
	}
	en.Run(10)
	if !fired {
		t.Fatal("next timer did not fire after head cancel")
	}
	if c.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d, want 0", c.PendingTimers())
	}
	last := c.SetTimer(1, "last", func() {})
	c.CancelTimer(last)
	if en.Pending() != 0 {
		t.Fatalf("engine holds %d events after last cancel, want 0", en.Pending())
	}
}

// TestBatchedTimerSetDuringDrain pins that a callback setting a new
// timer while the batched event drains gets a correctly armed event.
func TestBatchedTimerSetDuringDrain(t *testing.T) {
	en := des.NewEngine()
	c := New(en, 1)
	var at float64 = -1
	c.SetTimer(1, "outer", func() {
		c.SetTimer(0.5, "inner", func() { at = c.Now() })
	})
	en.Run(10)
	if math.Abs(at-1.5) > 1e-12 {
		t.Fatalf("inner timer fired at H=%v, want 1.5", at)
	}
}
