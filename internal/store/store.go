// Package store is the durable result store behind the sweep service:
// a repository of immutable, content-addressed facts. Determinism is
// what makes the design possible — every (Config, CellSeed) cell is a
// pure function of its canonical encoding, so a cell result can be
// persisted once, keyed by the hash of that encoding, deduped across
// jobs, and served forever without re-running; and a job interrupted by
// any failure (including kill -9) resumes exactly where it left off by
// re-enqueuing only the cells whose facts are not yet on disk.
//
// The package has two repository implementations: WAL (wal.go), an
// append-only, CRC-checked, fsync-on-commit log with segment rotation,
// compaction, and torn-tail recovery; and Memory (memory.go), the same
// contract without durability, for tests and embedded use.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"gcs/internal/sim"
)

// Key is the content address of one sweep cell: the SHA-256 of the
// canonical encoding of its defaulted Config (sim.Config.AppendCanonical).
// Two configs share a Key exactly when they describe the same simulated
// physics — worker counts and unset-vs-explicit defaults never split
// the address.
type Key [sha256.Size]byte

// KeyOf derives the content address of cfg.
func KeyOf(cfg sim.Config) Key {
	return sha256.Sum256(cfg.AppendCanonical(nil))
}

// String returns the full hex form.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// MarshalText encodes the key as lowercase hex (JSON object-safe).
func (k Key) MarshalText() ([]byte, error) {
	dst := make([]byte, hex.EncodedLen(len(k)))
	hex.Encode(dst, k[:])
	return dst, nil
}

// UnmarshalText decodes the hex form.
func (k *Key) UnmarshalText(text []byte) error {
	if hex.DecodedLen(len(text)) != len(k) {
		return fmt.Errorf("store: key %q is not %d hex bytes", text, len(k))
	}
	_, err := hex.Decode(k[:], text)
	return err
}

// CellResult is one stored fact: the defaulted config that identifies
// the cell, and either its report or the terminal error that ended its
// execution (a deterministic cell that panics will panic again, so a
// contained failure is as cacheable as a success). Attempts records how
// many executions the fact cost, for observability only — it is not
// part of the cell's identity.
type CellResult struct {
	Key      Key            `json:"key"`
	Cfg      sim.Config     `json:"cfg"`
	Report   sim.SkewReport `json:"report"`
	Err      string         `json:"err,omitempty"`
	Attempts int            `json:"attempts,omitempty"`
}

// Failed reports whether the fact is a terminal error rather than a
// report.
func (c CellResult) Failed() bool { return c.Err != "" }

// cellResultJSON is the wire form. JSON numbers cannot carry IEEE
// non-finite values, and one report field is legitimately non-finite:
// ReconvergenceTime is +Inf when a faulted cell never re-entered its
// bound. The flag keeps the round trip lossless; any other non-finite
// float would fail json.Marshal and surface as a Put error rather than
// a corrupted record.
type cellResultJSON struct {
	Key      Key            `json:"key"`
	Cfg      sim.Config     `json:"cfg"`
	Report   sim.SkewReport `json:"report"`
	NeverRe  bool           `json:"reconvergence_never,omitempty"`
	Err      string         `json:"err,omitempty"`
	Attempts int            `json:"attempts,omitempty"`
}

// MarshalJSON implements the lossless wire form.
func (c CellResult) MarshalJSON() ([]byte, error) {
	w := cellResultJSON{Key: c.Key, Cfg: c.Cfg, Report: c.Report, Err: c.Err, Attempts: c.Attempts}
	if math.IsInf(w.Report.ReconvergenceTime, 1) {
		w.Report.ReconvergenceTime = 0
		w.NeverRe = true
	}
	return json.Marshal(w)
}

// UnmarshalJSON inverts MarshalJSON.
func (c *CellResult) UnmarshalJSON(data []byte) error {
	var w cellResultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*c = CellResult{Key: w.Key, Cfg: w.Cfg, Report: w.Report, Err: w.Err, Attempts: w.Attempts}
	if w.NeverRe {
		c.Report.ReconvergenceTime = math.Inf(1)
	}
	return nil
}

// JobStatus is a job's lifecycle state. There is no "failed" terminal
// state for jobs: cells fail individually (CellResult.Err) and a job
// with failed cells still completes, carrying the per-cell errors.
type JobStatus string

const (
	// StatusRunning covers admission through the last cell; a daemon
	// restarting over the store re-enqueues every running job's missing
	// cells.
	StatusRunning JobStatus = "running"
	// StatusDone means every cell has a stored fact.
	StatusDone JobStatus = "done"
)

// JobRecord is a job's durable state. Spec is the submitted sweep spec,
// kept opaque here (the store does not know the daemon's spec schema);
// the job's cell list is not stored because it is a deterministic
// function of the spec — the daemon re-expands it on resume.
type JobRecord struct {
	ID     string          `json:"id"`
	Spec   json.RawMessage `json:"spec"`
	Status JobStatus       `json:"status"`
	Cells  int             `json:"cells"`
}

// Repository is the storage contract the job daemon schedules against.
// Implementations must make Put durable before returning (WAL fsyncs on
// commit) and must be safe for concurrent use.
type Repository interface {
	// PutCell stores one cell fact; re-putting a key overwrites (facts
	// for one key are identical by construction, so last-wins is safe).
	PutCell(CellResult) error
	// GetCell fetches a fact by content address.
	GetCell(Key) (CellResult, bool)
	// PutJob stores a job's current state (last write wins).
	PutJob(JobRecord) error
	// GetJob fetches a job by ID.
	GetJob(id string) (JobRecord, bool)
	// Jobs lists every job, sorted by ID.
	Jobs() []JobRecord
	// Sync forces everything written so far to stable storage.
	Sync() error
	// Close releases the repository; the data remains reopenable.
	Close() error
}
