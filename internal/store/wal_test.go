package store

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gcs/internal/sim"
)

func testCell(seed uint64) CellResult {
	cfg := sim.Config{N: 16, Seed: seed, Horizon: 1}
	return CellResult{
		Key: KeyOf(cfg),
		Cfg: cfg.WithDefaults(),
		Report: sim.SkewReport{
			MaxGlobalSkew: 0.01 * float64(seed), Bound: 1.5, Samples: int(seed),
		},
		Attempts: 1,
	}
}

func openTestWAL(t *testing.T, dir string, opts WALOptions) *WAL {
	t.Helper()
	w, err := OpenWAL(dir, opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

// firstSegment returns the path of the store's lowest-numbered segment.
func firstSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return matches[0]
}

// TestWALRoundTrip: puts survive close and reopen, for cells and jobs.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	c1, c2 := testCell(1), testCell(2)
	job := JobRecord{ID: "j1", Spec: json.RawMessage(`{"ns":[16]}`), Status: StatusRunning, Cells: 2}
	for _, err := range []error{w.PutCell(c1), w.PutCell(c2), w.PutJob(job)} {
		if err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	job.Status = StatusDone
	if err := w.PutJob(job); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r := openTestWAL(t, dir, WALOptions{})
	defer r.Close()
	for _, want := range []CellResult{c1, c2} {
		got, ok := r.GetCell(want.Key)
		if !ok {
			t.Fatalf("cell %v missing after reopen", want.Key)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cell round trip:\n got %+v\nwant %+v", got, want)
		}
	}
	jobs := r.Jobs()
	if len(jobs) != 1 || jobs[0].Status != StatusDone || jobs[0].Cells != 2 {
		t.Fatalf("job round trip: %+v", jobs)
	}
}

// TestWALNonFiniteReport: ReconvergenceTime = +Inf (a faulted cell that
// never re-converged) is a legal report value JSON numbers cannot
// carry; the record form must round-trip it exactly.
func TestWALNonFiniteReport(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	c := testCell(3)
	c.Report.ReconvergenceTime = math.Inf(1)
	if err := w.PutCell(c); err != nil {
		t.Fatalf("put: %v", err)
	}
	w.Close()
	r := openTestWAL(t, dir, WALOptions{})
	defer r.Close()
	got, ok := r.GetCell(c.Key)
	if !ok {
		t.Fatal("cell missing after reopen")
	}
	if !math.IsInf(got.Report.ReconvergenceTime, 1) {
		t.Fatalf("ReconvergenceTime round-tripped to %v, want +Inf", got.Report.ReconvergenceTime)
	}
}

// TestWALTornFinalRecord: a crash mid-append leaves a partial frame at
// the tail. Open must recover every complete record, truncate the torn
// tail on disk, and leave the store appendable.
func TestWALTornFinalRecord(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		"shortHeader":  func(b []byte) []byte { return append(b, 0x21, 0x07) },
		"shortPayload": func(b []byte) []byte { return append(b, 0x40, 0, 0, 0, 1, 2, 3, 4, 0xde, 0xad) },
		"absurdLength": func(b []byte) []byte {
			return append(b, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 0xde, 0xad, 0xbe, 0xef)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w := openTestWAL(t, dir, WALOptions{})
			c1, c2 := testCell(1), testCell(2)
			if err := w.PutCell(c1); err != nil {
				t.Fatalf("put: %v", err)
			}
			if err := w.PutCell(c2); err != nil {
				t.Fatalf("put: %v", err)
			}
			w.Close()

			seg := firstSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			r := openTestWAL(t, dir, WALOptions{NoAutoCompact: true})
			defer r.Close()
			if _, ok := r.GetCell(c1.Key); !ok {
				t.Fatal("intact record lost to torn-tail recovery")
			}
			if _, ok := r.GetCell(c2.Key); !ok {
				t.Fatal("intact record lost to torn-tail recovery")
			}
			if r.Stats().TruncatedBytes == 0 {
				t.Fatal("recovery did not report the torn tail")
			}
			if got, _ := os.ReadFile(seg); len(got) != len(data) {
				t.Fatalf("torn tail not truncated on disk: %d bytes, want %d", len(got), len(data))
			}
			// The store must stay writable and re-openable after recovery.
			c3 := testCell(3)
			if err := r.PutCell(c3); err != nil {
				t.Fatalf("put after recovery: %v", err)
			}
			r.Close()
			r2 := openTestWAL(t, dir, WALOptions{})
			defer r2.Close()
			if _, ok := r2.GetCell(c3.Key); !ok {
				t.Fatal("post-recovery write lost")
			}
		})
	}
}

// TestWALCRCMismatchMidSegment: a flipped byte in the middle of a
// segment invalidates that frame's CRC. Replay keeps everything before
// the corruption, drops the corrupt suffix of that segment (frame
// boundaries after a bad frame cannot be trusted), continues with later
// segments, and never panics.
func TestWALCRCMismatchMidSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: each record rotates into its own segment, so we can
	// corrupt a middle segment specifically.
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 1})
	cells := []CellResult{testCell(1), testCell(2), testCell(3)}
	for _, c := range cells {
		if err := w.PutCell(c); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	w.Close()
	segs, err := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v (err %v)", segs, err)
	}

	mid := segs[1]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTestWAL(t, dir, WALOptions{NoAutoCompact: true})
	defer r.Close()
	if _, ok := r.GetCell(cells[0].Key); !ok {
		t.Fatal("record before the corruption lost")
	}
	if _, ok := r.GetCell(cells[1].Key); ok {
		t.Fatal("corrupt record survived its CRC mismatch")
	}
	if _, ok := r.GetCell(cells[2].Key); !ok {
		t.Fatal("record in a later segment lost to earlier corruption")
	}
	if r.Stats().TruncatedBytes == 0 {
		t.Fatal("recovery did not report the corrupt bytes")
	}
}

// TestWALDuplicateRecord: the same cell put twice (a retry that raced a
// crash, or two jobs sharing a cell) replays to one consistent entry —
// last record wins — and compaction folds the duplicate out.
func TestWALDuplicateRecord(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	c := testCell(1)
	if err := w.PutCell(c); err != nil {
		t.Fatalf("put: %v", err)
	}
	c.Attempts = 3 // the retry's record supersedes the first
	if err := w.PutCell(c); err != nil {
		t.Fatalf("put: %v", err)
	}
	w.Close()

	r := openTestWAL(t, dir, WALOptions{NoAutoCompact: true})
	got, ok := r.GetCell(c.Key)
	if !ok {
		t.Fatal("cell missing after duplicate replay")
	}
	if got.Attempts != 3 {
		t.Fatalf("last record did not win: attempts %d", got.Attempts)
	}
	if r.Stats().Superseded == 0 {
		t.Fatal("duplicate not counted as superseded")
	}
	if err := r.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	r.Close()

	r2 := openTestWAL(t, dir, WALOptions{NoAutoCompact: true})
	defer r2.Close()
	st := r2.Stats()
	if st.Superseded != 0 || st.RecordsReplayed != 1 {
		t.Fatalf("compaction left duplicates: %+v", st)
	}
	if got, ok := r2.GetCell(c.Key); !ok || got.Attempts != 3 {
		t.Fatalf("compacted state wrong: %+v ok=%t", got, ok)
	}
}

// TestWALEmptySegmentFile: a zero-length segment (crash between segment
// creation and first append) is a clean, consistent store.
func TestWALEmptySegmentFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walSegPrefix+"00000000"+walSegSuffix), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w := openTestWAL(t, dir, WALOptions{})
	defer w.Close()
	c := testCell(1)
	if err := w.PutCell(c); err != nil {
		t.Fatalf("put into recovered empty store: %v", err)
	}
	if _, ok := w.GetCell(c.Key); !ok {
		t.Fatal("cell missing")
	}
}

// TestWALRotationAndCompaction: the active segment rotates at the size
// cap; compaction folds everything back to one segment with identical
// state; reopen auto-compacts a store whose replay saw superseded
// records.
func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 512})
	var cells []CellResult
	for seed := uint64(1); seed <= 12; seed++ {
		c := testCell(seed)
		cells = append(cells, c)
		if err := w.PutCell(c); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	job := JobRecord{ID: "j", Spec: json.RawMessage(`{}`), Status: StatusRunning, Cells: 12}
	if err := w.PutJob(job); err != nil {
		t.Fatalf("put: %v", err)
	}
	job.Status = StatusDone
	if err := w.PutJob(job); err != nil {
		t.Fatalf("put: %v", err)
	}
	if w.Stats().Segments < 2 {
		t.Fatalf("no rotation after %d records in 512-byte segments", len(cells)+2)
	}
	before, _ := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	if err := w.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	if len(segs) >= len(before) {
		t.Fatalf("compaction kept %d segments (was %d)", len(segs), len(before))
	}
	for _, c := range cells {
		if got, ok := w.GetCell(c.Key); !ok || !reflect.DeepEqual(got, c) {
			t.Fatalf("state diverged after compaction: %+v ok=%t", got, ok)
		}
	}
	if j, ok := w.GetJob("j"); !ok || j.Status != StatusDone {
		t.Fatalf("job diverged after compaction: %+v ok=%t", j, ok)
	}
	w.Close()

	// A fresh duplicate makes reopen auto-compact.
	w2 := openTestWAL(t, dir, WALOptions{})
	if err := w2.PutCell(cells[0]); err != nil {
		t.Fatalf("put: %v", err)
	}
	w2.Close()
	w3 := openTestWAL(t, dir, WALOptions{})
	defer w3.Close()
	if w3.Stats().Compactions == 0 {
		t.Fatal("reopen over superseded records did not auto-compact")
	}
	for _, c := range cells {
		if _, ok := w3.GetCell(c.Key); !ok {
			t.Fatal("auto-compaction lost a cell")
		}
	}
}

// TestKeyContentAddress: the key is a pure function of the physics —
// defaults and worker counts never split it, seeds always do.
func TestKeyContentAddress(t *testing.T) {
	base := sim.Config{N: 32, Seed: 7, Parallel: true, Shards: 4}
	if KeyOf(base) != KeyOf(base.WithDefaults()) {
		t.Fatal("defaulting changed the content address")
	}
	workers := base
	workers.Workers = 8
	if KeyOf(base) != KeyOf(workers) {
		t.Fatal("worker count changed the content address")
	}
	reseeded := base
	reseeded.Seed = 8
	if KeyOf(base) == KeyOf(reseeded) {
		t.Fatal("different seeds share a content address")
	}
}

// TestKeyHexRoundTrip: the textual form round-trips and rejects junk.
func TestKeyHexRoundTrip(t *testing.T) {
	k := KeyOf(sim.Config{N: 8})
	text, err := k.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Key
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Fatal("key hex round trip diverged")
	}
	if err := back.UnmarshalText([]byte("nope")); err == nil {
		t.Fatal("short junk accepted as a key")
	}
}
