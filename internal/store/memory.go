package store

import "sync"

// Memory is the Repository contract without durability: the same
// last-write-wins semantics over in-process maps. Tests and embedded
// single-run sweeps use it where a WAL directory would be overhead.
type Memory struct {
	mu    sync.Mutex
	cells map[Key]CellResult
	jobs  map[string]JobRecord
}

// NewMemory returns an empty in-memory repository.
func NewMemory() *Memory {
	return &Memory{cells: map[Key]CellResult{}, jobs: map[string]JobRecord{}}
}

// PutCell implements Repository.
func (m *Memory) PutCell(c CellResult) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[c.Key] = c
	return nil
}

// GetCell implements Repository.
func (m *Memory) GetCell(k Key) (CellResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[k]
	return c, ok
}

// PutJob implements Repository.
func (m *Memory) PutJob(j JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.ID] = j
	return nil
}

// GetJob implements Repository.
func (m *Memory) GetJob(id string) (JobRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs implements Repository.
func (m *Memory) Jobs() []JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedJobs(m.jobs)
}

// Sync implements Repository (no-op).
func (m *Memory) Sync() error { return nil }

// Close implements Repository (no-op).
func (m *Memory) Close() error { return nil }
