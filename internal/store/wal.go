package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// WAL is the durable Repository: an append-only write-ahead log of
// length-prefixed, CRC-checked JSON records under one directory, with
// an in-memory index rebuilt by replay on open.
//
// Frame layout, little-endian:
//
//	[u32 payload length][u32 CRC-32C of payload][payload JSON]
//
// Durability contract: every Put appends one frame and fsyncs the
// segment before returning, so an acknowledged write survives kill -9
// at any instant. Recovery contract: open replays segments in order; a
// torn or corrupt frame (short header, absurd length, CRC mismatch,
// unparseable JSON — all indistinguishable from a crash mid-append)
// truncates its segment at the last good frame and replay continues
// with the next segment. Records are independent facts, so dropping a
// suffix is always consistent — at worst a cell re-runs.
//
// The active segment rotates at SegmentBytes; Compact rewrites the live
// state (every cell fact, each job's latest record) into a fresh
// segment and removes the old ones. Open compacts automatically when
// replay saw superseded records (duplicate cell puts from retries, job
// status rewrites) or recovered garbage.
type WAL struct {
	dir      string
	segBytes int64

	mu         sync.Mutex
	active     *os.File
	activeIdx  int
	activeSize int64
	cells      map[Key]CellResult
	jobs       map[string]JobRecord
	stats      WALStats
}

// WALStats describes what open and subsequent writes observed, for
// tests and operational logging.
type WALStats struct {
	// Segments is the current on-disk segment count.
	Segments int
	// RecordsReplayed counts frames applied during Open.
	RecordsReplayed int
	// TruncatedBytes counts bytes discarded by torn-tail/corruption
	// recovery during Open.
	TruncatedBytes int64
	// Superseded counts replayed or written records that overwrote an
	// earlier record (retry duplicates, job status updates).
	Superseded int
	// Compactions counts Compact runs (including the automatic one).
	Compactions int
}

// WALOptions tune a WAL; the zero value is production defaults.
type WALOptions struct {
	// SegmentBytes rotates the active segment past this size
	// (default 4 MiB).
	SegmentBytes int64
	// NoAutoCompact disables the automatic compaction on open that
	// normally runs when replay found superseded records or recovered
	// garbage; recovery tests use it to inspect the un-compacted state.
	NoAutoCompact bool
}

const (
	walFrameHeader = 8
	// walMaxRecord bounds a frame's declared payload length; anything
	// larger is treated as corruption (a cell record is a few KB).
	walMaxRecord = 16 << 20
	walSegPrefix = "wal-"
	walSegSuffix = ".log"
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walRecord is the envelope every frame carries.
type walRecord struct {
	Cell *CellResult `json:"cell,omitempty"`
	Job  *JobRecord  `json:"job,omitempty"`
}

// OpenWAL opens (creating if needed) the store at dir and replays it.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &WAL{
		dir:      dir,
		segBytes: opts.SegmentBytes,
		cells:    map[Key]CellResult{},
		jobs:     map[string]JobRecord{},
	}
	segs, err := w.segments()
	if err != nil {
		return nil, err
	}
	for _, idx := range segs {
		if err := w.replaySegment(idx); err != nil {
			return nil, err
		}
	}
	w.stats.Segments = len(segs)
	last := 0
	if len(segs) > 0 {
		last = segs[len(segs)-1]
	} else {
		w.stats.Segments = 1
	}
	if err := w.openActive(last); err != nil {
		return nil, err
	}
	if !opts.NoAutoCompact && (w.stats.Superseded > 0 || w.stats.TruncatedBytes > 0) {
		if err := w.compactLocked(); err != nil {
			w.active.Close()
			return nil, err
		}
	}
	return w, nil
}

// segments returns the sorted segment indices present in the directory.
func (w *WAL) segments() ([]int, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		var idx int
		if _, err := fmt.Sscanf(name, walSegPrefix+"%08d"+walSegSuffix, &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

func (w *WAL) segPath(idx int) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%08d%s", walSegPrefix, idx, walSegSuffix))
}

// replaySegment applies one segment's frames to the in-memory state,
// truncating the file at the first corrupt or torn frame.
func (w *WAL) replaySegment(idx int) error {
	path := w.segPath(idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return nil // clean end (an empty segment lands here immediately)
		}
		if len(rest) < walFrameHeader {
			break // torn header
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length > walMaxRecord || int(length) > len(rest)-walFrameHeader {
			break // absurd or torn payload
		}
		payload := rest[walFrameHeader : walFrameHeader+int(length)]
		if crc32.Checksum(payload, walCRC) != crc {
			break // CRC mismatch
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // framed but unparseable: treat as corruption
		}
		w.apply(rec)
		w.stats.RecordsReplayed++
		off += walFrameHeader + int(length)
	}
	// Torn tail or mid-segment corruption: drop the suffix on disk so
	// the next replay (and any append to this segment) starts clean.
	w.stats.TruncatedBytes += int64(len(data) - off)
	if err := os.Truncate(path, int64(off)); err != nil {
		return fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
	}
	return nil
}

// apply folds one record into the index, last record wins.
func (w *WAL) apply(rec walRecord) {
	if rec.Cell != nil {
		if _, dup := w.cells[rec.Cell.Key]; dup {
			w.stats.Superseded++
		}
		w.cells[rec.Cell.Key] = *rec.Cell
	}
	if rec.Job != nil {
		if _, dup := w.jobs[rec.Job.ID]; dup {
			w.stats.Superseded++
		}
		w.jobs[rec.Job.ID] = *rec.Job
	}
}

// openActive opens segment idx for appending as the active segment.
func (w *WAL) openActive(idx int) error {
	f, err := os.OpenFile(w.segPath(idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	w.active = f
	w.activeIdx = idx
	w.activeSize = size
	return nil
}

// append frames, writes, and fsyncs one record; rotates first when the
// active segment is full. Callers hold w.mu.
func (w *WAL) append(rec walRecord) error {
	if w.active == nil {
		return fmt.Errorf("store: WAL is closed")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	if w.activeSize >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walCRC))
	copy(frame[walFrameHeader:], payload)
	if _, err := w.active.Write(frame); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.activeSize += int64(len(frame))
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (w *WAL) rotateLocked() error {
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.openActive(w.activeIdx + 1); err != nil {
		return err
	}
	w.stats.Segments++
	return w.syncDir()
}

// syncDir fsyncs the store directory so segment creation/removal itself
// is durable.
func (w *WAL) syncDir() error {
	d, err := os.Open(w.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// PutCell implements Repository. Last write wins; facts for one key are
// identical by construction, so a retry duplicate is harmless and is
// folded out by the next compaction.
func (w *WAL) PutCell(c CellResult) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.append(walRecord{Cell: &c}); err != nil {
		return err
	}
	if _, dup := w.cells[c.Key]; dup {
		w.stats.Superseded++
	}
	w.cells[c.Key] = c
	return nil
}

// GetCell implements Repository.
func (w *WAL) GetCell(k Key) (CellResult, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	c, ok := w.cells[k]
	return c, ok
}

// PutJob implements Repository.
func (w *WAL) PutJob(j JobRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.append(walRecord{Job: &j}); err != nil {
		return err
	}
	if _, dup := w.jobs[j.ID]; dup {
		w.stats.Superseded++
	}
	w.jobs[j.ID] = j
	return nil
}

// GetJob implements Repository.
func (w *WAL) GetJob(id string) (JobRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	j, ok := w.jobs[id]
	return j, ok
}

// Jobs implements Repository: every job, sorted by ID (map iteration
// order must never surface).
func (w *WAL) Jobs() []JobRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	return sortedJobs(w.jobs)
}

// Sync implements Repository. Puts already fsync on commit, so this is
// a final barrier for drain paths.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close implements Repository.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil {
		return nil
	}
	err := w.active.Sync()
	if cerr := w.active.Close(); err == nil {
		err = cerr
	}
	w.active = nil
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Compact rewrites the live state into a fresh segment chain (rotating
// at the size cap as usual) and removes the old segments, folding out
// superseded records and recovered garbage. The rewrite is ordered
// (jobs by ID, then cells by key) so compacted segments are
// byte-deterministic functions of the state.
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.compactLocked()
}

func (w *WAL) compactLocked() error {
	if w.active == nil {
		return fmt.Errorf("store: WAL is closed")
	}
	old, err := w.segments()
	if err != nil {
		return err
	}
	first := w.activeIdx + 1
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.active = nil
	if err := w.openActive(first); err != nil {
		return err
	}
	for _, j := range sortedJobs(w.jobs) {
		j := j
		if err := w.append(walRecord{Job: &j}); err != nil {
			return err
		}
	}
	keys := make([]Key, 0, len(w.cells))
	for k := range w.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return string(keys[i][:]) < string(keys[j][:]) })
	for _, k := range keys {
		c := w.cells[k]
		if err := w.append(walRecord{Cell: &c}); err != nil {
			return err
		}
	}
	for _, idx := range old {
		if idx >= first {
			continue
		}
		if err := os.Remove(w.segPath(idx)); err != nil {
			return fmt.Errorf("store: removing compacted segment: %w", err)
		}
	}
	if err := w.syncDir(); err != nil {
		return err
	}
	w.stats.Segments = w.activeIdx - first + 1
	w.stats.Superseded = 0
	w.stats.TruncatedBytes = 0
	w.stats.Compactions++
	return nil
}

// Stats returns a snapshot of the WAL's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// sortedJobs flattens a job map in ID order.
func sortedJobs(m map[string]JobRecord) []JobRecord {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]JobRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, m[id])
	}
	return out
}
