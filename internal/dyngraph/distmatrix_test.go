package dyngraph

import (
	"testing"
)

// TestDistanceMatrixMatchesDistances cross-checks the multi-source BFS
// against the single-source reference on a static graph.
func TestDistanceMatrixMatchesDistances(t *testing.T) {
	n := 12
	edges := Ring(n)
	g := NewDynamic(n, edges)
	dm := NewDistanceMatrix(n)
	if !dm.Update(g) {
		t.Fatal("first Update did not recompute")
	}
	for src := 0; src < n; src++ {
		want := Distances(n, edges, src)
		for v := 0; v < n; v++ {
			if got := dm.Dist(src, v); got != want[v] {
				t.Fatalf("dist(%d,%d) = %d, want %d", src, v, got, want[v])
			}
		}
	}
	if dm.MaxFinite() != n/2 {
		t.Fatalf("ring diameter = %d, want %d", dm.MaxFinite(), n/2)
	}
}

// TestDistanceMatrixInvalidationAcrossEpochs pins the laziness contract:
// Update recomputes exactly once per topology-change epoch and tracks
// the current edge set across adds and removes.
func TestDistanceMatrixInvalidationAcrossEpochs(t *testing.T) {
	g := NewDynamic(6, Line(6))
	dm := NewDistanceMatrix(6)
	dm.Update(g)
	if dm.Dist(0, 5) != 5 {
		t.Fatalf("line dist(0,5) = %d, want 5", dm.Dist(0, 5))
	}
	// Unchanged topology: revalidation is free.
	for i := 0; i < 3; i++ {
		if dm.Update(g) {
			t.Fatal("Update recomputed with no topology change")
		}
	}
	if dm.Recomputes() != 1 {
		t.Fatalf("recomputes = %d, want 1", dm.Recomputes())
	}

	// A shortcut edge must shrink the distance after one revalidation.
	g.Add(1, E(0, 5))
	if !dm.Update(g) {
		t.Fatal("Update ignored an epoch change")
	}
	if dm.Dist(0, 5) != 1 {
		t.Fatalf("after shortcut, dist(0,5) = %d, want 1", dm.Dist(0, 5))
	}

	// Disconnecting restores -1 for cross-component pairs.
	g.Remove(2, E(0, 5))
	g.Remove(2, E(2, 3))
	dm.Update(g)
	if dm.Dist(0, 5) != -1 {
		t.Fatalf("disconnected dist(0,5) = %d, want -1", dm.Dist(0, 5))
	}
	if dm.Dist(0, 2) != 2 || dm.Dist(3, 5) != 2 {
		t.Fatal("intra-component distances wrong after split")
	}
	// A no-op Remove must not bump the epoch or force a recompute.
	before := g.Epoch()
	g.Remove(3, E(0, 5))
	if g.Epoch() != before {
		t.Fatal("no-op Remove changed the epoch")
	}
	if dm.Update(g) {
		t.Fatal("Update recomputed after a no-op Remove")
	}
}

// TestDistanceMatrixSteadyStateDoesNotAllocate pins both Update paths:
// the epoch-check fast path and the full BFS recompute reuse the
// matrix's buffers.
func TestDistanceMatrixSteadyStateDoesNotAllocate(t *testing.T) {
	n := 16
	g := NewDynamic(n, Ring(n))
	dm := NewDistanceMatrix(n)
	dm.Update(g)
	if allocs := testing.AllocsPerRun(100, func() { dm.Update(g) }); allocs > 0 {
		t.Errorf("no-change Update allocated %v objects/op", allocs)
	}
	// Force real recomputes by alternating an extra edge. The graph's own
	// Add/Remove bookkeeping (interval history) may allocate; the matrix
	// recompute itself must not, which the budget of <1 alloc/op pins
	// (history appends amortize to ~0 with slice reuse after the first
	// few toggles).
	e := E(0, 8)
	g.Add(10, e)
	dm.Update(g)
	g.Remove(11, e)
	dm.Update(g)
	base := testing.AllocsPerRun(50, func() {
		g.Add(g.lastT, e)
		g.Remove(g.lastT, e)
	})
	withUpdate := testing.AllocsPerRun(50, func() {
		g.Add(g.lastT, e)
		dm.Update(g)
		g.Remove(g.lastT, e)
		dm.Update(g)
	})
	if extra := withUpdate - base; extra > 0 {
		t.Errorf("BFS recompute allocated %v objects/op beyond graph bookkeeping", extra)
	}
}
