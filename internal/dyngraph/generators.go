package dyngraph

import (
	"fmt"

	"gcs/internal/des"
)

// Topology generators. Each returns the edge list of a classic static
// topology; scenarios use them as initial edge sets E_0 or as churn
// backbones.

// Line returns the path 0-1-2-...-(n-1), the topology of the paper's
// lower-bound chains and of the gradient-property experiments.
func Line(n int) []Edge {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, E(i, i+1))
	}
	return edges
}

// Ring returns the cycle over n nodes (n >= 3).
func Ring(n int) []Edge {
	if n < 3 {
		panic("dyngraph: ring needs n >= 3")
	}
	edges := Line(n)
	return append(edges, E(0, n-1))
}

// Star returns edges from hub 0 to every other node.
func Star(n int) []Edge {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, E(0, i))
	}
	return edges
}

// Complete returns all n(n-1)/2 edges.
func Complete(n int) []Edge {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return edges
}

// Grid returns a w x h grid graph; node (x, y) has index y*w + x.
func Grid(w, h int) []Edge {
	if w < 1 || h < 1 {
		panic("dyngraph: grid dimensions must be positive")
	}
	var edges []Edge
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, E(id(x, y), id(x+1, y)))
			}
			if y+1 < h {
				edges = append(edges, E(id(x, y), id(x, y+1)))
			}
		}
	}
	return edges
}

// RandomConnected returns a connected Erdos-Renyi-style graph: a random
// spanning tree (uniform attachment) plus each remaining potential edge
// independently with probability p.
func RandomConnected(n int, p float64, r *des.Rand) []Edge {
	if n < 1 {
		panic("dyngraph: n must be positive")
	}
	have := map[Edge]bool{}
	var edges []Edge
	// Random tree: attach node i to a uniformly random earlier node.
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		e := E(perm[i], perm[r.Intn(i)])
		have[e] = true
		edges = append(edges, e)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			e := Edge{U: u, V: v}
			if !have[e] && r.Bool(p) {
				have[e] = true
				edges = append(edges, e)
			}
		}
	}
	return edges
}

// TwoChains builds the Theorem 4.1 / Figure 1 network: two parallel
// chains A and B sharing endpoints w0 = node 0 and wn = node n-1.
//
// Chain A consists of nodes 0, A1..A(ceilA), n-1 and chain B of nodes 0,
// B1..B(ceilB), n-1, where ceilA = floor(n/2)-1 and ceilB = ceil(n/2)-1,
// giving n nodes total. It returns the edge list plus index helpers: the
// i-th interior node of chain A is AIndex(i) for i in [1, lenA], and
// symmetric for B; AIndex(0) = BIndex(0) = 0 and AIndex(lenA+1) =
// BIndex(lenB+1) = n-1.
type TwoChains struct {
	N          int
	Edges      []Edge
	lenA, lenB int // number of interior nodes per chain
}

// NewTwoChains constructs the Figure 1(a) topology over n >= 4 nodes.
func NewTwoChains(n int) *TwoChains {
	if n < 4 {
		panic("dyngraph: two-chains needs n >= 4")
	}
	lenA := n/2 - 1     // |I_A| = floor(n/2) - 1
	lenB := (n+1)/2 - 1 // |I_B| = ceil(n/2) - 1
	tc := &TwoChains{N: n, lenA: lenA, lenB: lenB}
	var edges []Edge
	// Chain A path: 0, A1..AlenA, n-1.
	prev := 0
	for i := 1; i <= lenA; i++ {
		edges = append(edges, E(prev, tc.AIndex(i)))
		prev = tc.AIndex(i)
	}
	edges = append(edges, E(prev, n-1))
	// Chain B path: 0, B1..BlenB, n-1.
	prev = 0
	for i := 1; i <= lenB; i++ {
		edges = append(edges, E(prev, tc.BIndex(i)))
		prev = tc.BIndex(i)
	}
	edges = append(edges, E(prev, n-1))
	tc.Edges = edges
	return tc
}

// LenA returns the number of interior nodes on chain A.
func (tc *TwoChains) LenA() int { return tc.lenA }

// LenB returns the number of interior nodes on chain B.
func (tc *TwoChains) LenB() int { return tc.lenB }

// AIndex maps chain-A position i (0 = w0, lenA+1 = wn) to a node index.
// Interior A nodes are numbered 1..lenA.
func (tc *TwoChains) AIndex(i int) int {
	switch {
	case i == 0:
		return 0
	case i >= 1 && i <= tc.lenA:
		return i
	case i == tc.lenA+1:
		return tc.N - 1
	}
	panic(fmt.Sprintf("dyngraph: chain A position %d out of range", i))
}

// BIndex maps chain-B position i (0 = w0, lenB+1 = wn) to a node index.
// Interior B nodes are numbered lenA+1..lenA+lenB.
func (tc *TwoChains) BIndex(i int) int {
	switch {
	case i == 0:
		return 0
	case i >= 1 && i <= tc.lenB:
		return tc.lenA + i
	case i == tc.lenB+1:
		return tc.N - 1
	}
	panic(fmt.Sprintf("dyngraph: chain B position %d out of range", i))
}

// APath returns the node indices along chain A from w0 to wn.
func (tc *TwoChains) APath() []int {
	out := make([]int, 0, tc.lenA+2)
	for i := 0; i <= tc.lenA+1; i++ {
		out = append(out, tc.AIndex(i))
	}
	return out
}

// BPath returns the node indices along chain B from w0 to wn.
func (tc *TwoChains) BPath() []int {
	out := make([]int, 0, tc.lenB+2)
	for i := 0; i <= tc.lenB+1; i++ {
		out = append(out, tc.BIndex(i))
	}
	return out
}
