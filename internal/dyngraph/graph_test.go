package dyngraph

import (
	"reflect"
	"testing"
)

func TestNeighborsTrackAddsAndRemoves(t *testing.T) {
	g := NewDynamic(5, []Edge{E(0, 2), E(0, 1)})
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Neighbors(0) = %v, want [1 2]", got)
	}
	g.Add(1, E(0, 4))
	g.Add(1, E(3, 4))
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Fatalf("Neighbors(0) after add = %v, want [1 2 4]", got)
	}
	if got := g.Degree(0); got != 3 {
		t.Fatalf("Degree(0) = %d, want 3", got)
	}
	g.Remove(2, E(0, 2))
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("Neighbors(0) after remove = %v, want [1 4]", got)
	}
	if got := g.Degree(2); got != 0 {
		t.Fatalf("Degree(2) = %d, want 0", got)
	}
	// Re-adding the removed edge restores adjacency.
	g.Add(3, E(0, 2))
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Neighbors(2) after re-add = %v, want [0]", got)
	}
}

func TestHistorySurvivesPresenceDeletion(t *testing.T) {
	// Remove deletes the presence entry; the interval history must still
	// answer ExistsAt/ExistsThroughout for the past.
	g := NewDynamic(3, []Edge{E(0, 1)})
	g.Remove(5, E(0, 1))
	if g.Present(E(0, 1)) {
		t.Fatal("edge still present after removal")
	}
	if !g.ExistsAt(E(0, 1), 3) {
		t.Fatal("history lost: edge existed at t=3")
	}
	if g.ExistsAt(E(0, 1), 5) {
		t.Fatal("half-open interval violated: edge removed at t=5 is not in E(5)")
	}
	if !g.ExistsThroughout(E(0, 1), 0, 4) {
		t.Fatal("edge existed throughout [0,4]")
	}
	adds, removes := g.Stats()
	if adds != 0 || removes != 1 {
		t.Fatalf("stats = (%d, %d), want (0, 1)", adds, removes)
	}
}

func TestCurrentEdgesAfterChurn(t *testing.T) {
	g := NewDynamic(4, Line(4))
	g.Remove(1, E(1, 2))
	g.Add(2, E(0, 3))
	want := []Edge{{0, 1}, {0, 3}, {2, 3}}
	if got := g.CurrentEdges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CurrentEdges = %v, want %v", got, want)
	}
}

func TestAppendNeighborsAscendingAndReused(t *testing.T) {
	g := NewDynamic(6, []Edge{E(0, 5), E(0, 1), E(0, 3)})
	buf := make([]int, 0, 8)
	buf = g.AppendNeighbors(0, buf)
	if !reflect.DeepEqual(buf, []int{1, 3, 5}) {
		t.Fatalf("AppendNeighbors = %v, want ascending [1 3 5]", buf)
	}
	g.Add(1, E(0, 2))
	g.Remove(2, E(0, 5))
	buf = g.AppendNeighbors(0, buf[:0])
	if !reflect.DeepEqual(buf, []int{1, 2, 3}) {
		t.Fatalf("AppendNeighbors after churn = %v, want [1 2 3]", buf)
	}
}

func TestRangeCurrentEdgesVisitsExactlyPresentEdges(t *testing.T) {
	g := NewDynamic(4, Line(4))
	g.Remove(1, E(1, 2))
	g.Add(2, E(0, 3))
	seen := map[Edge]int{}
	g.RangeCurrentEdges(func(e Edge) { seen[e]++ })
	want := []Edge{{0, 1}, {0, 3}, {2, 3}}
	if len(seen) != len(want) {
		t.Fatalf("visited %v, want %v", seen, want)
	}
	for _, e := range want {
		if seen[e] != 1 {
			t.Fatalf("edge %v visited %d times", e, seen[e])
		}
	}
}
