package dyngraph

import (
	"gcs/internal/des"
)

// Churn processes drive edge add/remove events on a Dynamic graph. Each
// is designed so that the resulting execution remains T-interval
// connected (Definition 3.1) for an appropriate T, which the tests
// verify with Dynamic.VerifyIntervalConnectivity.

// Churner installs topology-change events on an engine.
type Churner interface {
	Install(en *des.Engine, g *Dynamic)
}

// VolatileEdges churns a candidate edge pool around a static backbone:
// each candidate independently alternates between present (exponential
// mean Lifetime) and absent (exponential mean Absence). Because the
// backbone never changes, the graph is T-interval connected for every T
// as long as the backbone is connected.
type VolatileEdges struct {
	Candidates []Edge
	Lifetime   float64 // mean present duration
	Absence    float64 // mean absent duration
	Rand       *des.Rand
	// StartPresent adds every candidate at time 0.
	StartPresent bool
}

// Install implements Churner.
func (c VolatileEdges) Install(en *des.Engine, g *Dynamic) {
	if c.Lifetime <= 0 || c.Absence <= 0 {
		panic("dyngraph: VolatileEdges durations must be positive")
	}
	r := c.Rand
	if r == nil {
		r = des.NewRand(1)
	}
	for i, e := range c.Candidates {
		e := e
		rr := r.Fork(uint64(i))
		var appear, vanish func()
		appear = func() {
			g.Add(en.Now(), e)
			en.ScheduleAfter(rr.Exp(c.Lifetime), "churn.remove", vanish)
		}
		vanish = func() {
			g.Remove(en.Now(), e)
			en.ScheduleAfter(rr.Exp(c.Absence), "churn.add", appear)
		}
		if c.StartPresent || g.Present(e) {
			if !g.Present(e) {
				g.Add(0, e)
			}
			en.ScheduleAfter(rr.Exp(c.Lifetime), "churn.remove", vanish)
		} else {
			en.ScheduleAfter(rr.Exp(c.Absence), "churn.add", appear)
		}
	}
}

// RotatingStar cycles the network through star topologies with changing
// hubs: every Period, the star centered at the next hub is added, and
// Overlap later the previous star is removed. At every instant at least
// one complete star exists, and any window of length >= Period contains
// an interval where a single star spans all nodes, so the execution is
// Period-interval connected. This is a maximally dynamic pattern: every
// edge's endpoints change every Period.
type RotatingStar struct {
	Period  float64
	Overlap float64 // how long consecutive stars coexist; 0 < Overlap < Period
	// Hubs optionally fixes the hub sequence; default cycles 0..n-1.
	Hubs []int
}

// Install implements Churner. The initial graph should contain the star
// of the first hub (use Star(n) with hub 0, or leave empty and the
// churner adds it at time 0).
func (c RotatingStar) Install(en *des.Engine, g *Dynamic) {
	if c.Period <= 0 || c.Overlap <= 0 || c.Overlap >= c.Period {
		panic("dyngraph: RotatingStar needs 0 < Overlap < Period")
	}
	n := g.N()
	hubAt := func(k int) int {
		if len(c.Hubs) > 0 {
			return c.Hubs[k%len(c.Hubs)]
		}
		return k % n
	}
	addStar := func(hub int) {
		for v := 0; v < n; v++ {
			if v != hub {
				g.Add(en.Now(), E(hub, v))
			}
		}
	}
	removeStar := func(hub, keepHub int) {
		for v := 0; v < n; v++ {
			if v != hub {
				e := E(hub, v)
				// Do not remove edges shared with the star we keep.
				if e.Has(keepHub) {
					continue
				}
				g.Remove(en.Now(), e)
			}
		}
	}
	k := 0
	addStar(hubAt(0))
	var rotate func()
	rotate = func() {
		old := hubAt(k)
		k++
		next := hubAt(k)
		addStar(next)
		en.ScheduleAfter(c.Overlap, "churn.star.remove", func() {
			removeStar(old, next)
		})
		en.ScheduleAfter(c.Period, "churn.star.rotate", rotate)
	}
	en.ScheduleAfter(c.Period, "churn.star.rotate", rotate)
}

// AlternatingTrees alternates between two spanning structures with
// overlap: TreeA is present during even phases, TreeB during odd phases,
// and both during the Overlap at each transition. Any window of length >=
// Period+Overlap fully contains one tree, so the execution is
// (Period+Overlap)-interval connected while being minimally connected in
// between — the worst legal case for the Lemma 6.8 max-propagation bound.
type AlternatingTrees struct {
	TreeA, TreeB []Edge
	Period       float64
	Overlap      float64
}

// Install implements Churner. The initial graph should contain TreeA (or
// be empty; TreeA is added at time 0 if absent).
func (c AlternatingTrees) Install(en *des.Engine, g *Dynamic) {
	if c.Period <= 0 || c.Overlap <= 0 {
		panic("dyngraph: AlternatingTrees needs positive Period and Overlap")
	}
	inB := make(map[Edge]bool, len(c.TreeB))
	for _, e := range c.TreeB {
		inB[e] = true
	}
	inA := make(map[Edge]bool, len(c.TreeA))
	for _, e := range c.TreeA {
		inA[e] = true
	}
	addAll := func(es []Edge) {
		for _, e := range es {
			g.Add(en.Now(), e)
		}
	}
	removeUnless := func(es []Edge, keep map[Edge]bool) {
		for _, e := range es {
			if !keep[e] {
				g.Remove(en.Now(), e)
			}
		}
	}
	addAll(c.TreeA)
	phaseA := true
	var flip func()
	flip = func() {
		if phaseA {
			addAll(c.TreeB)
			en.ScheduleAfter(c.Overlap, "churn.trees.removeA", func() {
				removeUnless(c.TreeA, inB)
			})
		} else {
			addAll(c.TreeA)
			en.ScheduleAfter(c.Overlap, "churn.trees.removeB", func() {
				removeUnless(c.TreeB, inA)
			})
		}
		phaseA = !phaseA
		en.ScheduleAfter(c.Period, "churn.trees.flip", flip)
	}
	en.ScheduleAfter(c.Period, "churn.trees.flip", flip)
}

// ScriptedChange is a single scheduled topology event.
type ScriptedChange struct {
	At     float64
	E      Edge
	Remove bool
}

// Script replays an explicit list of topology changes; used by the
// lower-bound scenario (new edges appear at time T1) and by tests.
type Script struct {
	Changes []ScriptedChange
}

// Install implements Churner.
func (c Script) Install(en *des.Engine, g *Dynamic) {
	for _, ch := range c.Changes {
		ch := ch
		en.Schedule(ch.At, "churn.script", func() {
			if ch.Remove {
				g.Remove(en.Now(), ch.E)
			} else {
				g.Add(en.Now(), ch.E)
			}
		})
	}
}
