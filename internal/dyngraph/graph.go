// Package dyngraph models the paper's dynamic network graph (Section
// 3.2): a fixed node set V = {0..n-1} over which undirected edges appear
// and disappear arbitrarily, subject to the T-interval connectivity
// constraint (Definition 3.1). The package records the full edge history
// of an execution so that interval connectivity and "edge exists
// throughout [t1,t2]" queries are exact, and notifies subscribers (the
// transport layer) of topology events as they happen.
package dyngraph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected potential edge {U, V} with U < V (an element of
// the paper's V^(2)).
type Edge struct {
	U, V int
}

// E returns the canonical Edge for the unordered pair {u, v}. It panics
// if u == v; the model has no self-loops.
func E(u, v int) Edge {
	if u == v {
		panic(fmt.Sprintf("dyngraph: self-loop at node %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("dyngraph: node %d not an endpoint of %v", x, e))
}

// Has reports whether x is an endpoint of e.
func (e Edge) Has(x int) bool { return e.U == x || e.V == x }

// String renders the edge as its unordered pair.
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// Interval is a half-open presence interval [Start, End). End is +Inf
// while the edge is still present. The half-open convention matches the
// paper's definition of E(t): an edge removed exactly at time t is not in
// E(t), while an edge added at time t is.
type Interval struct {
	Start, End float64
}

// Contains reports whether t is in [Start, End).
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// Covers reports whether [t1, t2] is fully inside [Start, End): the edge
// exists throughout [t1, t2] per the paper (present at t1 and not removed
// at any point of [t1, t2], inclusive).
func (iv Interval) Covers(t1, t2 float64) bool { return iv.Start <= t1 && t2 < iv.End }

// Subscriber receives topology change notifications at the instant they
// occur (the add/remove events of the model, not the delayed discover
// events — those are the transport layer's job).
type Subscriber interface {
	EdgeAdded(t float64, e Edge)
	EdgeRemoved(t float64, e Edge)
}

// Dynamic is the evolving graph of one execution. Add and Remove must be
// called with nondecreasing times (they are driven by simulation events).
type Dynamic struct {
	n       int
	present map[Edge]bool
	hist    map[Edge][]Interval
	// adj mirrors present as per-node sorted neighbor slices, so that
	// Neighbors and Degree cost O(deg) instead of scanning every edge
	// ever seen, and AppendNeighbors yields a deterministic ascending
	// order without sorting or allocating.
	adj   [][]int
	subs  []Subscriber
	lastT float64
	// counts for reporting
	adds, removes int
	// epoch increments on every effective Add/Remove, so consumers that
	// derive state from the current edge set (e.g. DistanceMatrix) can
	// cache it and revalidate with one integer compare.
	epoch uint64
}

// NewDynamic creates a dynamic graph over n nodes with an initial edge
// set (the paper's E_0) present from time 0.
func NewDynamic(n int, initial []Edge) *Dynamic {
	if n < 1 {
		panic("dyngraph: need at least one node")
	}
	g := &Dynamic{
		n:       n,
		present: make(map[Edge]bool),
		hist:    make(map[Edge][]Interval),
		adj:     make([][]int, n),
	}
	for _, e := range initial {
		g.check(e)
		if g.present[e] {
			continue
		}
		g.present[e] = true
		g.linkAdj(e)
		g.hist[e] = append(g.hist[e], Interval{Start: 0, End: math.Inf(1)})
	}
	return g
}

// Reset rewinds the graph to time 0 over n nodes with a fresh initial
// edge set, reusing every buffer the previous execution grew: presence
// and history maps keep their buckets (history interval slices are
// truncated in place, so re-adding an edge seen before allocates
// nothing), adjacency slices keep their capacity, and subscribers stay
// registered — component wiring outlives individual runs. No
// EdgeAdded/EdgeRemoved notifications fire for either the discarded or
// the new initial edges, matching NewDynamic. The topology-change epoch
// is bumped (not rewound) so cached consumers like DistanceMatrix
// revalidate.
func (g *Dynamic) Reset(n int, initial []Edge) {
	if n < 1 {
		panic("dyngraph: need at least one node")
	}
	for len(g.adj) < n {
		g.adj = append(g.adj, nil)
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
	clear(g.present)
	for e, ivs := range g.hist { //gcslint:allow maprange — bulk clear, no order observable
		g.hist[e] = ivs[:0]
	}
	g.lastT = 0
	g.adds, g.removes = 0, 0
	g.epoch++
	for _, e := range initial {
		g.check(e)
		if g.present[e] {
			continue
		}
		g.present[e] = true
		g.linkAdj(e)
		g.hist[e] = append(g.hist[e], Interval{Start: 0, End: math.Inf(1)})
	}
}

// linkAdj inserts each endpoint into the other's sorted neighbor slice.
func (g *Dynamic) linkAdj(e Edge) {
	g.adj[e.U] = insertSorted(g.adj[e.U], e.V)
	g.adj[e.V] = insertSorted(g.adj[e.V], e.U)
}

// unlinkAdj removes each endpoint from the other's sorted neighbor slice.
func (g *Dynamic) unlinkAdj(e Edge) {
	g.adj[e.U] = removeSorted(g.adj[e.U], e.V)
	g.adj[e.V] = removeSorted(g.adj[e.V], e.U)
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func (g *Dynamic) check(e Edge) {
	if e.U < 0 || e.V >= g.n || e.U >= e.V {
		panic(fmt.Sprintf("dyngraph: invalid edge %v for n=%d", e, g.n))
	}
}

// N returns the number of nodes.
func (g *Dynamic) N() int { return g.n }

// Subscribe registers a topology-event subscriber.
func (g *Dynamic) Subscribe(s Subscriber) { g.subs = append(g.subs, s) }

// Present reports whether e is currently in the graph.
func (g *Dynamic) Present(e Edge) bool { return g.present[e] }

// Add inserts edge e at time t. Adding a present edge is a no-op (the
// model assumes no simultaneous add+remove of the same edge).
func (g *Dynamic) Add(t float64, e Edge) {
	g.check(e)
	g.advance(t)
	if g.present[e] {
		return
	}
	g.present[e] = true
	g.linkAdj(e)
	g.hist[e] = append(g.hist[e], Interval{Start: t, End: math.Inf(1)})
	g.adds++
	g.epoch++
	for _, s := range g.subs {
		s.EdgeAdded(t, e)
	}
}

// Remove deletes edge e at time t. Removing an absent edge is a no-op.
func (g *Dynamic) Remove(t float64, e Edge) {
	g.check(e)
	g.advance(t)
	if !g.present[e] {
		return
	}
	// Delete rather than set false: under heavy churn the presence map
	// would otherwise grow with every edge ever seen.
	delete(g.present, e)
	g.unlinkAdj(e)
	ivs := g.hist[e]
	ivs[len(ivs)-1].End = t
	g.removes++
	g.epoch++
	for _, s := range g.subs {
		s.EdgeRemoved(t, e)
	}
}

func (g *Dynamic) advance(t float64) {
	if t < g.lastT {
		panic(fmt.Sprintf("dyngraph: time went backwards: %v < %v", t, g.lastT))
	}
	g.lastT = t
}

// Stats returns the number of add and remove events so far.
func (g *Dynamic) Stats() (adds, removes int) { return g.adds, g.removes }

// Epoch returns the topology-change generation: it increments on every
// effective Add or Remove (no-ops excluded). Two equal Epoch readings
// bracket an interval over which the current edge set did not change.
func (g *Dynamic) Epoch() uint64 { return g.epoch }

// Neighbors returns a copy of the nodes currently adjacent to u, sorted
// ascending.
func (g *Dynamic) Neighbors(u int) []int {
	return append([]int(nil), g.adj[u]...)
}

// Degree returns the number of edges currently incident to u.
func (g *Dynamic) Degree(u int) int { return len(g.adj[u]) }

// AppendNeighbors appends the nodes currently adjacent to u to buf, in
// ascending order, and returns the extended slice. Callers on hot paths
// reuse buf across calls to avoid allocating; the deterministic order
// makes broadcast fan-out (and hence PRNG draw order) reproducible.
func (g *Dynamic) AppendNeighbors(u int, buf []int) []int {
	return append(buf, g.adj[u]...)
}

// RangeCurrentEdges calls f for every edge present now, in unspecified
// order, without allocating. Use it for order-independent aggregations
// (maxima, counts) on hot paths; use CurrentEdges when a sorted snapshot
// is needed.
func (g *Dynamic) RangeCurrentEdges(f func(Edge)) {
	for e := range g.present { //gcslint:allow maprange — callers are contractually order-independent (see doc comment)
		f(e)
	}
}

// CurrentEdges returns the edges present now, sorted. Remove deletes
// presence entries, so every key in the map is a present edge.
func (g *Dynamic) CurrentEdges() []Edge {
	out := make([]Edge, 0, len(g.present))
	for e := range g.present {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

// ExistsAt reports whether e is in E(t) according to the recorded
// history.
func (g *Dynamic) ExistsAt(e Edge, t float64) bool {
	for _, iv := range g.hist[e] {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// ExistsThroughout reports whether e exists throughout [t1, t2] in the
// paper's sense.
func (g *Dynamic) ExistsThroughout(e Edge, t1, t2 float64) bool {
	for _, iv := range g.hist[e] {
		if iv.Covers(t1, t2) {
			return true
		}
	}
	return false
}

// EdgesAt returns E(t), sorted.
func (g *Dynamic) EdgesAt(t float64) []Edge {
	var out []Edge
	for e, ivs := range g.hist {
		for _, iv := range ivs {
			if iv.Contains(t) {
				out = append(out, e)
				break
			}
		}
	}
	sortEdges(out)
	return out
}

// EdgesThroughout returns the set E|[t1,t2] of edges existing throughout
// the interval, sorted. This is the edge set of the paper's static
// subgraph G[t1,t2].
func (g *Dynamic) EdgesThroughout(t1, t2 float64) []Edge {
	var out []Edge
	for e, ivs := range g.hist {
		for _, iv := range ivs {
			if iv.Covers(t1, t2) {
				out = append(out, e)
				break
			}
		}
	}
	sortEdges(out)
	return out
}

// IntervalConnected reports whether G[t1,t2] is connected.
func (g *Dynamic) IntervalConnected(t1, t2 float64) bool {
	return Connected(g.n, g.EdgesThroughout(t1, t2))
}

// EventTimes returns the sorted distinct times at which any edge was
// added or removed (excluding time 0 initial edges).
func (g *Dynamic) EventTimes() []float64 {
	seen := map[float64]bool{}
	for _, ivs := range g.hist {
		for _, iv := range ivs {
			if iv.Start > 0 {
				seen[iv.Start] = true
			}
			if !math.IsInf(iv.End, 1) {
				seen[iv.End] = true
			}
		}
	}
	out := make([]float64, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

// VerifyIntervalConnectivity checks Definition 3.1 exactly over [0,
// horizon]: for every window [t, t+T] with t in [0, horizon-T], the
// static subgraph G[t,t+T] is connected. Because E|[t,t+T] only changes
// when t crosses an event time (or t+T does), it suffices to test window
// starts at 0 and at every event time s and s-T within range. Returns the
// first violating window start, or (0, true) if the property holds.
func (g *Dynamic) VerifyIntervalConnectivity(T, horizon float64) (float64, bool) {
	if T <= 0 {
		panic("dyngraph: T must be positive")
	}
	starts := map[float64]bool{0: true}
	for _, s := range g.EventTimes() {
		for _, cand := range []float64{s, s - T} {
			if cand >= 0 && cand+T <= horizon {
				starts[cand] = true
			}
		}
	}
	sorted := make([]float64, 0, len(starts))
	for s := range starts {
		sorted = append(sorted, s)
	}
	sort.Float64s(sorted)
	for _, s := range sorted {
		if s+T > horizon {
			continue
		}
		if !g.IntervalConnected(s, s+T) {
			return s, false
		}
	}
	return 0, true
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}
