package dyngraph

// Static-graph utilities used for connectivity checks, distances (the
// paper's dist(u,v)), and the lower bound's flexible distance.

// Adjacency builds adjacency lists for the static graph (n, edges).
func Adjacency(n int, edges []Edge) [][]int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// Connected reports whether the static graph (n, edges) is connected.
// The empty graph over one node is connected.
func Connected(n int, edges []Edge) bool {
	if n <= 1 {
		return true
	}
	adj := Adjacency(n, edges)
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// Distances returns BFS hop distances from src in the static graph;
// unreachable nodes get -1. This is the paper's dist(src, v).
func Distances(n int, edges []Edge, src int) []int {
	dist := make([]int, n)
	bfs(Adjacency(n, edges), src, dist, make([]int, 0, n))
	return dist
}

// bfs fills dist with hop distances from src (-1 for unreachable),
// reusing the caller's queue buffer, and returns the eccentricity of src
// (the largest finite distance).
func bfs(adj [][]int, src int, dist, queue []int) int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], src)
	ecc := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > ecc {
					ecc = dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return ecc
}

// Diameter returns the maximum finite pairwise distance of the static
// graph, or -1 if the graph is disconnected. The adjacency structure and
// BFS buffers are built once and shared across all n source traversals,
// so the whole computation performs O(n) allocations, not O(n^2).
func Diameter(n int, edges []Edge) int {
	adj := Adjacency(n, edges)
	dist := make([]int, n)
	queue := make([]int, 0, n)
	diam := 0
	for s := 0; s < n; s++ {
		ecc := bfs(adj, s, dist, queue)
		for _, x := range dist {
			if x < 0 {
				return -1
			}
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// FlexibleDistances returns, for every node v, the minimum number of
// *unconstrained* edges on any path from src to v — the paper's
// dist_M(src, v) for a delay mask whose constrained edge set is
// `constrained` (Definition 4.3). Constrained edges cost 0, unconstrained
// edges cost 1; this is a 0/1-BFS. Unreachable nodes get -1.
func FlexibleDistances(n int, edges []Edge, constrained map[Edge]bool, src int) []int {
	type arc struct {
		to   int
		cost int
	}
	adj := make([][]arc, n)
	for _, e := range edges {
		c := 1
		if constrained[e] {
			c = 0
		}
		adj[e.U] = append(adj[e.U], arc{e.V, c})
		adj[e.V] = append(adj[e.V], arc{e.U, c})
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	// 0/1 BFS with a deque.
	deque := make([]int, 0, n)
	dist[src] = 0
	deque = append(deque, src)
	for len(deque) > 0 {
		u := deque[0]
		deque = deque[1:]
		for _, a := range adj[u] {
			nd := dist[u] + a.cost
			if dist[a.to] == -1 || nd < dist[a.to] {
				dist[a.to] = nd
				if a.cost == 0 {
					deque = append([]int{a.to}, deque...)
				} else {
					deque = append(deque, a.to)
				}
			}
		}
	}
	return dist
}

// SpanningTree returns the edges of a BFS spanning tree rooted at src, or
// nil if the graph is disconnected.
func SpanningTree(n int, edges []Edge, src int) []Edge {
	adj := Adjacency(n, edges)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	var tree []Edge
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if parent[v] < 0 {
				parent[v] = u
				tree = append(tree, E(u, v))
				queue = append(queue, v)
			}
		}
	}
	if len(tree) != n-1 && n > 1 {
		return nil
	}
	return tree
}
