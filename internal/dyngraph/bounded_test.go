package dyngraph

import (
	"testing"

	"gcs/internal/des"
)

// randomDynamic builds a Dynamic over n nodes with a ring backbone (so
// it stays connected) plus extra random chords.
func randomDynamic(n int, extra int, r *des.Rand) *Dynamic {
	var edges []Edge
	for i := 0; i < n; i++ {
		edges = append(edges, E(i, (i+1)%n))
	}
	for len(edges) < n+extra {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, E(u, v))
		}
	}
	return NewDynamic(n, edges)
}

// TestBoundedDistancesMatchesMatrix cross-checks every stored ball
// entry against the all-pairs matrix, and every matrix entry within the
// radius against the ball — the truncated structure must agree exactly
// with the exact one inside the radius and store nothing outside it.
func TestBoundedDistancesMatchesMatrix(t *testing.T) {
	r := des.NewRand(11)
	for _, n := range []int{2, 7, 32, 64} {
		for _, radius := range []int{1, 2, 3, 8} {
			g := randomDynamic(n, n/2, r)
			dm := NewDistanceMatrix(n)
			dm.Update(g)
			bd := NewBoundedDistances(n, radius)
			bd.Update(g)
			for u := 0; u < n; u++ {
				row := dm.Row(u)
				nodes, dists := bd.Ball(u)
				inBall := make(map[int]int)
				for i, v := range nodes {
					d := int(dists[i])
					if d < 1 || d > radius {
						t.Fatalf("n=%d r=%d: ball of %d stores %d at distance %d", n, radius, u, v, d)
					}
					if d != int(row[v]) {
						t.Fatalf("n=%d r=%d: dist(%d,%d) ball=%d matrix=%d", n, radius, u, v, d, row[v])
					}
					inBall[int(v)] = d
				}
				for v := 0; v < n; v++ {
					if v == u {
						continue
					}
					d := int(row[v])
					if d >= 1 && d <= radius {
						if _, ok := inBall[v]; !ok {
							t.Fatalf("n=%d r=%d: matrix has dist(%d,%d)=%d but ball omits it", n, radius, u, v, d)
						}
					} else if _, ok := inBall[v]; ok {
						t.Fatalf("n=%d r=%d: ball of %d stores %d beyond radius (matrix dist %d)", n, radius, u, v, d)
					}
				}
			}
		}
	}
}

// TestBoundedDistancesLazy pins the epoch-lazy contract shared with
// DistanceMatrix: repeated Updates on an unchanged topology cost one
// compare, a topology change triggers exactly one fresh sweep.
func TestBoundedDistancesLazy(t *testing.T) {
	g := NewDynamic(8, []Edge{E(0, 1), E(1, 2), E(2, 3), E(3, 4)})
	bd := NewBoundedDistances(8, 2)
	if !bd.Update(g) {
		t.Fatal("first Update did not recompute")
	}
	for i := 0; i < 5; i++ {
		if bd.Update(g) {
			t.Fatal("Update recomputed on unchanged topology")
		}
	}
	g.Add(1, E(4, 5))
	if !bd.Update(g) {
		t.Fatal("Update missed a topology change")
	}
	if bd.Dist(3, 5) != 2 {
		t.Fatalf("dist(3,5) = %d after edge add, want 2", bd.Dist(3, 5))
	}
	if bd.Recomputes() != 2 {
		t.Fatalf("Recomputes = %d, want 2", bd.Recomputes())
	}
}

// TestBoundedDistancesMemoryIsBallSized pins the O(n·k) footprint: on a
// ring, every radius-r ball holds exactly 2r nodes (r each way), so the
// stored pair count is n*2r however large n grows — not n².
func TestBoundedDistancesMemoryIsBallSized(t *testing.T) {
	const n, radius = 512, 3
	var edges []Edge
	for i := 0; i < n; i++ {
		edges = append(edges, E(i, (i+1)%n))
	}
	g := NewDynamic(n, edges)
	bd := NewBoundedDistances(n, radius)
	bd.Update(g)
	if want := n * 2 * radius; bd.Stored() != want {
		t.Fatalf("Stored = %d, want %d (= n * 2r)", bd.Stored(), want)
	}
}

// TestBoundedDistancesDisconnected pins that balls do not cross
// connected components.
func TestBoundedDistancesDisconnected(t *testing.T) {
	g := NewDynamic(4, []Edge{E(0, 1), E(2, 3)})
	bd := NewBoundedDistances(4, 3)
	bd.Update(g)
	if d := bd.Dist(0, 2); d != -1 {
		t.Fatalf("dist(0,2) = %d across components, want -1", d)
	}
	if d := bd.Dist(0, 1); d != 1 {
		t.Fatalf("dist(0,1) = %d, want 1", d)
	}
}
