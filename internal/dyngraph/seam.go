package dyngraph

import "gcs/internal/seam"

// Dynamic is the DES-side seam.Topology: gcs nodes enumerate their
// current neighborhood through AppendNeighbors without importing this
// package.
var _ seam.Topology = (*Dynamic)(nil)
