package dyngraph

// BoundedDistances caches radius-capped hop distances over a Dynamic
// graph's current edge set: for every source u it stores the ball of
// nodes within the given radius, in CSR form (one offsets slice, one
// concatenated members slice). Where DistanceMatrix costs O(n²) memory
// and a full n-source BFS sweep per topology epoch, BoundedDistances
// costs O(n·k) for ball size k and truncates each BFS at the radius —
// the structure behind neighborhood-capped gradient checking at scales
// where the all-pairs matrix stops fitting. Like DistanceMatrix it is
// epoch-lazy (one integer compare per Update while the topology is
// unchanged) and allocation-free in steady state once the CSR arrays
// have grown to the workload's ball sizes.
type BoundedDistances struct {
	n      int
	radius int
	// CSR storage: ball u occupies nodes[offsets[u]:offsets[u+1]] and
	// dists likewise; the source itself (distance 0) is not stored.
	offsets []int32
	nodes   []int32
	dists   []int32
	// seen is the per-node visit stamp; bumping stamp invalidates all
	// marks at once, so the scratch is never cleared.
	seen  []uint32
	stamp uint32
	queue []int32
	epoch uint64
	valid bool
	// recomputes counts full sweeps, so tests can pin laziness.
	recomputes int
}

// NewBoundedDistances returns a structure for graphs over n nodes,
// truncating every ball at the given radius (in hops, >= 1). It holds
// no distances until the first Update.
func NewBoundedDistances(n, radius int) *BoundedDistances {
	if n < 1 {
		panic("dyngraph: BoundedDistances needs at least one node")
	}
	if radius < 1 {
		panic("dyngraph: BoundedDistances needs radius >= 1")
	}
	return &BoundedDistances{
		n:       n,
		radius:  radius,
		offsets: make([]int32, n+1),
		seen:    make([]uint32, n),
		queue:   make([]int32, 0, n),
	}
}

// Radius returns the truncation radius the structure was built with.
func (bd *BoundedDistances) Radius() int { return bd.radius }

// Update revalidates the balls against g's current edge set: a no-op
// while g.Epoch() matches the epoch of the last recompute, a full
// truncated-BFS sweep otherwise. It reports whether a recompute
// happened. The graph must have the node count the structure was sized
// for.
func (bd *BoundedDistances) Update(g *Dynamic) bool {
	if g.N() != bd.n {
		panic("dyngraph: BoundedDistances node count mismatch")
	}
	if bd.valid && g.Epoch() == bd.epoch {
		return false
	}
	bd.nodes = bd.nodes[:0]
	bd.dists = bd.dists[:0]
	for src := 0; src < bd.n; src++ {
		bd.offsets[src] = int32(len(bd.nodes))
		bd.ballFrom(g, src)
	}
	bd.offsets[bd.n] = int32(len(bd.nodes))
	bd.epoch = g.Epoch()
	bd.valid = true
	bd.recomputes++
	return true
}

// ballFrom appends src's radius-capped ball (excluding src itself) to
// the CSR arrays via truncated BFS.
func (bd *BoundedDistances) ballFrom(g *Dynamic, src int) {
	bd.stamp++
	bd.seen[src] = bd.stamp
	q := append(bd.queue[:0], int32(src))
	// dist of queue entries is implied by BFS frontier layering: track
	// the index where the current layer ends.
	depth := 0
	layerEnd := len(q)
	for head := 0; head < len(q); head++ {
		if head == layerEnd {
			depth++
			layerEnd = len(q)
		}
		if depth == bd.radius {
			break
		}
		u := q[head]
		for _, v := range g.adj[u] {
			if bd.seen[v] != bd.stamp {
				bd.seen[v] = bd.stamp
				bd.nodes = append(bd.nodes, int32(v))
				bd.dists = append(bd.dists, int32(depth+1))
				q = append(q, int32(v))
			}
		}
	}
	bd.queue = q[:0]
}

// Ball returns the nodes within the radius of u (excluding u itself)
// and their distances, in BFS layer order. Both slices alias internal
// storage and are valid until the next Update. Update must have run at
// least once.
func (bd *BoundedDistances) Ball(u int) (nodes, dists []int32) {
	if !bd.valid {
		panic("dyngraph: BoundedDistances read before first Update")
	}
	lo, hi := bd.offsets[u], bd.offsets[u+1]
	return bd.nodes[lo:hi], bd.dists[lo:hi]
}

// Dist returns the current hop distance between u and v, or -1 when v
// lies outside u's radius-capped ball (farther than the radius, or
// disconnected). It scans u's ball, so it is meant for tests and
// spot-checks; bulk consumers iterate Ball directly.
func (bd *BoundedDistances) Dist(u, v int) int {
	if u == v {
		return 0
	}
	nodes, dists := bd.Ball(u)
	for i, w := range nodes {
		if int(w) == v {
			return int(dists[i])
		}
	}
	return -1
}

// Stored returns the total number of (source, member) pairs currently
// held — the O(n·k) footprint tests pin against the all-pairs matrix.
func (bd *BoundedDistances) Stored() int { return len(bd.nodes) }

// Recomputes returns the number of full truncated-BFS sweeps performed,
// for asserting that revalidation is lazy.
func (bd *BoundedDistances) Recomputes() int { return bd.recomputes }
