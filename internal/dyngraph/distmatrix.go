package dyngraph

// DistanceMatrix caches all-pairs hop distances over a Dynamic graph's
// current edge set. It exists for per-sample consumers — the gradient
// checker reads dist(u, v) for every node pair at every skew sample —
// so the design goals are (a) zero steady-state allocation: the flat
// n*n matrix and the BFS queue are allocated once at construction and
// reused by every recompute, and (b) lazy revalidation: Update costs
// one integer epoch compare while the topology is unchanged and one
// multi-source BFS sweep per topology-change epoch otherwise.
type DistanceMatrix struct {
	n    int
	dist []int32 // n*n row-major; -1 for unreachable pairs
	// queue is the shared BFS scratch, reused across all n sources.
	queue []int32
	epoch uint64
	valid bool
	// recomputes counts full BFS sweeps, so tests can pin laziness.
	recomputes int
}

// NewDistanceMatrix returns a matrix for graphs over n nodes. It holds
// no distances until the first Update.
func NewDistanceMatrix(n int) *DistanceMatrix {
	if n < 1 {
		panic("dyngraph: DistanceMatrix needs at least one node")
	}
	return &DistanceMatrix{
		n:     n,
		dist:  make([]int32, n*n),
		queue: make([]int32, 0, n),
	}
}

// Update revalidates the matrix against g's current edge set: a no-op
// while g.Epoch() matches the epoch of the last recompute, a full
// multi-source BFS sweep otherwise. It reports whether a recompute
// happened. The graph must have the node count the matrix was sized for.
func (dm *DistanceMatrix) Update(g *Dynamic) bool {
	if g.N() != dm.n {
		panic("dyngraph: DistanceMatrix node count mismatch")
	}
	if dm.valid && g.Epoch() == dm.epoch {
		return false
	}
	for src := 0; src < dm.n; src++ {
		dm.bfsFrom(g, src)
	}
	dm.epoch = g.Epoch()
	dm.valid = true
	dm.recomputes++
	return true
}

// bfsFrom fills row src of the matrix from g's current adjacency.
func (dm *DistanceMatrix) bfsFrom(g *Dynamic, src int) {
	row := dm.dist[src*dm.n : (src+1)*dm.n]
	for i := range row {
		row[i] = -1
	}
	row[src] = 0
	q := append(dm.queue[:0], int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, v := range g.adj[u] {
			if row[v] < 0 {
				row[v] = row[u] + 1
				q = append(q, int32(v))
			}
		}
	}
	dm.queue = q[:0]
}

// Dist returns the current hop distance between u and v, or -1 if they
// are disconnected. Update must have run at least once.
func (dm *DistanceMatrix) Dist(u, v int) int {
	if !dm.valid {
		panic("dyngraph: DistanceMatrix read before first Update")
	}
	return int(dm.dist[u*dm.n+v])
}

// Row returns the distances from u to every node (-1 for unreachable).
// The slice aliases the matrix and is valid until the next Update.
func (dm *DistanceMatrix) Row(u int) []int32 {
	if !dm.valid {
		panic("dyngraph: DistanceMatrix read before first Update")
	}
	return dm.dist[u*dm.n : (u+1)*dm.n]
}

// MaxFinite returns the largest finite distance in the matrix (the
// current diameter), or 0 for a single node or fully disconnected graph.
func (dm *DistanceMatrix) MaxFinite() int {
	if !dm.valid {
		panic("dyngraph: DistanceMatrix read before first Update")
	}
	max := int32(0)
	for _, d := range dm.dist {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// Recomputes returns the number of full BFS sweeps performed, for
// asserting that revalidation is lazy.
func (dm *DistanceMatrix) Recomputes() int { return dm.recomputes }
