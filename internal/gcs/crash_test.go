package gcs

import (
	"math"
	"testing"
)

// TestCrashStopsParticipation pins the crash semantics: a crashed node
// stops beaconing (its peer hears nothing new) and ignores everything
// it hears (its own counters freeze), while staying crash-safe against
// same-tick events already in flight.
func TestCrashStopsParticipation(t *testing.T) {
	p := Params{Rho: 0.05, MaxDelay: 0.01, BeaconEvery: 0.1}
	en, nodes := pair(t, p, 1.05, 0.95, 0.01)
	nodes[0].Start(0)
	nodes[1].Start(0.05)
	en.Run(2)

	en.Schedule(2.5, "test.crash", func() { nodes[0].Crash() })
	en.Run(3)
	if !nodes[0].Down() || nodes[1].Down() {
		t.Fatalf("down flags wrong: %v %v", nodes[0].Down(), nodes[1].Down())
	}
	msgs0 := nodes[0].Snap().Messages
	msgs1 := nodes[1].Snap().Messages
	beacons0 := nodes[0].Snap().Beacons

	en.Run(6)
	if got := nodes[1].Snap().Messages; got != msgs1 {
		t.Fatalf("peer heard %d new messages from a crashed node", got-msgs1)
	}
	if got := nodes[0].Snap().Messages; got != msgs0 {
		t.Fatalf("crashed node ingested %d messages", got-msgs0)
	}
	if got := nodes[0].Snap().Beacons; got != beacons0 {
		t.Fatalf("crashed node emitted %d beacons", got-beacons0)
	}
	// Crash is idempotent.
	nodes[0].Crash()
	if !nodes[0].Down() {
		t.Fatal("second Crash flipped the node back up")
	}
}

// TestRecoverRejoinsAndPreservesCounters pins the recovery semantics:
// volatile sync state is lost, the node rejoins with an immediate
// discovery beacon and re-converges to its peer, and the cumulative
// counters survive (a crash is a fault, not a statistics reset).
func TestRecoverRejoinsAndPreservesCounters(t *testing.T) {
	p := Params{Rho: 0.05, MaxDelay: 0.01, BeaconEvery: 0.1, JumpThreshold: 0}
	en, nodes := pair(t, p, 1.05, 0.95, 0.01)
	nodes[0].Start(0)
	nodes[1].Start(0.05)
	en.Schedule(2, "test.crash", func() { nodes[1].Crash() })
	en.Run(5)
	preBeacons := nodes[1].Snap().Beacons
	preMsgs := nodes[1].Snap().Messages
	if preBeacons == 0 || preMsgs == 0 {
		t.Fatalf("degenerate pre-crash run: %+v", nodes[1].Snap())
	}

	en.Schedule(5.5, "test.recover", func() { nodes[1].Recover() })
	en.Run(12)
	if nodes[1].Down() {
		t.Fatal("node still down after Recover")
	}
	s := nodes[1].Snap()
	if s.Beacons <= preBeacons {
		t.Fatal("recovered node never beaconed again")
	}
	if s.Messages <= preMsgs {
		t.Fatal("recovered node never ingested traffic again")
	}
	// The recovered slow node must have caught back up to the fast one.
	skew := math.Abs(nodes[0].Logical() - nodes[1].Logical())
	bound := (1 + p.Rho) * (p.BeaconEvery/(1-p.Rho) + p.MaxDelay)
	if skew > bound {
		t.Fatalf("post-recovery skew %v exceeds steady-state bound %v", skew, bound)
	}
	// Recover is idempotent on a live node.
	before := nodes[1].Snap()
	nodes[1].Recover()
	if got := nodes[1].Snap(); got != before {
		t.Fatalf("Recover on a live node perturbed it: %+v vs %+v", got, before)
	}
}

// TestRecoverRestartsLogicalFromHardware pins the volatile-state loss:
// after recovery the logical clock restarts from the hardware reading,
// below the peer's logical time it had tracked before the crash.
func TestRecoverRestartsLogicalFromHardware(t *testing.T) {
	p := Params{Rho: 0.05, MaxDelay: 0.01, BeaconEvery: 0.1, JumpThreshold: 0}
	en, nodes := pair(t, p, 1.0, 1.0, 0.01)
	nodes[0].Start(0)
	nodes[1].Start(0)
	// Lift node 1 far ahead via an injected estimate, dragging node 0 up
	// with it through the max rule.
	en.Schedule(1, "test.inject", func() { nodes[1].OnMessage(9, 100) })
	en.Run(2)
	if nodes[0].Logical() < 50 {
		t.Fatalf("max rule never propagated the injected estimate: %v", nodes[0].Logical())
	}
	nodes[1].Crash()
	nodes[1].Recover()
	if l, h := nodes[1].Logical(), nodes[1].Clock().Now(); math.Abs(l-h) > 1e-9 {
		t.Fatalf("recovered logical %v != hardware %v (volatile state survived)", l, h)
	}
}
