package gcs

import (
	"math"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/transport"
)

// pair wires two nodes over a single static edge with a fixed-delay
// transport, returning the engine and both nodes. The network and graph
// plug straight into the seam (transport.Network is the seam.Sender,
// dyngraph.Dynamic the seam.Topology).
func pair(t *testing.T, p Params, rate0, rate1, delay float64) (*des.Engine, []*Node) {
	t.Helper()
	en := des.NewEngine()
	g := dyngraph.NewDynamic(2, []dyngraph.Edge{dyngraph.E(0, 1)})
	net := transport.New(en, g, transport.FixedDelay(delay), delay)
	nodes := make([]*Node, 2)
	for i, rate := range []float64{rate0, rate1} {
		i := i
		hw := clock.New(en, rate)
		nodes[i] = New(i, hw, p, net, g)
		net.SetHandler(i, func(m transport.Message) {
			nodes[i].OnMessage(m.From, m.Value)
		})
	}
	return en, nodes
}

// nbrs is a fixed neighbor set: the seam.Topology for isolated unit
// tests that need a neighborhood without a graph.
type nbrs []int

func (s nbrs) AppendNeighbors(_ int, buf []int) []int { return append(buf, s...) }

func TestTwoNodesConvergeUnderMaxRule(t *testing.T) {
	p := Params{Rho: 0.05, MaxDelay: 0.01, BeaconEvery: 0.1, JumpThreshold: 0}
	en, nodes := pair(t, p, 1.05, 0.95, 0.01)
	nodes[0].Start(0)
	nodes[1].Start(0.05)
	en.Run(20)
	l0, l1 := nodes[0].Logical(), nodes[1].Logical()
	skew := math.Abs(l0 - l1)
	// One beacon interval of real time plus a delay bounds the staleness;
	// the fast clock gains at most (1+rho) over that window.
	bound := (1 + p.Rho) * (p.BeaconEvery/(1-p.Rho) + p.MaxDelay)
	if skew > bound {
		t.Fatalf("steady-state skew %v exceeds bound %v (L0=%v L1=%v)", skew, bound, l0, l1)
	}
	// The slow node must have jumped repeatedly to track the fast one.
	if nodes[1].Snap().Jumps == 0 {
		t.Fatal("slow node never jumped despite lagging")
	}
}

func TestLogicalNeverDecreasesAndDominatesHardware(t *testing.T) {
	p := Params{Rho: 0.05, MaxDelay: 0.01, BeaconEvery: 0.07}
	en, nodes := pair(t, p, 1.05, 0.95, 0.008)
	nodes[0].Start(0)
	nodes[1].Start(0.03)
	prev := []float64{0, 0}
	for step := 1; step <= 100; step++ {
		en.Run(float64(step) * 0.2)
		for i, nd := range nodes {
			l := nd.Logical()
			if l < prev[i]-1e-12 {
				t.Fatalf("node %d logical clock decreased: %v -> %v", i, prev[i], l)
			}
			if l < nd.Clock().Now()-1e-12 {
				t.Fatalf("node %d logical %v below hardware %v", i, l, nd.Clock().Now())
			}
			prev[i] = l
		}
	}
}

func TestJumpRuleSetsClockToMaxEstimate(t *testing.T) {
	en := des.NewEngine()
	hw := clock.New(en, 1)
	nd := New(0, hw, Params{Rho: 0.01, JumpThreshold: 0}, nil, nil)
	en.Schedule(1, "inject", func() { nd.OnMessage(7, 50) })
	en.Run(1)
	if got := nd.Logical(); got != 50 {
		t.Fatalf("logical after hearing 50 = %v, want 50", got)
	}
	s := nd.Snap()
	if s.Jumps != 1 || s.Messages != 1 {
		t.Fatalf("snapshot = %+v, want 1 jump and 1 message", s)
	}
	if s.MaxEstimate != 50 {
		t.Fatalf("max estimate = %v, want 50", s.MaxEstimate)
	}
}

func TestFastModeCatchesUpAtFastRate(t *testing.T) {
	en := des.NewEngine()
	hw := clock.New(en, 1)
	// Jumps disabled: all catch-up must happen at the fast rate.
	p := Params{Rho: 0.01, BeaconEvery: 0.1, Kappa: 0.5, Mu: 1,
		JumpThreshold: math.Inf(1)}
	nd := New(0, hw, p, nil, nbrs{1})
	en.Schedule(1, "inject", func() { nd.OnMessage(1, 11) })
	en.Run(1)
	if !nd.Snap().Fast {
		t.Fatal("node not in fast mode despite neighbor 10 ahead")
	}
	if nd.Snap().Jumps != 0 {
		t.Fatal("node jumped with JumpThreshold = +Inf")
	}
	// At rate (1+Mu) = 2 the 10-unit gap closes in ~10 units of time
	// (the estimate ages forward too, but slower than the catch-up).
	en.Run(25)
	s := nd.Snap()
	if s.Fast {
		t.Fatalf("node still fast after catch-up window: %+v", s)
	}
	gap := s.MaxEstimate - s.Logical
	if gap > p.Kappa {
		t.Fatalf("residual gap %v exceeds Kappa %v", gap, p.Kappa)
	}
	if s.Logical < 20 {
		t.Fatalf("logical %v shows no fast-rate progress", s.Logical)
	}
}

func TestFastModeOnlyTriggersOnCurrentNeighbors(t *testing.T) {
	en := des.NewEngine()
	hw := clock.New(en, 1)
	p := Params{Rho: 0.01, Kappa: 0.5, JumpThreshold: math.Inf(1)}
	// Node 1 is not in the neighbor set: its huge value must not trigger
	// fast mode (it is stale information from a vanished edge).
	nd := New(0, hw, p, nil, nbrs{2})
	en.Schedule(1, "inject", func() { nd.OnMessage(1, 1000) })
	en.Run(2)
	if nd.Snap().Fast {
		t.Fatal("fast mode triggered by a non-neighbor estimate")
	}
}

func TestEstimateAgingIsConservative(t *testing.T) {
	en := des.NewEngine()
	hw := clock.New(en, 1)
	p := Params{Rho: 0.1, JumpThreshold: math.Inf(1), Kappa: 1}
	nd := New(0, hw, p, nil, nil)
	nd.OnMessage(1, 5)
	en.Run(10)
	// After 10 units at local rate 1, the estimate must have aged by
	// exactly 10*(1-rho)/(1+rho) — the guaranteed minimum remote progress.
	want := 5 + 10*(1-p.Rho)/(1+p.Rho)
	if got := nd.Snap().MaxEstimate; math.Abs(got-want) > 1e-9 {
		t.Fatalf("aged estimate = %v, want %v", got, want)
	}
}

func TestBeaconCadenceIsSubjective(t *testing.T) {
	// A clock at rate 2 beacons twice as often per unit real time.
	en := des.NewEngine()
	fast := New(0, clock.New(en, 2), Params{Rho: 0.01, BeaconEvery: 0.5}, nil, nil)
	slow := New(1, clock.New(en, 1), Params{Rho: 0.01, BeaconEvery: 0.5}, nil, nil)
	fast.Start(0)
	slow.Start(0)
	en.Run(10)
	fb, sb := fast.Snap().Beacons, slow.Snap().Beacons
	if fb < 2*sb-2 || fb > 2*sb+2 {
		t.Fatalf("beacon counts fast=%d slow=%d; want ~2x ratio", fb, sb)
	}
}
