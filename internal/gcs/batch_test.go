package gcs

import (
	"math"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/des"
)

// solo builds an isolated node (no transport) on a fresh engine.
func solo(p Params) (*des.Engine, *clock.HardwareClock, *Node) {
	en := des.NewEngine()
	hw := clock.New(en, 1)
	return en, hw, New(0, hw, p, nil, nil)
}

// TestOnValuesFoldsBatchToMax pins the coalesced ingest rule: a batch
// folds through the max-estimate rule in a single pass, reaching the
// same logical clock and estimate a message-at-a-time ingest of the same
// values at the same instant would, while counting every value.
func TestOnValuesFoldsBatchToMax(t *testing.T) {
	p := Params{Rho: 0.01, MaxDelay: 0.01, BeaconEvery: 0.1, JumpThreshold: 0}
	_, _, batched := solo(p)
	_, _, staged := solo(p)

	values := []float64{5, 9, 7}
	batched.OnValues(1, values)
	for _, v := range values {
		staged.OnMessage(1, v)
	}

	bs, ss := batched.Snap(), staged.Snap()
	if bs.Logical != ss.Logical || bs.MaxEstimate != ss.MaxEstimate {
		t.Fatalf("batch fold diverged: batched (L=%v est=%v), staged (L=%v est=%v)",
			bs.Logical, bs.MaxEstimate, ss.Logical, ss.MaxEstimate)
	}
	if bs.Messages != 3 {
		t.Fatalf("batch counted %d messages, want 3", bs.Messages)
	}
	// With threshold 0 the fold jumps straight to the batch max; the
	// staged ingest jumps per raising value. Only the counter may differ.
	if bs.Jumps != 1 || ss.Jumps != 2 {
		t.Fatalf("jump counters = batched %d, staged %d; want 1 and 2", bs.Jumps, ss.Jumps)
	}
	if bs.Logical < 9 {
		t.Fatalf("logical %v below batch max 9", bs.Logical)
	}
}

// TestOnValuesEmptyBatchIsNoOp guards the degenerate call.
func TestOnValuesEmptyBatchIsNoOp(t *testing.T) {
	_, _, nd := solo(Params{})
	nd.OnValues(1, nil)
	if s := nd.Snap(); s.Messages != 0 || !math.IsInf(s.MaxEstimate, -1) {
		t.Fatalf("empty batch mutated the node: %+v", s)
	}
}

// TestNodeResetClearsState pins the arena-reuse contract: after a
// hardware-clock and node reset the node is indistinguishable from a
// freshly constructed one — counters zero, no estimates, logical clock
// rebased to the fresh hardware reading.
func TestNodeResetClearsState(t *testing.T) {
	p := Params{Rho: 0.01, MaxDelay: 0.01, BeaconEvery: 0.1, JumpThreshold: 0}
	en, hw, nd := solo(p)
	nd.Start(0)
	en.Run(1)
	nd.OnMessage(1, 50)
	if s := nd.Snap(); s.Jumps == 0 || s.Beacons == 0 {
		t.Fatalf("warm-up execution degenerate: %+v", s)
	}

	en.Reset()
	hw.Reset(1)
	nd.Reset(p)
	s := nd.Snap()
	if s.Logical != 0 || s.Hardware != 0 || s.Messages != 0 || s.Jumps != 0 ||
		s.Beacons != 0 || s.Discoveries != 0 || s.Fast || !math.IsInf(s.MaxEstimate, -1) {
		t.Fatalf("reset node retains state: %+v", s)
	}
	// The node runs normally after reset.
	nd.Start(0)
	en.Run(1)
	if s := nd.Snap(); s.Beacons == 0 || s.Logical <= 0 {
		t.Fatalf("node inert after reset: %+v", s)
	}
}
