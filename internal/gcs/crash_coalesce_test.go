package gcs

import (
	"math"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/des"
	"gcs/internal/dyngraph"
	"gcs/internal/transport"
)

// coalescedPair wires two unit-rate nodes over one static edge with a
// coalescing fixed-delay transport and the sim harness's batch-aware
// handler dispatch (Values -> OnValues, singleton -> OnMessage). Nodes
// are not started, so the only traffic is what the test injects.
func coalescedPair(t *testing.T, p Params, delay float64) (*des.Engine, *transport.Network, []*Node) {
	t.Helper()
	en := des.NewEngine()
	g := dyngraph.NewDynamic(2, []dyngraph.Edge{dyngraph.E(0, 1)})
	net := transport.New(en, g, transport.FixedDelay(delay), delay)
	net.SetCoalescing(true)
	nodes := make([]*Node, 2)
	for i := 0; i < 2; i++ {
		i := i
		nodes[i] = New(i, clock.New(en, 1), p, net, g)
		net.SetHandler(i, func(m transport.Message) {
			if m.Values != nil {
				nodes[i].OnValues(m.From, m.Values)
			} else {
				nodes[i].OnMessage(m.From, m.Value)
			}
		})
	}
	return en, net, nodes
}

// TestCrashBetweenFoldAndCoalescedDelivery pins the interleaving where
// the receiver crashes after two same-tick sends have folded into one
// in-flight batch but before the batch delivers: the transport still
// delivers (to a dead process), the node ignores the whole batch, and a
// later recovery does not resurrect it — the values are gone with the
// rest of the volatile state.
func TestCrashBetweenFoldAndCoalescedDelivery(t *testing.T) {
	p := Params{Rho: 0.01, MaxDelay: 0.01, BeaconEvery: 0.1, JumpThreshold: 0}
	en, net, nodes := coalescedPair(t, p, 0.01)

	// Two sends in one engine event fold into a single two-value flight.
	en.Schedule(1, "test.send", func() {
		net.Send(0, 1, 50)
		net.Send(0, 1, 100)
	})
	// Crash strictly between the fold instant (1.0) and delivery (1.01).
	en.Schedule(1.005, "test.crash", func() { nodes[1].Crash() })
	en.Run(2)

	st := net.Stats()
	if st.Sent != 2 || st.Coalesced != 1 {
		t.Fatalf("sends did not coalesce: %+v", st)
	}
	if st.Delivered != 2 {
		t.Fatalf("batch not delivered (the edge never vanished): %+v", st)
	}
	s := nodes[1].Snap()
	if s.Messages != 0 || s.Jumps != 0 {
		t.Fatalf("crashed node ingested the batch: %+v", s)
	}
	if !math.IsInf(s.MaxEstimate, -1) {
		t.Fatalf("crashed node retained an estimate: %+v", s)
	}

	// Recovery must not resurrect the batch either: the logical clock
	// restarts from hardware and no estimate reappears.
	en.Schedule(2.5, "test.recover", func() { nodes[1].Recover() })
	en.Run(3)
	s = nodes[1].Snap()
	if s.Messages != 0 {
		t.Fatalf("recovery resurrected the dead-delivered batch: %+v", s)
	}
	if math.Abs(s.Logical-s.Hardware) > 1e-9 {
		t.Fatalf("recovered logical %v != hardware %v", s.Logical, s.Hardware)
	}
}

// TestRecoverBeforeCoalescedDelivery pins the complementary
// interleaving: crash and recovery both complete while the batch is
// still in flight. Messages survive a receiver crash/recover cycle —
// only node state is volatile — so the recovered node ingests the full
// batch and jumps to its maximum.
func TestRecoverBeforeCoalescedDelivery(t *testing.T) {
	p := Params{Rho: 0.01, MaxDelay: 0.01, BeaconEvery: 0.1, JumpThreshold: 0}
	en, net, nodes := coalescedPair(t, p, 0.01)

	en.Schedule(1, "test.send", func() {
		net.Send(0, 1, 50)
		net.Send(0, 1, 100)
	})
	en.Schedule(1.002, "test.crash", func() { nodes[1].Crash() })
	en.Schedule(1.005, "test.recover", func() { nodes[1].Recover() })
	en.Run(2)

	// The recovered node's rejoin beacons add their own (singleton)
	// traffic on top of the injected batch, so only the fold is pinned.
	if st := net.Stats(); st.Coalesced != 1 || st.Delivered < 2 {
		t.Fatalf("batch lost in flight: %+v", st)
	}
	s := nodes[1].Snap()
	if s.Messages != 2 {
		t.Fatalf("recovered node counted %d values, want the full batch of 2", s.Messages)
	}
	// With threshold 0 the fold jumps once, straight to the batch max
	// (conservatively aged, so slightly below 100 plus elapsed credit).
	if s.Jumps != 1 {
		t.Fatalf("fold jumped %d times, want 1", s.Jumps)
	}
	if s.Logical < 90 {
		t.Fatalf("recovered node never caught up to the batch max: L=%v", s.Logical)
	}
}
