// Package gcs implements the gradient clock synchronization node of
// Kuhn, Locher, Oshman, "Gradient Clock Synchronization in Dynamic
// Networks" (SPAA 2009). Each node owns a drifting hardware clock and
// maintains a logical clock L_u that
//
//   - never decreases and always increases at least at the hardware rate,
//   - periodically broadcasts its value to the current neighbors
//     (a subjective beacon every BeaconEvery units of hardware time),
//   - jumps forward to the largest remote clock estimate when that
//     estimate exceeds L_u by more than JumpThreshold (with threshold 0
//     this is the max-propagation rule that yields the global skew bound
//     of O(maxDelay * D) per propagation hop),
//   - runs at the fast rate (1+Mu) times the hardware rate while some
//     current neighbor is ahead by more than Kappa, so large local skew
//     is caught up at the fast rate — the gradient property's catch-up
//     rule, with Kappa set by the Section 5 parameter schedule
//     (KappaSchedule: the largest gap staleness alone can fabricate, as
//     a function of Rho, Mu, MaxDelay, and BeaconEvery), and
//   - beacons immediately over a fresh edge (OnEdgeAdded neighbor
//     discovery) instead of waiting out the beacon period, which is what
//     the catch-up argument assumes of nodes that become adjacent.
//
// Remote estimates are aged conservatively at (1-rho)/(1+rho) times the
// local hardware rate: the source's logical clock is guaranteed to have
// advanced at least that much, so estimates are always lower bounds on
// the source's current value and a jump can never overshoot the true
// network maximum.
//
// The node is written entirely against the harness seam (internal/seam):
// it reads time and arms subjective timers through seam.Clock/Timer and
// talks to the world through seam.Sender/Topology, so the same code runs
// under the discrete-event simulator (internal/sim) and the real-time
// runtime (internal/rt). It is single-threaded by contract — the owning
// harness serializes every entry point.
package gcs

import (
	"errors"
	"fmt"
	"math"

	"gcs/internal/seam"
)

// MuDisabled requests the jump-only regime: fast-rate catch-up is
// switched off entirely (effective Mu of zero). The zero value of Mu
// keeps meaning "unset, fill the default" so that zero-valued Params
// stay usable, which previously made an explicit zero boost
// inexpressible — WithDefaults silently rewrote Mu: 0 to Mu: 1. Any
// negative Mu is treated as this sentinel.
const MuDisabled = -1

// Params configures one node's algorithm.
type Params struct {
	// Rho is the hardware clock drift bound: rates stay in [1-Rho, 1+Rho].
	Rho float64
	// MaxDelay is the transport's delay bound; used only for documentation
	// and for derived defaults.
	MaxDelay float64
	// BeaconEvery is the hardware-time interval between beacons.
	BeaconEvery float64
	// Kappa is the local-skew threshold: a current neighbor estimated
	// ahead by more than Kappa puts the node into fast mode. Zero means
	// unset; WithDefaults fills the Section 5 schedule (KappaSchedule).
	Kappa float64
	// Mu is the fast-rate boost: in fast mode the logical clock runs at
	// (1+Mu) times the hardware rate. Catch-up converges when
	// (1+Mu)(1-Rho) > 1+Rho, i.e. Mu > 2*Rho/(1-Rho). Zero means unset
	// (WithDefaults fills 1); pass MuDisabled (any negative value) for an
	// explicit zero boost, the jump-only regime.
	Mu float64
	// JumpThreshold is how far the global max estimate must exceed L_u
	// before the node jumps to it. 0 gives the pure max-propagation rule;
	// math.Inf(1) disables jumps entirely so all catch-up happens at the
	// fast rate.
	JumpThreshold float64
}

// KappaSchedule is the paper's Section 5 blocking/gradient threshold as
// a function of the model parameters: the largest apparent gap that
// estimate staleness alone can fabricate. A current neighbor's estimate
// is stale by at most one beacon interval (real time
// beaconEvery/(1-rho)) plus one message delay; over that window the
// neighbor's logical clock advances at most (1+mu)(1+rho) per unit real
// time (it may itself be in fast mode) while conservative aging credits
// at least (1-rho)^2/(1+rho). An estimated gap above the difference
// therefore witnesses genuine local skew: fast mode never triggers on a
// synchronized pair, while every real gap above Kappa is caught up at
// the fast rate — the two facts the gradient (Section 5) argument
// balances.
func KappaSchedule(rho, mu, maxDelay, beaconEvery float64) float64 {
	if mu < 0 {
		mu = 0
	}
	w := beaconEvery/(1-rho) + maxDelay
	return ((1+mu)*(1+rho) - (1-rho)*(1-rho)/(1+rho)) * w
}

// WithDefaults fills unset fields with reasonable values. It is
// idempotent: explicit sentinel values (MuDisabled) pass through.
func (p Params) WithDefaults() Params {
	if p.Rho == 0 {
		p.Rho = 0.01
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 0.01
	}
	if p.BeaconEvery == 0 {
		p.BeaconEvery = 0.1
	}
	if p.Mu == 0 {
		p.Mu = 1
	}
	if p.Kappa == 0 {
		p.Kappa = KappaSchedule(p.Rho, p.Mu, p.MaxDelay, p.BeaconEvery)
	}
	return p
}

// EffectiveMu returns the fast-rate boost actually applied: Mu, with the
// MuDisabled sentinel (any negative value) mapped to zero.
func (p Params) EffectiveMu() float64 {
	if p.Mu < 0 {
		return 0
	}
	return p.Mu
}

// FastRateEnabled reports whether the node ever enters fast mode: a
// disabled or zero boost makes the fast regime a no-op, so the node
// skips the neighbor scan entirely (the jump-only algorithm).
func (p Params) FastRateEnabled() bool { return p.EffectiveMu() > 0 }

// Validate reports whether the (defaulted) parameters are usable, as an
// error: the harness's Config.Validate path surfaces it to callers
// instead of panicking mid-run.
func (p Params) Validate() error {
	if p.Rho < 0 || p.Rho >= 1 {
		return fmt.Errorf("gcs: rho %v outside [0, 1)", p.Rho)
	}
	if p.BeaconEvery <= 0 {
		return errors.New("gcs: BeaconEvery must be positive")
	}
	if p.Kappa <= 0 {
		return errors.New("gcs: Kappa must be positive (a zero threshold would Zeno the catch-up loop)")
	}
	if math.IsNaN(p.Mu) || p.JumpThreshold < 0 {
		return errors.New("gcs: NaN Mu or negative JumpThreshold")
	}
	return nil
}

// validate keeps the panic contract of New/Reset — a node constructed
// with invalid parameters is a programmer error, and pre-validated
// harness paths must not pay an error-branch per node.
func (p Params) validate() {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
}

// estimate is the largest value heard from one source, stored normalized
// to local hardware time zero: the aged value at local reading h is
// norm + ageFactor*h. Normalizing makes the aged ordering of estimates
// time-invariant, so the global maximum is maintainable in O(1).
type estimate struct {
	norm float64
}

// Snapshot is a point-in-time view of one node's state, for assertions.
type Snapshot struct {
	ID          int
	Hardware    float64
	Logical     float64
	MaxEstimate float64 // -Inf if nothing heard yet
	Messages    int
	Jumps       int
	Beacons     int
	Discoveries int
	Fast        bool
}

// noopSender and noopTopo are the defaults for isolated unit tests: no
// neighbors, no sends.
type noopSender struct{}

func (noopSender) Broadcast(int, float64) int  { return 0 }
func (noopSender) Send(int, int, float64) bool { return false }

type noopTopo struct{}

func (noopTopo) AppendNeighbors(_ int, buf []int) []int { return buf }

// Node is one synchronization participant. It is single-threaded, owned
// by its harness (the clock's engine in the DES, the node goroutine in
// the real-time runtime).
type Node struct {
	id  int
	clk seam.Clock
	p   Params

	// net carries beacons to the current neighbors (Broadcast) and the
	// discovery unicast over a fresh edge (Send). topo enumerates the
	// current neighborhood for the fast-mode scan; nbuf is its reused
	// scratch buffer so the per-message path does not allocate.
	net  seam.Sender
	topo seam.Topology
	nbuf []int

	// Logical clock as a line in hardware time:
	// L(h) = baseL + mult*(h - baseH), rebased at every regime change.
	baseH, baseL, mult float64

	est map[int]estimate
	// maxNorm is the running maximum of est[*].norm (-Inf when empty);
	// per-source norms only ever increase, so it never needs a rescan.
	maxNorm float64
	// catchupT re-evaluates the regime exactly when L reaches the fast
	// target; beaconT drives the periodic beacon loop. Both are created
	// once in New and re-armed in place, so the per-tick path does not
	// allocate and a crash can silence either.
	catchupT seam.Timer
	beaconT  seam.Timer
	// down marks a crashed node (fault injection): it neither beacons
	// nor reacts to incoming traffic until Recover.
	down bool

	msgs, jumps, beacons, discoveries int
	fast                              bool
}

// New creates a node. net and topo wire it to the harness's transport
// and graph; either may be nil for isolated unit tests (treated as no
// neighbors, no sends).
func New(id int, clk seam.Clock, p Params, net seam.Sender, topo seam.Topology) *Node {
	p = p.WithDefaults()
	p.validate()
	if net == nil {
		net = noopSender{}
	}
	if topo == nil {
		topo = noopTopo{}
	}
	nd := &Node{
		id:      id,
		clk:     clk,
		p:       p,
		net:     net,
		topo:    topo,
		baseH:   clk.Now(),
		baseL:   clk.Now(),
		mult:    1,
		est:     make(map[int]estimate),
		maxNorm: math.Inf(-1),
	}
	nd.catchupT = clk.NewTimer("gcs.catchup", nd.recompute)
	nd.beaconT = clk.NewTimer("gcs.beacon", func() {
		nd.emit()
		nd.beaconT.Reset(nd.p.BeaconEvery)
	})
	return nd
}

// Reset returns the node to its initial state under (possibly new)
// parameters, keeping the seam wiring, the timers, the estimate map's
// buckets, and the neighbor scratch buffer, so re-running a node on a
// reused arena allocates nothing. The clock must already have been
// reset by the harness; the logical clock restarts at the (fresh)
// hardware reading.
func (nd *Node) Reset(p Params) {
	p = p.WithDefaults()
	p.validate()
	nd.p = p
	h := nd.clk.Now()
	nd.baseH, nd.baseL, nd.mult = h, h, 1
	clear(nd.est)
	nd.maxNorm = math.Inf(-1)
	nd.catchupT.Stop()
	nd.beaconT.Stop()
	nd.down = false
	nd.msgs, nd.jumps, nd.beacons, nd.discoveries = 0, 0, 0, 0
	nd.fast = false
}

// OnEdgeAdded reacts to a fresh incident edge: the node immediately
// beacons its logical value to the new neighbor instead of waiting up to
// BeaconEvery for the periodic tick. The paper's catch-up argument
// assumes exactly this — a node that becomes adjacent to a lagging (or
// leading) clock exchanges values within one message delay, so
// topology-created local skew starts being corrected at the fast rate
// (or by a jump) right away.
func (nd *Node) OnEdgeAdded(peer int) {
	if nd.down {
		return
	}
	nd.recompute()
	nd.discoveries++
	nd.net.Send(nd.id, peer, nd.Logical())
}

// ID returns the node's identifier.
func (nd *Node) ID() int { return nd.id }

// Clock returns the node's hardware clock, as the seam interface the
// node itself sees. Harnesses keep the concrete handle (for rate drift
// and reset); tests that only need readings can go through this.
func (nd *Node) Clock() seam.Clock { return nd.clk }

// Start installs the beacon loop. phase is the hardware-time offset of
// the first beacon (stagger nodes to avoid synchronized bursts); it must
// be nonnegative.
func (nd *Node) Start(phase float64) {
	if phase < 0 {
		panic("gcs: negative beacon phase")
	}
	nd.beaconT.Reset(phase)
}

// Crash takes the node offline — the fault subsystem's crash-stop /
// crash-recover schedules call it from injected events. The pending
// beacon and catch-up timers are cancelled and incoming traffic is
// ignored until Recover; counters are preserved (a crash is a fault,
// not a reset), so report totals stay exact across crashes.
func (nd *Node) Crash() {
	if nd.down {
		return
	}
	nd.down = true
	nd.beaconT.Stop()
	nd.catchupT.Stop()
	nd.fast = false
}

// Recover brings a crashed node back. Volatile algorithm state —
// estimates, regime, the logical clock's accumulated lead — is lost,
// exactly as in Reset: the logical clock restarts at the current
// hardware reading. The node rejoins through the existing discovery
// mechanism by beaconing immediately, the same exchange a fresh edge
// triggers, so its neighbors re-learn it within one message delay.
func (nd *Node) Recover() {
	if !nd.down {
		return
	}
	nd.down = false
	h := nd.clk.Now()
	nd.baseH, nd.baseL, nd.mult = h, h, 1
	clear(nd.est)
	nd.maxNorm = math.Inf(-1)
	nd.fast = false
	nd.beaconT.Reset(0)
}

// Down reports whether the node is currently crashed.
func (nd *Node) Down() bool { return nd.down }

// Logical returns L_u at the clock's current reading.
func (nd *Node) Logical() float64 {
	return nd.logicalAt(nd.clk.Now())
}

func (nd *Node) logicalAt(h float64) float64 {
	return nd.baseL + nd.mult*(h-nd.baseH)
}

// ageFactor is the guaranteed minimum progress of any remote logical
// clock per unit of local hardware time: the remote hardware runs at
// >= (1-rho) real rate and the local one at <= (1+rho).
func (nd *Node) ageFactor() float64 {
	return (1 - nd.p.Rho) / (1 + nd.p.Rho)
}

func (nd *Node) agedEstimate(e estimate, h float64) float64 {
	return e.norm + nd.ageFactor()*h
}

// OnMessage ingests a beacon carrying the sender's logical value and
// re-evaluates the jump and fast-mode rules.
func (nd *Node) OnMessage(from int, value float64) {
	if nd.down {
		// A crashed process receives nothing: the transport delivered to a
		// dead node, and the value is lost with the rest of its state.
		return
	}
	h := nd.clk.Now()
	nd.msgs++
	norm := value - nd.ageFactor()*h
	if e, ok := nd.est[from]; !ok || norm > e.norm {
		nd.est[from] = estimate{norm: norm}
		if norm > nd.maxNorm {
			nd.maxNorm = norm
		}
	}
	nd.recompute()
}

// OnValues ingests a coalesced batch of beacons from one sender in a
// single pass: only the largest value can raise the stored estimate (all
// values share the ingest instant, so aging is identical), so the batch
// folds to one max scan, one estimate update, and one recompute instead
// of len(values) of each. Ingesting the values one OnMessage at a time
// reaches the same estimate and regime; only the jump counter can differ
// (a staged arrival may jump more than once where the fold jumps once).
func (nd *Node) OnValues(from int, values []float64) {
	if nd.down || len(values) == 0 {
		return
	}
	h := nd.clk.Now()
	nd.msgs += len(values)
	maxV := values[0]
	for _, v := range values[1:] {
		if v > maxV {
			maxV = v
		}
	}
	norm := maxV - nd.ageFactor()*h
	if e, ok := nd.est[from]; !ok || norm > e.norm {
		nd.est[from] = estimate{norm: norm}
		if norm > nd.maxNorm {
			nd.maxNorm = norm
		}
	}
	nd.recompute()
}

// emit broadcasts the node's logical value after refreshing its regime.
func (nd *Node) emit() {
	if nd.down {
		// Crash cancels the beacon timer, so this only guards a beacon
		// event already in the same harness tick as the crash.
		return
	}
	nd.recompute()
	nd.beacons++
	nd.net.Broadcast(nd.id, nd.Logical())
}

// recompute rebases the logical clock at the current instant, applies the
// jump rule against the global max estimate, and selects the rate regime
// from the current neighbors' estimates.
func (nd *Node) recompute() {
	h := nd.clk.Now()
	L := nd.logicalAt(h)

	maxEst := nd.maxNorm + nd.ageFactor()*h
	if maxEst-L > nd.p.JumpThreshold {
		L = maxEst
		nd.jumps++
	}

	// Fast mode: some current neighbor is estimated ahead by more than
	// Kappa. target is the largest such estimate; the catch-up timer
	// re-evaluates exactly when L reaches it. With the fast rate disabled
	// (MuDisabled, the jump-only regime) the scan is skipped: a boost of
	// zero could never catch up and would only rearm useless timers.
	fast := false
	target := math.Inf(-1)
	if nd.p.FastRateEnabled() {
		nd.nbuf = nd.topo.AppendNeighbors(nd.id, nd.nbuf[:0])
		for _, v := range nd.nbuf {
			e, ok := nd.est[v]
			if !ok {
				continue
			}
			if est := nd.agedEstimate(e, h); est-L > nd.p.Kappa {
				fast = true
				if est > target {
					target = est
				}
			}
		}
	}

	nd.baseH, nd.baseL = h, L
	nd.fast = fast
	if fast {
		nd.mult = 1 + nd.p.EffectiveMu()
	} else {
		nd.mult = 1
	}

	nd.catchupT.Stop()
	if fast {
		// L reaches target after (target-L)/mult hardware time; the
		// estimate will have aged less than that (ageFactor < 1 <= mult),
		// so each round shrinks the gap geometrically until it is <= Kappa.
		dH := (target - L) / nd.mult
		nd.catchupT.Reset(dH)
	}
}

// Snap returns a snapshot of the node's state at the current time.
func (nd *Node) Snap() Snapshot {
	h := nd.clk.Now()
	maxEst := nd.maxNorm + nd.ageFactor()*h
	return Snapshot{
		ID:          nd.id,
		Hardware:    h,
		Logical:     nd.logicalAt(h),
		MaxEstimate: maxEst,
		Messages:    nd.msgs,
		Jumps:       nd.jumps,
		Beacons:     nd.beacons,
		Discoveries: nd.discoveries,
		Fast:        nd.fast,
	}
}
