package gcs

import (
	"math"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/des"
)

// TestMuDisabledSentinelSurvivesDefaults is the regression test for the
// WithDefaults clobbering bug: an explicit zero fast-rate boost (the
// jump-only regime) used to be inexpressible because Mu: 0 was silently
// rewritten to Mu: 1. The MuDisabled sentinel must survive WithDefaults
// (including a second application — sim applies defaults before New
// applies them again) with an effective boost of zero.
func TestMuDisabledSentinelSurvivesDefaults(t *testing.T) {
	p := Params{Mu: MuDisabled}.WithDefaults()
	if p.Mu >= 0 {
		t.Fatalf("MuDisabled rewritten to %v by WithDefaults", p.Mu)
	}
	if p.EffectiveMu() != 0 || p.FastRateEnabled() {
		t.Fatalf("sentinel did not disable the fast rate: effective=%v enabled=%v",
			p.EffectiveMu(), p.FastRateEnabled())
	}
	if again := p.WithDefaults(); again.Mu != p.Mu {
		t.Fatalf("WithDefaults not idempotent on the sentinel: %v -> %v", p.Mu, again.Mu)
	}
	// The zero value still means unset and keeps the default boost.
	if def := (Params{}).WithDefaults(); def.Mu != 1 {
		t.Fatalf("unset Mu defaulted to %v, want 1", def.Mu)
	}
}

// TestJumpOnlyRegimeNeverEntersFastMode pins the semantics of the
// sentinel end to end: with the fast rate disabled and a neighbor far
// ahead, the node must stay in the normal regime (no fast mode, no
// catch-up timers) and close the gap through jumps alone.
func TestJumpOnlyRegimeNeverEntersFastMode(t *testing.T) {
	en := des.NewEngine()
	hw := clock.New(en, 1)
	p := Params{Rho: 0.01, BeaconEvery: 0.1, Kappa: 0.5, Mu: MuDisabled, JumpThreshold: 0}
	nd := New(0, hw, p, nil, nbrs{1})
	en.Schedule(1, "inject", func() { nd.OnMessage(1, 100) })
	en.Run(2)
	s := nd.Snap()
	if s.Fast {
		t.Fatal("fast mode entered with the fast rate disabled")
	}
	if s.Jumps != 1 || s.Logical < 100 {
		t.Fatalf("jump rule did not fire: %+v", s)
	}
	if hw.PendingTimers() != 0 {
		t.Fatalf("catch-up timers armed in the jump-only regime: %d pending", hw.PendingTimers())
	}
}

// TestKappaDefaultFollowsSchedule pins the Section 5 parameter schedule:
// an unset Kappa is filled from KappaSchedule, not the old ad-hoc
// 4*(MaxDelay+BeaconEvery).
func TestKappaDefaultFollowsSchedule(t *testing.T) {
	p := Params{Rho: 0.02, MaxDelay: 0.05, BeaconEvery: 0.3, Mu: 2}.WithDefaults()
	want := KappaSchedule(0.02, 2, 0.05, 0.3)
	if p.Kappa != want {
		t.Fatalf("default Kappa = %v, want schedule value %v", p.Kappa, want)
	}
	// Explicit Kappa passes through untouched.
	if q := (Params{Kappa: 0.7}).WithDefaults(); q.Kappa != 0.7 {
		t.Fatalf("explicit Kappa rewritten to %v", q.Kappa)
	}
	// The schedule must exceed the pure staleness noise floor (mu = 0):
	// otherwise fast mode would trigger on a synchronized pair.
	if KappaSchedule(0.02, 2, 0.05, 0.3) <= KappaSchedule(0.02, 0, 0.05, 0.3) {
		t.Fatal("schedule not monotone in mu")
	}
}

// captureSender records discovery unicasts: the seam.Sender for tests
// that watch what a node sends without wiring a transport.
type captureSender struct {
	sentTo  int
	sentVal float64
	sends   int
}

func (c *captureSender) Broadcast(int, float64) int { return 0 }

func (c *captureSender) Send(_, to int, v float64) bool {
	c.sentTo, c.sentVal, c.sends = to, v, c.sends+1
	return true
}

// TestDiscoveryBeaconsImmediately checks OnEdgeAdded: the node unicasts
// its current logical value to the new neighbor right away, without
// waiting for the periodic beacon.
func TestDiscoveryBeaconsImmediately(t *testing.T) {
	en := des.NewEngine()
	hw := clock.New(en, 1)
	cap := &captureSender{}
	nd := New(0, hw, Params{Rho: 0.01, BeaconEvery: 100}, cap, nil)
	en.Schedule(3, "edge", func() { nd.OnEdgeAdded(9) })
	en.Run(5)
	if cap.sends != 1 || cap.sentTo != 9 {
		t.Fatalf("discovery unicast: sends=%d to=%d", cap.sends, cap.sentTo)
	}
	if math.Abs(cap.sentVal-3) > 1e-9 {
		t.Fatalf("discovery beacon carried %v, want the logical value ~3", cap.sentVal)
	}
	if nd.Snap().Discoveries != 1 {
		t.Fatalf("discoveries = %d, want 1", nd.Snap().Discoveries)
	}
	// Without a sender the callback is still safe.
	bare := New(1, clock.New(en, 1), Params{}, nil, nil)
	bare.OnEdgeAdded(0)
	if bare.Snap().Discoveries != 1 {
		t.Fatal("OnEdgeAdded without a sender did not count")
	}
}
