module gcs

go 1.24
