package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"gcs/internal/sim"
)

// gradientCell is one scenario of the sweep grid together with its
// per-distance verdict, marshaled into the JSON report.
type gradientCell struct {
	Scenario string  `json:"scenario"`
	Topology string  `json:"topology"`
	Driver   string  `json:"driver"`
	Churn    string  `json:"churn"`
	N        int     `json:"n"`
	MaxDist  int     `json:"max_distance"`
	Samples  int     `json:"samples"`
	Epochs   int     `json:"distance_recomputes"`
	MaxSkew  float64 `json:"max_global_skew"`
	// PerDistanceSkew[d] / PerDistanceBound[d] pair observation and
	// analytic bound; index 0 unused.
	PerDistanceSkew  []float64 `json:"per_distance_skew"`
	PerDistanceBound []float64 `json:"per_distance_bound"`
	// WorstRatio is max over d of skew(d)/bound(d).
	WorstRatio float64 `json:"worst_ratio"`
	Violated   bool    `json:"violated"`
}

// runGradient implements `gcsim gradient`: it sweeps the gradient
// verification grid — every topology x driver combination plus the
// churn scenarios — with the per-sample GradientChecker attached,
// prints observed per-distance local skew against Config.GradientBound,
// and dumps gradient_skew.csv plus gradient_report.json for CI
// artifacts. The grid fans across -workers arena-backed goroutines
// (sim.RunSweep), with output bit-identical to a serial sweep. It exits
// nonzero if any scenario violates its bound at any distance.
func runGradient(args []string) {
	fs := flag.NewFlagSet("gcsim gradient", flag.ExitOnError)
	var (
		n       = fs.Int("n", 36, "nodes per scenario (grid topology uses the nearest WxH factorization)")
		seed    = fs.Uint64("seed", 1, "PRNG seed")
		horizon = fs.Float64("horizon", 30, "simulated seconds per scenario")
		rho     = fs.Float64("rho", 0.01, "hardware clock drift bound")
		delay   = fs.Float64("delay", 0.01, "message delay bound (seconds)")
		beacon  = fs.Float64("beacon", 0.1, "beacon interval (hardware time)")
		sample  = fs.Float64("sample", 0.1, "skew sampling period (real time)")
		workers = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		out     = fs.String("out", ".", "directory for gradient_skew.csv and gradient_report.json")
	)
	ff := addFaultFlags(fs)
	fs.Parse(args)
	if *n < 4 {
		fail("gradient: -n must be at least 4")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("gradient: %v", err)
	}

	gw := gridW(*n)
	topologies := []struct {
		name string
		spec sim.TopologySpec
		ch   sim.ChurnSpec
	}{
		{"Line", sim.TopologySpec{Kind: sim.TopoLine}, sim.ChurnSpec{}},
		{"Ring", sim.TopologySpec{Kind: sim.TopoRing}, sim.ChurnSpec{}},
		{"Grid", sim.TopologySpec{Kind: sim.TopoGrid, W: gw, H: *n / gw}, sim.ChurnSpec{}},
		{"Ring+Volatile", sim.TopologySpec{Kind: sim.TopoRing}, sim.ChurnSpec{
			Kind: sim.ChurnVolatile, Lifetime: 1.5, Absence: 1.0, ExtraEdges: *n / 2,
		}},
		{"RotatingStar", sim.TopologySpec{}, sim.ChurnSpec{
			Kind: sim.ChurnRotatingStar, Period: 2, Overlap: 0.5,
		}},
	}
	drivers := []sim.DriverSpec{
		{Kind: sim.DriveBangBang, Interval: 0.7},
		{Kind: sim.DriveRandomWalk, Interval: 0.5},
	}

	var cells []sim.SweepCell
	for _, topo := range topologies {
		for _, drv := range drivers {
			cfg := sim.Config{
				N:             *n,
				Seed:          *seed,
				Horizon:       *horizon,
				Rho:           *rho,
				MaxDelay:      *delay,
				Topology:      topo.spec,
				Driver:        drv,
				Churn:         topo.ch,
				SampleEvery:   *sample,
				CheckGradient: true,
				Faults:        ff.spec(),
			}
			cfg.Node.BeaconEvery = *beacon
			cells = append(cells, sim.SweepCell{
				Name: fmt.Sprintf("%s/%v", topo.name, drv.Kind),
				Cfg:  cfg,
			})
		}
	}
	results, err := sim.RunSweep(cells, *workers)
	if err != nil {
		fail("gradient: %v", err)
	}

	var csv strings.Builder
	csv.WriteString("scenario,topology,driver,churn,n,d,max_skew,bound,ratio\n")
	gcells := make([]gradientCell, 0, len(results))
	violations := 0

	fmt.Printf("%-28s %8s %8s %12s %12s %12s %10s\n",
		"scenario", "samples", "maxDist", "worstSkew", "worstBound", "worstRatio", "epochs")
	for _, res := range results {
		rpt := res.Report
		maxDist := 0
		if len(rpt.PerDistanceSkew) > 0 {
			maxDist = len(rpt.PerDistanceSkew) - 1
		}
		topoName := res.Cfg.Topology.Kind.String()
		if res.Cfg.Churn.Kind == sim.ChurnRotatingStar {
			// The rotating star ignores the topology spec entirely;
			// labeling it with the zero spec's kind would be wrong.
			topoName = "-"
		}
		cell := gradientCell{
			Scenario: res.Name,
			Topology: topoName,
			Driver:   res.Cfg.Driver.Kind.String(),
			Churn:    res.Cfg.Churn.Kind.String(),
			N:        *n,
			MaxDist:  maxDist,
			Samples:  rpt.Samples,
			Epochs:   rpt.DistanceRecomputes,
			MaxSkew:  rpt.MaxGlobalSkew,
			// Index 0 of the per-distance arrays is the unused
			// distance-0 slot, so JSON consumers index by d directly.
			PerDistanceSkew:  []float64{0},
			PerDistanceBound: []float64{0},
		}
		worstD := 0
		for d := 1; d <= maxDist; d++ {
			skew := rpt.PerDistanceSkew[d]
			bound := res.Cfg.GradientBound(d)
			ratio := skew / bound
			cell.PerDistanceSkew = append(cell.PerDistanceSkew, skew)
			cell.PerDistanceBound = append(cell.PerDistanceBound, bound)
			if ratio > cell.WorstRatio {
				cell.WorstRatio = ratio
				worstD = d
			}
			if skew > bound {
				cell.Violated = true
			}
			fmt.Fprintf(&csv, "%s,%s,%s,%s,%d,%d,%g,%g,%g\n",
				cell.Scenario, cell.Topology, cell.Driver, cell.Churn, *n, d, skew, bound, ratio)
		}
		if res.Cfg.Faults.Enabled() {
			// Faulted gradient runs may transiently breach per-distance
			// bounds; the gate becomes global re-convergence.
			cell.Violated = math.IsInf(rpt.ReconvergenceTime, 1)
		}
		if cell.Violated {
			violations++
		}
		gcells = append(gcells, cell)
		fmt.Printf("%-28s %8d %8d %12.6f %12.6f %12.4f %10d\n",
			cell.Scenario, cell.Samples, cell.MaxDist,
			cell.PerDistanceSkew[worstD], cell.PerDistanceBound[worstD], cell.WorstRatio, cell.Epochs)
	}

	csvPath := filepath.Join(*out, "gradient_skew.csv")
	if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
		fail("gradient: %v", err)
	}
	report := struct {
		Seed        uint64         `json:"seed"`
		N           int            `json:"n"`
		Horizon     float64        `json:"horizon"`
		Rho         float64        `json:"rho"`
		MaxDelay    float64        `json:"max_delay"`
		BeaconEvery float64        `json:"beacon_every"`
		SampleEvery float64        `json:"sample_every"`
		Cells       []gradientCell `json:"cells"`
	}{*seed, *n, *horizon, *rho, *delay, *beacon, *sample, gcells}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail("gradient: %v", err)
	}
	jsonPath := filepath.Join(*out, "gradient_report.json")
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		fail("gradient: %v", err)
	}
	fmt.Printf("wrote %s and %s\n", csvPath, jsonPath)

	if violations > 0 {
		fail("gradient: %d scenario(s) exceeded GradientBound(d)", violations)
	}
	fmt.Println("ok: per-distance local skew within GradientBound(d) on every scenario")
}

// gridW returns the largest divisor of n not exceeding its square root,
// giving the most square WxH factorization of the grid scenario.
func gridW(n int) int {
	w := 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w
}
