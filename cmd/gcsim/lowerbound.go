package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gcs/internal/sim"
)

// runLowerBound implements `gcsim lowerbound`: it sweeps the Theorem 4.1
// two-chain adversarial scenario over several node counts, prints the
// observed-vs-analytic skew table, and dumps the skew time series as CSV
// plus the full report as JSON for plotting. Serially (the default) one
// arena and one trace recorder are reshaped across the whole sweep; with
// -workers > 1 the node counts fan across arena-backed goroutines, each
// with a private recorder, and results (CSV rows included) are emitted
// in sweep order — bit-identical to the serial output.
func runLowerBound(args []string) {
	fs := flag.NewFlagSet("gcsim lowerbound", flag.ExitOnError)
	var (
		nsFlag  = fs.String("n", "32,64,128,256", "comma-separated node counts to sweep")
		seed    = fs.Uint64("seed", 1, "PRNG seed (beacon phases; the adversary is deterministic)")
		rho     = fs.Float64("rho", 0.01, "hardware clock drift bound")
		delay   = fs.Float64("delay", 0.01, "message delay bound charged on chain A (seconds)")
		eps     = fs.Float64("eps", 0, "delay charged on chain B; 0 = delay/1000")
		beacon  = fs.Float64("beacon", 0.1, "beacon interval (hardware time)")
		sample  = fs.Float64("sample", 0.1, "skew sampling period (real time)")
		horizon = fs.Float64("horizon", 0, "run length; 0 derives it from the rate schedule per n")
		workers = fs.Int("workers", 1, "parallel sweep workers (0 = GOMAXPROCS, 1 = serial with shared arena)")
		out     = fs.String("out", ".", "directory for lowerbound_skew.csv and lowerbound_report.json")
	)
	fs.Parse(args)

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fail("lowerbound: %v", err)
	}
	// Validate flag values here so bad input gets a CLI error, not a
	// panic out of the sim layer's config invariants.
	if *rho <= 0 || *rho >= 1 {
		fail("lowerbound: -rho %v outside (0, 1)", *rho)
	}
	if *delay <= 0 {
		fail("lowerbound: -delay must be positive, got %v", *delay)
	}
	if *eps < 0 || *eps > *delay {
		fail("lowerbound: -eps %v outside [0, -delay=%v] (0 means delay/1000)", *eps, *delay)
	}
	if *beacon <= 0 || *sample <= 0 {
		fail("lowerbound: -beacon and -sample must be positive")
	}
	if *horizon < 0 {
		fail("lowerbound: -horizon must be nonnegative (0 derives it per n)")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("lowerbound: %v", err)
	}

	base := sim.LowerBoundConfig{
		Seed:        *seed,
		Rho:         *rho,
		MaxDelay:    *delay,
		Epsilon:     *eps,
		BeaconEvery: *beacon,
		SampleEvery: *sample,
		Horizon:     *horizon,
	}

	var csv strings.Builder
	csv.WriteString("n,t,min,max,skew\n")
	results, rows := lowerBoundSweep(base, ns, *workers)
	fmt.Printf("%6s %8s %14s %14s %12s %12s\n",
		"n", "maxDist", "maxSkew", "finalSkew", "omega(n)", "upperBound")
	for i, res := range results {
		csv.WriteString(rows[i])
		fmt.Printf("%6d %8d %14.6f %14.6f %12.6f %12.2f\n",
			res.N, res.MaxDist, res.MaxGlobalSkew, res.FinalGlobalSkew, res.OmegaSkew, res.UpperBound)
	}

	if len(results) > 1 {
		first, last := results[0], results[len(results)-1]
		ratio := last.MaxGlobalSkew / first.MaxGlobalSkew
		fmt.Printf("growth: skew(n=%d)/skew(n=%d) = %.2fx over a %.0fx increase in n\n",
			last.N, first.N, ratio, float64(last.N)/float64(first.N))
	}

	csvPath := filepath.Join(*out, "lowerbound_skew.csv")
	if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
		fail("lowerbound: %v", err)
	}
	effEps := *eps
	if effEps == 0 {
		effEps = *delay / 1000
	}
	report := struct {
		Seed        uint64                 `json:"seed"`
		Rho         float64                `json:"rho"`
		MaxDelay    float64                `json:"max_delay"`
		Epsilon     float64                `json:"epsilon"`
		BeaconEvery float64                `json:"beacon_every"`
		SampleEvery float64                `json:"sample_every"`
		Results     []sim.LowerBoundResult `json:"results"`
	}{*seed, *rho, *delay, effEps, *beacon, *sample, results}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail("lowerbound: %v", err)
	}
	jsonPath := filepath.Join(*out, "lowerbound_report.json")
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		fail("lowerbound: %v", err)
	}
	fmt.Printf("wrote %s and %s\n", csvPath, jsonPath)
}

// lowerBoundSweep runs the Theorem 4.1 scenario at each node count via
// sim.LowerBoundSweepParallel and returns, in ns order, the results and
// the per-run CSV trace rows (rendered synchronously in the collect
// callback, since the recorder is reshaped for the worker's next run).
func lowerBoundSweep(base sim.LowerBoundConfig, ns []int, workers int) ([]sim.LowerBoundResult, []string) {
	rows := make([]string, len(ns))
	results := sim.LowerBoundSweepParallel(base, ns, workers,
		func(i int, res sim.LowerBoundResult, tr *sim.TraceRecorder) {
			var b strings.Builder
			for s := 0; s < tr.Len(); s++ {
				t, min, max := tr.Skew(s)
				fmt.Fprintf(&b, "%d,%g,%g,%g,%g\n", res.N, t, min, max, max-min)
			}
			rows[i] = b.String()
		})
	return results, rows
}

// parseNs parses a comma-separated list of node counts.
func parseNs(s string) ([]int, error) {
	var ns []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 4 {
			return nil, fmt.Errorf("bad node count %q (need integers >= 4)", part)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("empty node count list")
	}
	return ns, nil
}
