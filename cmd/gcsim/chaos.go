package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gcs/internal/sim"
)

// chaosRow is one chaos-grid cell's outcome in the JSON report.
type chaosRow struct {
	Scenario       string  `json:"scenario"`
	N              int     `json:"n"`
	Seed           uint64  `json:"seed"`
	MaxGlobalSkew  float64 `json:"max_global_skew"`
	Bound          float64 `json:"bound"`
	Drops          uint64  `json:"drops"`
	Dups           uint64  `json:"dups"`
	DelaySpikes    uint64  `json:"delay_spikes"`
	Crashes        uint64  `json:"crashes"`
	Recoveries     uint64  `json:"recoveries"`
	RateExcursions uint64  `json:"rate_excursions"`
	LastFaultT     float64 `json:"last_fault_t"`
	Reconverged    bool    `json:"reconverged"`
	// ReconvergenceTime is seconds from the last fault until the global
	// skew re-entered the analytic bound; -1 when it never did (JSON has
	// no +Inf).
	ReconvergenceTime float64 `json:"reconvergence_time"`
}

// runChaos implements `gcsim chaos`: the fault-injection grid — every
// canonical fault plan (sim.ChaosPlans) crossed with ring, grid, and
// rotating-star scenarios — fanned across arena-backed workers. Every
// cell must actually inject disturbances AND re-converge inside its
// analytic skew bound before the horizon; any cell that does neither
// makes the command exit nonzero, which is the CI robustness gate.
// Results go to chaos_grid.csv and chaos_report.json.
func runChaos(args []string) {
	fs := flag.NewFlagSet("gcsim chaos", flag.ExitOnError)
	var (
		n        = fs.Int("n", 48, "nodes per cell")
		seed     = fs.Uint64("seed", 1, "base seed; each cell derives its own")
		horizon  = fs.Float64("horizon", 12, "simulated seconds per cell (faults stop at half)")
		workers  = fs.Int("workers", 0, "parallel workers across cells — never affects the reports (0 = GOMAXPROCS)")
		parallel = fs.Bool("parallel", false, "run every cell on the sharded parallel engine (its own delay physics)")
		out      = fs.String("out", ".", "directory for chaos_grid.csv and chaos_report.json")
	)
	fs.Parse(args)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("chaos: %v", err)
	}

	cells := sim.ChaosGrid(*n, *seed, *horizon, *parallel)
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("chaos: %d cells (%d plans x 3 scenarios) across %d workers\n",
		len(cells), len(sim.ChaosPlans()), w)
	start := time.Now()
	results, err := sim.RunSweep(cells, *workers)
	if err != nil {
		fail("chaos: %v", err)
	}
	elapsed := time.Since(start)

	var csv strings.Builder
	csv.WriteString("scenario,n,seed,max_global_skew,bound,drops,dups,delay_spikes,crashes,recoveries,rate_excursions,last_fault_t,reconverged,reconvergence_time\n")
	rows := make([]chaosRow, 0, len(results))
	failures := 0
	fmt.Printf("%-16s %10s %10s %7s %7s %7s %8s %7s %7s %10s %11s\n",
		"cell", "maxSkew", "bound", "drops", "dups", "spikes", "crashes", "recov", "rates", "lastFault", "reconverge")
	for _, res := range results {
		rpt := res.Report
		fst := rpt.Faults
		row := chaosRow{
			Scenario:          res.Name,
			N:                 res.Cfg.N,
			Seed:              res.Cfg.Seed,
			MaxGlobalSkew:     rpt.MaxGlobalSkew,
			Bound:             rpt.Bound,
			Drops:             fst.Drops,
			Dups:              fst.Dups,
			DelaySpikes:       fst.DelaySpikes,
			Crashes:           fst.Crashes,
			Recoveries:        fst.Recoveries,
			RateExcursions:    fst.RateExcursions,
			LastFaultT:        fst.LastFaultT,
			Reconverged:       !math.IsInf(rpt.ReconvergenceTime, 1),
			ReconvergenceTime: rpt.ReconvergenceTime,
		}
		if !row.Reconverged {
			row.ReconvergenceTime = -1
		}
		// The gate: every cell must inject at least one disturbance (a
		// quiet cell means the plan is broken) and re-enter its bound.
		if fst.Total() == 0 || !row.Reconverged {
			failures++
		}
		rows = append(rows, row)
		fmt.Fprintf(&csv, "%s,%d,%d,%g,%g,%d,%d,%d,%d,%d,%d,%g,%t,%g\n",
			row.Scenario, row.N, row.Seed, row.MaxGlobalSkew, row.Bound,
			row.Drops, row.Dups, row.DelaySpikes, row.Crashes, row.Recoveries,
			row.RateExcursions, row.LastFaultT, row.Reconverged, row.ReconvergenceTime)
		rc := fmt.Sprintf("%.4fs", row.ReconvergenceTime)
		if !row.Reconverged {
			rc = "NEVER"
		}
		fmt.Printf("%-16s %10.6f %10.4f %7d %7d %7d %8d %7d %7d %10.3f %11s\n",
			row.Scenario, row.MaxGlobalSkew, row.Bound,
			row.Drops, row.Dups, row.DelaySpikes, row.Crashes, row.Recoveries,
			row.RateExcursions, row.LastFaultT, rc)
	}

	csvPath := filepath.Join(*out, "chaos_grid.csv")
	if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
		fail("chaos: %v", err)
	}
	report := struct {
		Seed       uint64     `json:"seed"`
		N          int        `json:"n"`
		Horizon    float64    `json:"horizon"`
		Parallel   bool       `json:"parallel"`
		Workers    int        `json:"workers"`
		ElapsedSec float64    `json:"elapsed_sec"`
		Cells      []chaosRow `json:"cells"`
	}{*seed, *n, *horizon, *parallel, w, elapsed.Seconds(), rows}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail("chaos: %v", err)
	}
	jsonPath := filepath.Join(*out, "chaos_report.json")
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		fail("chaos: %v", err)
	}
	fmt.Printf("wrote %s and %s (%d cells in %.2fs)\n", csvPath, jsonPath, len(rows), elapsed.Seconds())

	if failures > 0 {
		fail("chaos: %d cell(s) failed the gate (no faults injected, or no re-convergence)", failures)
	}
	fmt.Println("ok: every chaos cell injected faults and re-converged inside its analytic bound")
}
