package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gcs/internal/jobd"
	"gcs/internal/sim"
	"gcs/internal/store"
)

// clientRetryBudget bounds how long the sweep client keeps retrying
// transient daemon failures (connection refused while it restarts,
// 429 backpressure, 503 during a drain) before giving up. Because the
// daemon's result store is durable and its job IDs are deterministic,
// every retry — including a resubmit after the daemon was killed and
// restarted — lands on the same job and loses no work.
const clientRetryBudget = 5 * time.Minute

// daemonSweep submits the sweep spec to a gcsimd instance, polls the
// job to completion (surviving daemon restarts), and rebuilds the
// cells' stored facts into the same []sim.SweepResult a local
// sim.RunSweep would return — determinism makes the two byte-identical.
func daemonSweep(base string, spec jobd.SweepSpec, cellCount int) []sim.SweepResult {
	base = strings.TrimRight(base, "/")
	body, err := spec.CanonicalJSON()
	if err != nil {
		fail("sweep: %v", err)
	}
	deadline := time.Now().Add(clientRetryBudget)

	id := submitJob(base, body, deadline)
	lastDone := -1
	for {
		view, ok := fetchJob(base, id, deadline)
		if !ok {
			// The daemon lost the job (e.g. restarted on an empty data
			// dir). Resubmitting is safe: the spec maps to the same ID.
			id = submitJob(base, body, deadline)
			continue
		}
		if view.Done != lastDone {
			fmt.Printf("sweep: daemon progress %d/%d cells\n", view.Done, view.Cells)
			lastDone = view.Done
		}
		if view.Status == store.StatusDone {
			break
		}
		time.Sleep(500 * time.Millisecond)
	}

	cells := fetchResults(base, id, deadline)
	if len(cells) != cellCount {
		fail("sweep: daemon returned %d cells, want %d", len(cells), cellCount)
	}
	results := make([]sim.SweepResult, len(cells))
	failures := 0
	for _, cv := range cells {
		if cv.Index < 0 || cv.Index >= len(results) {
			fail("sweep: daemon returned cell index %d out of range", cv.Index)
		}
		if !cv.Done || cv.Result == nil {
			fail("sweep: daemon reported the job done but cell %q has no result", cv.Name)
		}
		res := sim.SweepResult{Name: cv.Name, Cfg: cv.Result.Cfg, Report: cv.Result.Report}
		if cv.Result.Failed() {
			failures++
			fmt.Fprintf(os.Stderr, "sweep: cell %q failed on the daemon: %s\n", cv.Name, cv.Result.Err)
		}
		results[cv.Index] = res
	}
	if failures > 0 {
		fail("sweep: %d cell(s) failed on the daemon", failures)
	}
	return results
}

// submitJob POSTs the spec until the daemon admits it, honoring 429
// Retry-After backpressure and riding out restarts.
func submitJob(base string, body []byte, deadline time.Time) string {
	for {
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			retryOrFail(deadline, time.Second, "submit: %v", err)
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			var view jobd.JobView
			err := json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if err != nil || view.ID == "" {
				fail("sweep: daemon admitted the job but returned no ID (%v)", err)
			}
			return view.ID
		case http.StatusTooManyRequests:
			wait := retryAfter(resp, 2*time.Second)
			resp.Body.Close()
			retryOrFail(deadline, wait, "daemon queue is full")
		case http.StatusServiceUnavailable:
			resp.Body.Close()
			retryOrFail(deadline, 2*time.Second, "daemon is draining")
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			fail("sweep: daemon rejected the job (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
		}
	}
}

// fetchJob GETs the job's status; false means the daemon answered 404.
func fetchJob(base, id string, deadline time.Time) (jobd.JobView, bool) {
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			retryOrFail(deadline, time.Second, "poll: %v", err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			return jobd.JobView{}, false
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			retryOrFail(deadline, time.Second, "poll: %s", resp.Status)
			continue
		}
		var view jobd.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			retryOrFail(deadline, time.Second, "poll: %v", err)
			continue
		}
		return view, true
	}
}

// fetchResults GETs the finished job's cells.
func fetchResults(base, id string, deadline time.Time) []jobd.CellView {
	for {
		resp, err := http.Get(base + "/jobs/" + id + "/results")
		if err != nil {
			retryOrFail(deadline, time.Second, "results: %v", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			retryOrFail(deadline, time.Second, "results: %s", resp.Status)
			continue
		}
		var rr struct {
			Cells []jobd.CellView `json:"cells"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if err != nil {
			retryOrFail(deadline, time.Second, "results: %v", err)
			continue
		}
		return rr.Cells
	}
}

// retryOrFail sleeps before the next attempt, or fails the command once
// the retry budget is spent.
func retryOrFail(deadline time.Time, wait time.Duration, format string, args ...any) {
	if time.Now().After(deadline) {
		fail("sweep: daemon unreachable past the retry budget; last error — "+format, args...)
	}
	fmt.Printf("sweep: transient daemon error (%s); retrying in %s\n", fmt.Sprintf(format, args...), wait)
	time.Sleep(wait)
}

// retryAfter reads a Retry-After seconds header, defaulting when absent
// or unparsable.
func retryAfter(resp *http.Response, def time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 && secs <= 600 {
			return time.Duration(secs) * time.Second
		}
	}
	return def
}
