package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gcs/internal/jobd"
	"gcs/internal/sim"
)

// sweepRow is one grid cell's outcome in the JSON report.
type sweepRow struct {
	Scenario       string  `json:"scenario"`
	Topology       string  `json:"topology"`
	Driver         string  `json:"driver"`
	Churn          string  `json:"churn"`
	N              int     `json:"n"`
	Seed           uint64  `json:"seed"`
	MaxGlobalSkew  float64 `json:"max_global_skew"`
	FinalSkew      float64 `json:"final_global_skew"`
	Bound          float64 `json:"bound"`
	Jumps          int     `json:"jumps"`
	Sent           uint64  `json:"sent"`
	Delivered      uint64  `json:"delivered"`
	Dropped        uint64  `json:"dropped"`
	Coalesced      uint64  `json:"coalesced"`
	EventsExecuted uint64  `json:"events_executed"`
	// Faults counts injected disturbances; ReconvergenceTime is -1 when
	// the cell never re-entered its bound (JSON has no +Inf). Both are
	// zero for unfaulted sweeps.
	Faults            uint64  `json:"faults"`
	ReconvergenceTime float64 `json:"reconvergence_time"`
	Violated          bool    `json:"violated"`
}

// runSweep implements `gcsim sweep`: a general scenario grid — node
// counts x topologies x drivers x churn processes — expanded by
// jobd.SweepSpec (the same expansion the sweep service uses, so local
// runs and daemon runs name, seed, and order their cells identically)
// and fanned across arena-backed workers (sim.RunSweep). Each cell
// gets a deterministic per-cell seed derived from -seed and its grid
// index, so the sweep is reproducible and bit-identical for every
// -workers value. With -daemon URL the grid is instead submitted to a
// running gcsimd instance and the stored results are fetched back —
// determinism makes the two paths byte-identical. Every cell's
// observed global skew is checked against its analytic bound; any
// violation makes the command exit nonzero. Results are printed as a
// table and dumped to sweep_results.csv and sweep_report.json.
func runSweep(args []string) {
	fs := flag.NewFlagSet("gcsim sweep", flag.ExitOnError)
	var (
		nsFlag   = fs.String("n", "256,1024", "comma-separated node counts")
		topos    = fs.String("topos", "ring,grid", "comma-separated topologies: line|ring|star|grid|complete")
		drivers  = fs.String("drivers", "randomwalk,bangbang", "comma-separated drivers: constant|randomwalk|bangbang")
		churns   = fs.String("churns", "none", "comma-separated churn processes: none|volatile|rotatingstar")
		seed     = fs.Uint64("seed", 1, "base seed; each cell derives its own")
		horizon  = fs.Float64("horizon", 10, "simulated seconds per cell")
		rho      = fs.Float64("rho", 0.01, "hardware clock drift bound")
		delay    = fs.Float64("delay", 0.01, "message delay bound (seconds)")
		beacon   = fs.Float64("beacon", 0.1, "beacon interval (hardware time)")
		sample   = fs.Float64("sample", 0.1, "skew sampling period (real time)")
		interval = fs.Float64("interval", 1, "driver rate-change interval")
		workers  = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		parallel = fs.Bool("parallel", false, "run every cell on the sharded parallel engine (its own delay physics)")
		shards   = fs.Int("shards", 0, "parallel shard count per cell — part of the physics (0 = default)")
		daemon   = fs.String("daemon", "", "submit the sweep to a gcsimd instance at this base URL instead of running locally")
		out      = fs.String("out", ".", "directory for sweep_results.csv and sweep_report.json")
	)
	ff := addFaultFlags(fs)
	fs.Parse(args)

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fail("sweep: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("sweep: %v", err)
	}

	spec := jobd.SweepSpec{
		Ns:       ns,
		Topos:    splitList(*topos),
		Drivers:  splitList(*drivers),
		Churns:   splitList(*churns),
		Seed:     *seed,
		Horizon:  *horizon,
		Rho:      *rho,
		MaxDelay: *delay,
		Beacon:   *beacon,
		Sample:   *sample,
		Interval: *interval,
		Parallel: *parallel,
		Shards:   *shards,
		Faults:   ff.spec(),
	}
	if err := spec.Validate(); err != nil {
		fail("sweep: %v", err)
	}
	cells, err := spec.Cells()
	if err != nil {
		fail("sweep: %v", err)
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var results []sim.SweepResult
	start := time.Now()
	if *daemon != "" {
		fmt.Printf("sweep: %d cells via daemon %s\n", len(cells), *daemon)
		results = daemonSweep(*daemon, spec, len(cells))
	} else {
		fmt.Printf("sweep: %d cells across %d workers\n", len(cells), w)
		results, err = sim.RunSweep(cells, *workers)
		if err != nil {
			fail("sweep: %v", err)
		}
	}
	elapsed := time.Since(start)

	var csv strings.Builder
	csv.WriteString("scenario,topology,driver,churn,n,seed,max_global_skew,final_skew,bound,jumps,sent,delivered,dropped,coalesced,events,faults,reconvergence_time,violated\n")
	rows := make([]sweepRow, 0, len(results))
	violations := 0
	fmt.Printf("%-40s %12s %12s %10s %12s %10s\n",
		"scenario", "maxSkew", "bound", "jumps", "events", "coalesced")
	for _, res := range results {
		rpt := res.Report
		topoName := res.Cfg.Topology.Kind.String()
		if res.Cfg.Churn.Kind == sim.ChurnRotatingStar {
			topoName = "-"
		}
		row := sweepRow{
			Scenario:       res.Name,
			Topology:       topoName,
			Driver:         res.Cfg.Driver.Kind.String(),
			Churn:          res.Cfg.Churn.Kind.String(),
			N:              res.Cfg.N,
			Seed:           res.Cfg.Seed,
			MaxGlobalSkew:  rpt.MaxGlobalSkew,
			FinalSkew:      rpt.FinalGlobalSkew,
			Bound:          rpt.Bound,
			Jumps:          rpt.TotalJumps,
			Sent:           rpt.Transport.Sent,
			Delivered:      rpt.Transport.Delivered,
			Dropped:        rpt.Transport.Dropped,
			Coalesced:      rpt.Transport.Coalesced,
			EventsExecuted: rpt.EventsExecuted,
			Faults:         rpt.Faults.Total(),
			Violated:       rpt.MaxGlobalSkew > rpt.Bound,
		}
		if res.Cfg.Faults.Enabled() {
			// Faulted cells are allowed transient bound breaches; the gate
			// is whether the cell re-converged after the last fault.
			row.ReconvergenceTime = rpt.ReconvergenceTime
			row.Violated = math.IsInf(rpt.ReconvergenceTime, 1)
			if row.Violated {
				row.ReconvergenceTime = -1
			}
		}
		if row.Violated {
			violations++
		}
		rows = append(rows, row)
		fmt.Fprintf(&csv, "%s,%s,%s,%s,%d,%d,%g,%g,%g,%d,%d,%d,%d,%d,%d,%d,%g,%t\n",
			row.Scenario, row.Topology, row.Driver, row.Churn, row.N, row.Seed,
			row.MaxGlobalSkew, row.FinalSkew, row.Bound, row.Jumps,
			row.Sent, row.Delivered, row.Dropped, row.Coalesced, row.EventsExecuted,
			row.Faults, row.ReconvergenceTime, row.Violated)
		fmt.Printf("%-40s %12.6f %12.4f %10d %12d %10d\n",
			row.Scenario, row.MaxGlobalSkew, row.Bound, row.Jumps, row.EventsExecuted, row.Coalesced)
	}

	csvPath := filepath.Join(*out, "sweep_results.csv")
	if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
		fail("sweep: %v", err)
	}
	report := struct {
		Seed        uint64     `json:"seed"`
		Horizon     float64    `json:"horizon"`
		Rho         float64    `json:"rho"`
		MaxDelay    float64    `json:"max_delay"`
		BeaconEvery float64    `json:"beacon_every"`
		SampleEvery float64    `json:"sample_every"`
		Workers     int        `json:"workers"`
		ElapsedSec  float64    `json:"elapsed_sec"`
		Cells       []sweepRow `json:"cells"`
	}{*seed, *horizon, *rho, *delay, *beacon, *sample, w, elapsed.Seconds(), rows}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail("sweep: %v", err)
	}
	jsonPath := filepath.Join(*out, "sweep_report.json")
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		fail("sweep: %v", err)
	}
	fmt.Printf("wrote %s and %s (%d cells in %.2fs)\n", csvPath, jsonPath, len(rows), elapsed.Seconds())

	if violations > 0 {
		fail("sweep: %d cell(s) exceeded the analytic global skew bound (or, with faults, never re-converged)", violations)
	}
	fmt.Println("ok: global skew within the analytic bound on every cell")
}

// splitList splits a comma-separated flag into trimmed nonempty parts.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		fail("sweep: empty list flag")
	}
	return out
}
