package main

import (
	"flag"
	"fmt"
	"math"

	"gcs/internal/rt"
	"gcs/internal/sim"
)

// runRealtime is the `realtime` subcommand: the same scenario surface as
// the default DES run, executed on the goroutine-per-node real-time
// runtime (internal/rt). One simulated second is one wall second, so the
// default horizon is short. The report shape is shared with the DES, and
// the same pass/fail gates apply — with slack on the skew gate, because
// a wall-clock sampler takes fuzzy cuts, not the DES's exact ones.
func runRealtime(args []string) {
	fs := flag.NewFlagSet("realtime", flag.ExitOnError)
	var (
		n       = fs.Int("n", 16, "number of nodes")
		seed    = fs.Uint64("seed", 1, "PRNG seed")
		horizon = fs.Float64("horizon", 5, "seconds to run (wall time!)")
		rho     = fs.Float64("rho", 0.01, "hardware clock drift bound")
		delay   = fs.Float64("delay", 0.01, "message delay bound (seconds)")
		topo    = fs.String("topo", "ring", "topology: line|ring|star|grid|complete")
		gridW   = fs.Int("grid-w", 0, "grid width (topo=grid; 0 = square)")
		driver  = fs.String("driver", "randomwalk", "clock driver: constant|randomwalk|bangbang")
		intv    = fs.Float64("interval", 1, "driver rate-change interval")
		churn   = fs.String("churn", "none", "churn: none|rotatingstar")
		period  = fs.Float64("period", 2, "rotating-star period")
		overlap = fs.Float64("overlap", 0.5, "rotating-star overlap")
		beacon  = fs.Float64("beacon", 0.1, "beacon interval (hardware time)")
		sample  = fs.Float64("sample", 0.1, "skew sampling period (wall time)")
	)
	ff := addFaultFlags(fs)
	fs.Parse(args)

	cfg := sim.Config{
		N:           *n,
		Seed:        *seed,
		Horizon:     *horizon,
		Rho:         *rho,
		MaxDelay:    *delay,
		Driver:      sim.DriverSpec{Interval: *intv},
		SampleEvery: *sample,
	}
	cfg.Node.BeaconEvery = *beacon

	switch *topo {
	case "line":
		cfg.Topology.Kind = sim.TopoLine
	case "ring":
		cfg.Topology.Kind = sim.TopoRing
	case "star":
		cfg.Topology.Kind = sim.TopoStar
	case "grid":
		w := *gridW
		if w == 0 {
			for w*w < *n {
				w++
			}
		}
		if *n%w != 0 {
			fail("grid width %d does not divide n=%d", w, *n)
		}
		cfg.Topology = sim.TopologySpec{Kind: sim.TopoGrid, W: w, H: *n / w}
	case "complete":
		cfg.Topology.Kind = sim.TopoComplete
	default:
		fail("unknown topology %q", *topo)
	}

	switch *driver {
	case "constant":
		cfg.Driver.Kind = sim.DriveConstant
	case "randomwalk":
		cfg.Driver.Kind = sim.DriveRandomWalk
	case "bangbang":
		cfg.Driver.Kind = sim.DriveBangBang
	default:
		fail("unknown driver %q", *driver)
	}

	switch *churn {
	case "none":
	case "rotatingstar":
		cfg.Churn = sim.ChurnSpec{Kind: sim.ChurnRotatingStar, Period: *period, Overlap: *overlap}
	default:
		fail("unknown churn %q (the real-time runtime supports none|rotatingstar)", *churn)
	}

	cfg.Faults = ff.spec()
	rpt, err := rt.Run(cfg)
	if err != nil {
		fail("%v", err)
	}

	eff := cfg.WithDefaults()
	fmt.Printf("realtime: n=%d topo=%v driver=%v churn=%v horizon=%gs rho=%g maxDelay=%g seed=%d\n",
		*n, eff.Topology.Kind, eff.Driver.Kind, eff.Churn.Kind, eff.Horizon, eff.Rho, eff.MaxDelay, *seed)
	fmt.Printf("skew:     maxGlobal=%.6f  maxAdjacent=%.6f  final=%.6f  bound=%.6f\n",
		rpt.MaxGlobalSkew, rpt.MaxAdjacentSkew, rpt.FinalGlobalSkew, rpt.Bound)
	fmt.Printf("traffic:  sent=%d delivered=%d dropped=%d refused=%d\n",
		rpt.Transport.Sent, rpt.Transport.Delivered, rpt.Transport.Dropped, rpt.Transport.Refused)
	fmt.Printf("activity: events=%d beacons=%d jumps=%d edgeAdds=%d edgeRemoves=%d samples=%d\n",
		rpt.EventsExecuted, rpt.TotalBeacons, rpt.TotalJumps, rpt.EdgeAdds, rpt.EdgeRemoves, rpt.Samples)
	fmt.Printf("drift:    ratesSeen=[%.6f, %.6f] allowed=[%.6f, %.6f]\n",
		rpt.MinRateSeen, rpt.MaxRateSeen, 1-eff.Rho, 1+eff.Rho)
	if eff.Faults.Enabled() {
		fst := rpt.Faults
		fmt.Printf("faults:   drops=%d dups=%d spikes=%d crashes=%d recoveries=%d rateExcursions=%d lastFault=%.3f\n",
			fst.Drops, fst.Dups, fst.DelaySpikes, fst.Crashes, fst.Recoveries, fst.RateExcursions, fst.LastFaultT)
		if math.IsInf(rpt.ReconvergenceTime, 1) {
			fail("NO RECONVERGENCE: global skew never re-entered the analytic bound after the last fault")
		}
		fmt.Printf("reconverge: %.6fs after the last fault\n", rpt.ReconvergenceTime)
		fmt.Println("ok: re-converged inside the analytic bound after the last fault")
		return
	}
	// Wall-clock sampling jitter earns a 2x slack over the DES gate.
	if rpt.MaxGlobalSkew > 2*rpt.Bound {
		fail("VIOLATION: max global skew %v exceeds 2x analytic bound %v", rpt.MaxGlobalSkew, rpt.Bound)
	}
	fmt.Println("ok: global skew within analytic bound (2x real-time slack)")
}
