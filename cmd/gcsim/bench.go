package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"gcs/internal/bench"
)

// runBench implements `gcsim bench`: it wraps `go test -run=^$ -bench`
// over the simulation benchmark suite, parses the output, and writes a
// BENCH_<rev>.json snapshot for cross-PR performance tracking.
func runBench(args []string) {
	fs := flag.NewFlagSet("gcsim bench", flag.ExitOnError)
	var (
		pattern    = fs.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime  = fs.String("benchtime", "", "go test -benchtime value (e.g. 1x, 2s); empty uses the go default. Gate runs should match the baseline's benchtime: allocs/op of arena-reused benchmarks is deterministic per iteration count but shrinks as free lists finish warming over the first iterations, so mismatched counts skew the allocs comparison")
		count      = fs.Int("count", 1, "go test -count repetitions")
		pkg        = fs.String("pkg", "./internal/sim", "package holding the benchmarks")
		out        = fs.String("out", ".", "directory to write BENCH_<rev>.json into")
		rev        = fs.String("rev", "", "revision tag for the snapshot name; default `git rev-parse --short HEAD`")
		baseline   = fs.String("baseline", "", "committed BENCH_<rev>.json to gate against (empty: no gate)")
		gate       = fs.String("gate", "all", "comma-separated benchmark names the -baseline gate compares, or 'all' for every benchmark in the baseline (requires running the full suite)")
		maxRegress = fs.Float64("max-regress", 0.25, "allowed fractional ns/op or allocs/op regression before the gate fails")
	)
	fs.Parse(args)

	tag := *rev
	if tag == "" {
		gitOut, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
		if err != nil {
			fail("bench: cannot determine revision (pass -rev): %v", err)
		}
		tag = strings.TrimSpace(string(gitOut))
	}

	goArgs := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, *pkg)

	cmd := exec.Command("go", goArgs...)
	var buf bytes.Buffer
	// Stream to the terminal while capturing for the parser.
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "gcsim bench: go %s\n", strings.Join(goArgs, " "))
	if err := cmd.Run(); err != nil {
		fail("bench: go test failed: %v", err)
	}

	rep, err := bench.Parse(&buf)
	if err != nil {
		fail("bench: %v", err)
	}
	rep.Rev = tag
	path, err := rep.WriteFile(*out)
	if err != nil {
		fail("bench: %v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Results))

	if *baseline != "" {
		base, err := bench.ReadFile(*baseline)
		if err != nil {
			fail("bench: %v", err)
		}
		if *gate == "all" {
			if *pattern == "." {
				// Full-suite run: strict — a baseline benchmark missing from
				// the run means a scenario was dropped, which must fail.
				if err := bench.CompareAll(base, rep, *maxRegress); err != nil {
					fail("%v", err)
				}
				fmt.Printf("ok: all %d baseline benchmarks within %.0f%% of %s\n",
					len(base.Results), *maxRegress*100, base.Rev)
			} else {
				// Filtered run: gate only the benchmarks actually run, so a
				// quick `-bench BenchmarkRing256` iteration still works
				// against a full-suite baseline.
				gated, skipped := 0, 0
				for _, b := range base.Results {
					if _, ok := rep.Find(b.Name); !ok {
						skipped++
						continue
					}
					if err := bench.Compare(base, rep, b.Name, *maxRegress); err != nil {
						fail("%v", err)
					}
					gated++
				}
				if gated == 0 {
					fail("bench: -bench %q matched no baseline benchmark to gate", *pattern)
				}
				fmt.Printf("ok: %d baseline benchmark(s) within %.0f%% of %s (%d not run, skipped)\n",
					gated, *maxRegress*100, base.Rev, skipped)
			}
		} else {
			for _, name := range strings.Split(*gate, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if err := bench.Compare(base, rep, name, *maxRegress); err != nil {
					fail("%v", err)
				}
			}
			fmt.Printf("ok: %s within %.0f%% of baseline %s\n", *gate, *maxRegress*100, base.Rev)
		}
	}
}
