package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"gcs/internal/bench"
)

// runBench implements `gcsim bench`: it wraps `go test -run=^$ -bench`
// over the simulation benchmark suite, parses the output, and writes a
// BENCH_<rev>.json snapshot for cross-PR performance tracking.
func runBench(args []string) {
	fs := flag.NewFlagSet("gcsim bench", flag.ExitOnError)
	var (
		pattern    = fs.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime  = fs.String("benchtime", "", "go test -benchtime value (e.g. 1x, 2s); empty uses the go default")
		count      = fs.Int("count", 1, "go test -count repetitions")
		pkg        = fs.String("pkg", "./internal/sim", "package holding the benchmarks")
		out        = fs.String("out", ".", "directory to write BENCH_<rev>.json into")
		rev        = fs.String("rev", "", "revision tag for the snapshot name; default `git rev-parse --short HEAD`")
		baseline   = fs.String("baseline", "", "committed BENCH_<rev>.json to gate against (empty: no gate)")
		gate       = fs.String("gate", "BenchmarkRing256", "benchmark name the -baseline gate compares")
		maxRegress = fs.Float64("max-regress", 0.25, "allowed fractional ns/op or allocs/op regression before the gate fails")
	)
	fs.Parse(args)

	tag := *rev
	if tag == "" {
		gitOut, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
		if err != nil {
			fail("bench: cannot determine revision (pass -rev): %v", err)
		}
		tag = strings.TrimSpace(string(gitOut))
	}

	goArgs := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, *pkg)

	cmd := exec.Command("go", goArgs...)
	var buf bytes.Buffer
	// Stream to the terminal while capturing for the parser.
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "gcsim bench: go %s\n", strings.Join(goArgs, " "))
	if err := cmd.Run(); err != nil {
		fail("bench: go test failed: %v", err)
	}

	rep, err := bench.Parse(&buf)
	if err != nil {
		fail("bench: %v", err)
	}
	rep.Rev = tag
	path, err := rep.WriteFile(*out)
	if err != nil {
		fail("bench: %v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Results))

	if *baseline != "" {
		base, err := bench.ReadFile(*baseline)
		if err != nil {
			fail("bench: %v", err)
		}
		if err := bench.Compare(base, rep, *gate, *maxRegress); err != nil {
			fail("%v", err)
		}
		fmt.Printf("ok: %s within %.0f%% of baseline %s\n", *gate, *maxRegress*100, base.Rev)
	}
}
