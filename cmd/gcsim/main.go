// Command gcsim runs one gradient-clock-synchronization scenario and
// prints its SkewReport. It is the repo's executable surface: every
// scenario the test suite asserts on can be driven and inspected from
// the command line.
//
// Example:
//
//	go run ./cmd/gcsim -n 64 -horizon 100 -churn rotatingstar -period 2 -overlap 0.5
//
// -parallel switches the scenario onto the sharded conservative
// parallel engine; -shards and -min-delay are part of that engine's
// physics, while -workers only changes how many goroutines execute it —
// the report is bit-identical for every worker count:
//
//	go run ./cmd/gcsim -n 100000 -horizon 5 -parallel -shards 16
//
// The `bench` subcommand wraps the simulation benchmark suite and writes
// a BENCH_<rev>.json snapshot for cross-PR performance tracking:
//
//	go run ./cmd/gcsim bench -bench . -benchtime 1x -out .
//
// The `lowerbound` subcommand runs the Theorem 4.1 adversarial scenario
// (two chains, layered rate schedules, asymmetric delay mask) over a
// sweep of node counts, demonstrating the Omega(n) global skew, and
// dumps the skew time series as CSV plus a JSON report for plotting:
//
//	go run ./cmd/gcsim lowerbound -n 32,64,128,256 -out .
//
// The `sweep` subcommand fans a general scenario grid (node counts x
// topologies x drivers x churn) across parallel arena-backed workers,
// checks every cell against its analytic skew bound, and dumps the grid
// as CSV + JSON; output is bit-identical for every -workers value:
//
//	go run ./cmd/gcsim sweep -n 1024,4096 -topos ring,grid -workers 4 -out .
//
// The `chaos` subcommand runs the fault-injection grid — every fault
// plan crossed with ring, grid, and rotating-star scenarios — and fails
// unless every cell injects faults and re-converges inside its analytic
// bound. Individual scenarios take the same fault plan via -fault-*
// flags (also accepted by sweep and gradient):
//
//	go run ./cmd/gcsim chaos -n 48 -horizon 12 -out .
//	go run ./cmd/gcsim -n 64 -fault-drop 0.2 -fault-crash-every 5
//
// The `realtime` subcommand runs the scenario on the goroutine-per-node
// real-time runtime (internal/rt) instead of the DES: one simulated
// second is one wall second, so keep the horizon short:
//
//	go run ./cmd/gcsim realtime -n 16 -horizon 5 -driver bangbang
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"

	"gcs/internal/des"
	"gcs/internal/sim"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "bench":
			runBench(os.Args[2:])
			return
		case "lowerbound":
			runLowerBound(os.Args[2:])
			return
		case "gradient":
			runGradient(os.Args[2:])
			return
		case "sweep":
			runSweep(os.Args[2:])
			return
		case "chaos":
			runChaos(os.Args[2:])
			return
		case "realtime":
			runRealtime(os.Args[2:])
			return
		}
	}
	runScenario()
}

func runScenario() {
	var (
		n       = flag.Int("n", 16, "number of nodes")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		horizon = flag.Float64("horizon", 30, "simulated seconds to run")
		rho     = flag.Float64("rho", 0.01, "hardware clock drift bound")
		delay   = flag.Float64("delay", 0.01, "message delay bound (seconds)")
		topo    = flag.String("topo", "ring", "topology: line|ring|star|grid|complete|twochains")
		gridW   = flag.Int("grid-w", 0, "grid width (topo=grid; 0 = square)")
		driver  = flag.String("driver", "randomwalk", "clock driver: constant|randomwalk|bangbang")
		intv    = flag.Float64("interval", 1, "driver rate-change interval")
		churn   = flag.String("churn", "none", "churn: none|volatile|rotatingstar")
		period  = flag.Float64("period", 2, "rotating-star period")
		overlap = flag.Float64("overlap", 0.5, "rotating-star overlap")
		life    = flag.Float64("lifetime", 1.5, "volatile edge mean lifetime")
		absence = flag.Float64("absence", 1.0, "volatile edge mean absence")
		extra   = flag.Int("extra-edges", 10, "volatile candidate edge count")
		beacon  = flag.Float64("beacon", 0.1, "beacon interval (hardware time)")
		sample  = flag.Float64("sample", 0.1, "skew sampling period (real time)")
		events  = flag.Bool("events", false, "print a per-label event breakdown (via the DES trace hook)")

		parallel = flag.Bool("parallel", false, "run on the sharded parallel engine (its own delay physics; see -shards)")
		shards   = flag.Int("shards", 0, "parallel shard count — part of the physics (0 = default)")
		workers  = flag.Int("workers", 0, "parallel worker goroutines — never affects the report (0 = GOMAXPROCS)")
		minDelay = flag.Float64("min-delay", 0, "parallel delay floor = conservative lookahead (0 = delay/4)")
	)
	ff := addFaultFlags(flag.CommandLine)
	flag.Parse()

	cfg := sim.Config{
		N:           *n,
		Seed:        *seed,
		Horizon:     *horizon,
		Rho:         *rho,
		MaxDelay:    *delay,
		Driver:      sim.DriverSpec{Interval: *intv},
		SampleEvery: *sample,
		Parallel:    *parallel,
		Shards:      *shards,
		Workers:     *workers,
		MinDelay:    *minDelay,
	}
	cfg.Node.BeaconEvery = *beacon
	if *parallel && *events {
		fail("-events needs the serial engine's trace hook; drop -parallel")
	}

	switch *topo {
	case "line":
		cfg.Topology.Kind = sim.TopoLine
	case "ring":
		cfg.Topology.Kind = sim.TopoRing
	case "star":
		cfg.Topology.Kind = sim.TopoStar
	case "grid":
		w := *gridW
		if w == 0 {
			for w*w < *n {
				w++
			}
		}
		if *n%w != 0 {
			fail("grid width %d does not divide n=%d", w, *n)
		}
		cfg.Topology = sim.TopologySpec{Kind: sim.TopoGrid, W: w, H: *n / w}
	case "complete":
		cfg.Topology.Kind = sim.TopoComplete
	case "twochains":
		cfg.Topology.Kind = sim.TopoTwoChains
	default:
		fail("unknown topology %q", *topo)
	}

	switch *driver {
	case "constant":
		cfg.Driver.Kind = sim.DriveConstant
	case "randomwalk":
		cfg.Driver.Kind = sim.DriveRandomWalk
	case "bangbang":
		cfg.Driver.Kind = sim.DriveBangBang
	default:
		fail("unknown driver %q", *driver)
	}

	switch *churn {
	case "none":
	case "volatile":
		cfg.Churn = sim.ChurnSpec{
			Kind: sim.ChurnVolatile, Lifetime: *life, Absence: *absence, ExtraEdges: *extra,
		}
	case "rotatingstar":
		cfg.Churn = sim.ChurnSpec{
			Kind: sim.ChurnRotatingStar, Period: *period, Overlap: *overlap,
		}
	default:
		fail("unknown churn %q", *churn)
	}

	cfg.Faults = ff.spec()
	// The harness boundary returns configuration errors instead of
	// panicking; sim.New below only ever sees a validated config.
	if err := cfg.Validate(); err != nil {
		fail("%v", err)
	}

	var rpt sim.SkewReport
	var eventCounts map[string]uint64
	if *parallel {
		rpt = sim.NewParallel(cfg).Run()
	} else {
		s := sim.New(cfg)
		if *events {
			eventCounts = map[string]uint64{}
			s.Engine.SetTraceHook(func(_ des.Time, label string) {
				eventCounts[label]++
			})
		}
		rpt = s.Run()
	}
	// Report the effective configuration: WithDefaults treats zero-valued
	// fields (e.g. -rho 0) as unset and fills them in.
	eff := cfg.WithDefaults()

	fmt.Printf("scenario: n=%d topo=%v driver=%v churn=%v horizon=%gs rho=%g maxDelay=%g seed=%d\n",
		*n, eff.Topology.Kind, eff.Driver.Kind, eff.Churn.Kind, eff.Horizon, eff.Rho, eff.MaxDelay, *seed)
	if *parallel {
		w := eff.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("parallel: shards=%d minDelay=%g (workers=%d — execution only, never in the report)\n",
			eff.Shards, eff.MinDelay, w)
	}
	fmt.Printf("skew:     maxGlobal=%.6f  maxAdjacent=%.6f  final=%.6f  bound=%.6f\n",
		rpt.MaxGlobalSkew, rpt.MaxAdjacentSkew, rpt.FinalGlobalSkew, rpt.Bound)
	fmt.Printf("traffic:  sent=%d delivered=%d dropped=%d refused=%d\n",
		rpt.Transport.Sent, rpt.Transport.Delivered, rpt.Transport.Dropped, rpt.Transport.Refused)
	fmt.Printf("activity: events=%d beacons=%d jumps=%d edgeAdds=%d edgeRemoves=%d samples=%d\n",
		rpt.EventsExecuted, rpt.TotalBeacons, rpt.TotalJumps, rpt.EdgeAdds, rpt.EdgeRemoves, rpt.Samples)
	fmt.Printf("drift:    ratesSeen=[%.6f, %.6f] allowed=[%.6f, %.6f]\n",
		rpt.MinRateSeen, rpt.MaxRateSeen, 1-eff.Rho, 1+eff.Rho)
	if eff.Faults.Enabled() {
		fst := rpt.Faults
		fmt.Printf("faults:   drops=%d dups=%d spikes=%d crashes=%d recoveries=%d rateExcursions=%d lastFault=%.3f\n",
			fst.Drops, fst.Dups, fst.DelaySpikes, fst.Crashes, fst.Recoveries, fst.RateExcursions, fst.LastFaultT)
		if math.IsInf(rpt.ReconvergenceTime, 1) {
			fmt.Println("reconverge: NEVER — global skew still outside the bound at the horizon")
		} else {
			fmt.Printf("reconverge: %.6fs after the last fault\n", rpt.ReconvergenceTime)
		}
	}

	if *events {
		labels := make([]string, 0, len(eventCounts))
		for l := range eventCounts {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool {
			if eventCounts[labels[i]] != eventCounts[labels[j]] {
				return eventCounts[labels[i]] > eventCounts[labels[j]]
			}
			return labels[i] < labels[j]
		})
		fmt.Println("events by label:")
		for _, l := range labels {
			fmt.Printf("  %-24s %d\n", l, eventCounts[l])
		}
	}

	// A faulted run is allowed to breach the bound while faults are
	// firing — the gate is re-convergence; an unfaulted run must stay
	// inside the bound throughout.
	if eff.Faults.Enabled() {
		if math.IsInf(rpt.ReconvergenceTime, 1) {
			fail("NO RECONVERGENCE: global skew never re-entered the analytic bound after the last fault")
		}
		fmt.Println("ok: re-converged inside the analytic bound after the last fault")
		return
	}
	if rpt.MaxGlobalSkew > rpt.Bound {
		fail("VIOLATION: max global skew %v exceeds analytic bound %v", rpt.MaxGlobalSkew, rpt.Bound)
	}
	fmt.Println("ok: global skew within analytic bound")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gcsim: "+format+"\n", args...)
	os.Exit(1)
}
