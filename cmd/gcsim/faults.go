package main

import (
	"flag"

	"gcs/internal/sim"
)

// faultFlags holds the -fault-* flag values shared by the scenario,
// sweep, and gradient commands. Register the flags with addFaultFlags
// and convert them to a sim.FaultSpec with spec(); a spec built from
// untouched flags is zero-valued, so the fault subsystem stays wired
// out entirely.
type faultFlags struct {
	drop        *float64
	dup         *float64
	spike       *float64
	spikeFactor *float64
	crashEvery  *float64
	crashDown   *float64
	crashStop   *bool
	rateEvery   *float64
	rateFactor  *float64
	rateFor     *float64
	until       *float64
}

// addFaultFlags registers the fault-plan flags on fs and returns the
// holder to read after parsing.
func addFaultFlags(fs *flag.FlagSet) *faultFlags {
	f := &faultFlags{}
	f.drop = fs.Float64("fault-drop", 0, "per-message drop probability")
	f.dup = fs.Float64("fault-dup", 0, "per-message duplication probability")
	f.spike = fs.Float64("fault-spike", 0, "per-message delay-spike probability (delay beyond the MaxDelay bound)")
	f.spikeFactor = fs.Float64("fault-spike-factor", 0, "spiked delay cap as a multiple of MaxDelay (0 = default 4)")
	f.crashEvery = fs.Float64("fault-crash-every", 0, "mean seconds between per-node crashes (0 = no crashes)")
	f.crashDown = fs.Float64("fault-crash-downtime", 0, "mean downtime before a crashed node recovers (0 = default 1)")
	f.crashStop = fs.Bool("fault-crash-stop", false, "crashed nodes never recover (crash-stop instead of crash-recover)")
	f.rateEvery = fs.Float64("fault-rate-every", 0, "mean seconds between per-node hardware-rate excursions outside [1-rho, 1+rho] (0 = none)")
	f.rateFactor = fs.Float64("fault-rate-factor", 0, "excursion magnitude cap as a multiple of rho (0 = default 3)")
	f.rateFor = fs.Float64("fault-rate-for", 0, "mean excursion duration in seconds (0 = default 0.5)")
	f.until = fs.Float64("fault-until", 0, "inject fault onsets only before this simulated time (0 = horizon/2)")
	return f
}

// spec converts the parsed flags into a fault plan.
func (f *faultFlags) spec() sim.FaultSpec {
	return sim.FaultSpec{
		Drop:                *f.drop,
		Dup:                 *f.dup,
		DelaySpike:          *f.spike,
		SpikeFactor:         *f.spikeFactor,
		CrashEvery:          *f.crashEvery,
		CrashDowntime:       *f.crashDown,
		CrashStop:           *f.crashStop,
		RateExcursionEvery:  *f.rateEvery,
		RateExcursionFactor: *f.rateFactor,
		RateExcursionFor:    *f.rateFor,
		Until:               *f.until,
	}
}
