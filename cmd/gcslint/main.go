// gcslint is the repository's static-analysis suite (internal/analysis)
// packaged as both a standalone linter and a `go vet` tool.
//
// Standalone:
//
//	gcslint ./...              # lint packages, exit 1 on findings
//
// As a vettool (the CI path — shares vet's build cache and per-package
// work units):
//
//	go build -o gcslint ./cmd/gcslint
//	go vet -vettool=$PWD/gcslint ./...
//
// In vettool mode cmd/go drives the unitchecker protocol: the tool is
// probed with -V=full (a version line keyed to the binary's hash, so
// vet's cache invalidates when the tool changes) and -flags (the JSON
// list of analyzer flags; gcslint has none), then invoked once per
// package unit with the path to a vet.cfg describing the files, the
// import map, and the export data for every dependency. Units for
// dependency packages arrive with VetxOnly set and are acknowledged
// without analysis.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gcs/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no analyzer flags
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion implements -V=full: cmd/go embeds the line in its action
// IDs, so it must change whenever the tool binary changes — hash
// ourselves.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
}

// vetConfig is the unit description cmd/go writes for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcslint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gcslint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Acknowledge the unit so vet's fact-caching machinery always finds
	// its output file; gcslint keeps no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "gcslint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	files, pkg, info, err := analysis.ParseAndCheck(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "gcslint: %v\n", err)
		return 2
	}
	diags := analysis.RunAnalyzers(fset, files, pkg, info)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.LintPackages(".", patterns...)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcslint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
