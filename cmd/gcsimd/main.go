// Command gcsimd is the crash-safe sweep service: a long-running
// daemon that accepts sweep jobs over HTTP, schedules their cells
// across a bounded worker pool, and persists every cell outcome to an
// append-only, CRC-checked, fsync-on-commit WAL. Because each cell's
// report is a pure function of its config, results are content-
// addressed facts: identical cells are deduped across jobs and served
// from the store without re-running, and a daemon killed mid-sweep
// (even kill -9) resumes on restart by re-enqueuing exactly the cells
// whose facts are missing — the resumed job's results are bit-
// identical to an uninterrupted run.
//
//	gcsimd -addr 127.0.0.1:7333 -data ./gcsimd-data
//	gcsim sweep -daemon http://127.0.0.1:7333 -n 256,1024
//
// API: POST /jobs (a jobd.SweepSpec; 202 on admission, 200 if the job
// already exists, 429 + Retry-After past the queue cap, 503 while
// draining), GET /jobs, GET /jobs/{id}, GET /jobs/{id}/results,
// GET /healthz. On SIGTERM/SIGINT the daemon stops admitting, gives
// in-flight cells -drain-timeout to finish (then abandons them at the
// next simulation slice — unfinished cells are simply re-run after the
// next start), syncs the store, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcs/internal/jobd"
	"gcs/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7333", "HTTP listen address")
		dataDir      = flag.String("data", "gcsimd-data", "durable result store (WAL) directory")
		workers      = flag.Int("workers", 0, "cell worker pool size (0 = GOMAXPROCS)")
		queueCap     = flag.Int("queue-cap", 4096, "max cells admitted but unfinished; past it, submissions get 429")
		cellTimeout  = flag.Duration("cell-timeout", 10*time.Minute, "per-cell execution deadline")
		retries      = flag.Int("retries", 2, "re-executions of a failed cell before storing a terminal error fact")
		backoffSeed  = flag.Uint64("backoff-seed", 1, "seed for the reproducible decorrelated-jitter retry schedules")
		segBytes     = flag.Int64("seg-bytes", 4<<20, "WAL segment rotation threshold (bytes)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight cells on SIGTERM before abandoning them")
	)
	flag.Parse()
	log.SetPrefix("gcsimd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	repo, err := store.OpenWAL(*dataDir, store.WALOptions{SegmentBytes: *segBytes})
	if err != nil {
		log.Fatal(err)
	}
	st := repo.Stats()
	log.Printf("store %s: %d segment(s), %d record(s) replayed, %d byte(s) of torn tail recovered",
		*dataDir, st.Segments, st.RecordsReplayed, st.TruncatedBytes)

	d, err := jobd.New(jobd.Config{
		Repo:        repo,
		Workers:     *workers,
		QueueCap:    *queueCap,
		CellTimeout: *cellTimeout,
		MaxRetries:  *retries,
		BackoffSeed: *backoffSeed,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Re-admit interrupted jobs before serving: their stored cells are
	// skipped, their missing cells re-enqueued. Per-job resume failures
	// are logged, not fatal — one corrupt spec must not hold the daemon
	// down.
	if err := d.Resume(); err != nil {
		log.Printf("resume: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: d.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}()
	log.Printf("serving on http://%s (data %s, drain grace %s)", ln.Addr(), *dataDir, *drainTimeout)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	s := <-sig
	log.Printf("%v: draining (grace %s)", s, *drainTimeout)
	// Drain first so status endpoints stay up while in-flight cells
	// finish; it stops admission, checkpoints finished work, and syncs.
	if err := d.Drain(*drainTimeout); err != nil {
		log.Printf("drain: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := repo.Close(); err != nil {
		log.Printf("close store: %v", err)
	}
	log.Print("drained; exiting")
}
